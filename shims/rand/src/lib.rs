//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no network access to crates.io, so this local
//! crate provides exactly the surface the workspace uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer and float
//! ranges, and [`Rng::gen`] for `f64`/`bool`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a high-quality,
//! fully deterministic stream. It is **not** the same stream as the real
//! `StdRng` (ChaCha12); everything in this workspace treats the seed as an
//! opaque reproducibility handle, so only determinism matters, not the exact
//! values.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core RNG operations.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers layered over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from a range (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A sample of the "standard" distribution of `T`: uniform in `[0, 1)`
    /// for floats, a fair coin for `bool`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types with a standard distribution (the subset used here).
pub trait Standard {
    /// Draws one standard sample.
    fn standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn standard<R: RngCore>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types samplable uniformly from a range (mirrors `rand`'s trait of the
/// same name; having one *generic* range impl per range kind is what lets
/// integer-literal ranges infer their type from the use site).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample in `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_uniform<R: RngCore>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                if inclusive {
                    assert!(lo <= hi, "empty range");
                } else {
                    assert!(lo < hi, "empty range");
                }
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
        if inclusive {
            assert!(lo <= hi, "empty range");
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
            lo + (hi - lo) * unit
        } else {
            assert!(lo < hi, "empty range");
            let v = lo + (hi - lo) * f64::standard(rng);
            // Guard the open upper bound against rounding.
            if v >= hi {
                lo
            } else {
                v
            }
        }
    }
}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, *self.start(), *self.end(), true)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ (SplitMix64-seeded).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_the_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same = (0..100).all(|_| a.gen_range(0u64..1_000_000) == c.gen_range(0u64..1_000_000));
        assert!(!same);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5u64..=5);
            assert_eq!(w, 5);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let g = rng.gen_range(1.0f64..=2.0);
            assert!((1.0..=2.0).contains(&g));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn usize_and_signed_ranges() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1_000 {
            let v = rng.gen_range(0usize..3);
            assert!(v < 3);
            let s = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&s));
        }
    }
}
