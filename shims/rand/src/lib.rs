//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no network access to crates.io, so this local
//! crate provides exactly the surface the workspace uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer and float
//! ranges, and [`Rng::gen`] for `f64`/`bool`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a high-quality,
//! fully deterministic stream. It is **not** the same stream as the real
//! `StdRng` (ChaCha12); everything in this workspace treats the seed as an
//! opaque reproducibility handle, so only determinism matters, not the exact
//! values.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core RNG operations.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers layered over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from a range (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A sample of the "standard" distribution of `T`: uniform in `[0, 1)`
    /// for floats, a fair coin for `bool`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types with a standard distribution (the subset used here).
pub trait Standard {
    /// Draws one standard sample.
    fn standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn standard<R: RngCore>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types samplable uniformly from a range (mirrors `rand`'s trait of the
/// same name; having one *generic* range impl per range kind is what lets
/// integer-literal ranges infer their type from the use site).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample in `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_uniform<R: RngCore>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                if inclusive {
                    assert!(lo <= hi, "empty range");
                } else {
                    assert!(lo < hi, "empty range");
                }
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
        if inclusive {
            assert!(lo <= hi, "empty range");
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
            lo + (hi - lo) * unit
        } else {
            assert!(lo < hi, "empty range");
            let v = lo + (hi - lo) * f64::standard(rng);
            // Guard the open upper bound against rounding.
            if v >= hi {
                lo
            } else {
                v
            }
        }
    }
}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, *self.start(), *self.end(), true)
    }
}

/// Distribution types, mirroring the `rand::distributions` / `rand_distr`
/// naming (the subset the workspace uses).
///
/// All samplers are **bounded**: a draw consumes exactly one `next_u64` call
/// ([`Bernoulli`](distributions::Bernoulli)) or one uniform float
/// ([`Exp`](distributions::Exp), [`Geometric`](distributions::Geometric) —
/// inversion sampling, no rejection loops), so fault plans built on them stay
/// strictly deterministic in the number of RNG words consumed.
pub mod distributions {
    use super::{RngCore, Standard};

    /// Types that can be sampled from a distribution.
    pub trait Distribution<T> {
        /// Draws one sample using `rng` as the randomness source.
        fn sample<R: RngCore>(&self, rng: &mut R) -> T;
    }

    /// Error constructing a [`Bernoulli`] distribution.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum BernoulliError {
        /// The probability was outside `[0, 1]` (or the ratio exceeded 1).
        InvalidProbability,
    }

    impl std::fmt::Display for BernoulliError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Bernoulli probability must lie in [0, 1]")
        }
    }

    impl std::error::Error for BernoulliError {}

    /// A coin flip with success probability `p`.
    ///
    /// One sample consumes exactly one `next_u64` word, compared against a
    /// fixed-point threshold — no floating point is involved at sampling
    /// time, so the stream is bit-stable across platforms.
    #[derive(Clone, Copy, Debug)]
    pub struct Bernoulli {
        threshold: u64,
        always: bool,
    }

    impl Bernoulli {
        /// A Bernoulli distribution with success probability `p ∈ [0, 1]`.
        pub fn new(p: f64) -> Result<Self, BernoulliError> {
            if !(0.0..=1.0).contains(&p) {
                return Err(BernoulliError::InvalidProbability);
            }
            if p >= 1.0 {
                return Ok(Bernoulli {
                    threshold: 0,
                    always: true,
                });
            }
            // p * 2^64 as a saturating fixed-point threshold.
            let threshold = (p * (u64::MAX as f64 + 1.0)) as u64;
            Ok(Bernoulli {
                threshold,
                always: false,
            })
        }

        /// A Bernoulli distribution with success probability
        /// `numerator / denominator`.
        pub fn from_ratio(numerator: u32, denominator: u32) -> Result<Self, BernoulliError> {
            if denominator == 0 || numerator > denominator {
                return Err(BernoulliError::InvalidProbability);
            }
            if numerator == denominator {
                return Ok(Bernoulli {
                    threshold: 0,
                    always: true,
                });
            }
            let threshold = ((u128::from(numerator) << 64) / u128::from(denominator)) as u64;
            Ok(Bernoulli {
                threshold,
                always: false,
            })
        }
    }

    impl Distribution<bool> for Bernoulli {
        fn sample<R: RngCore>(&self, rng: &mut R) -> bool {
            // Always draw, even for the constant cases, so the number of RNG
            // words consumed does not depend on the parameter value.
            let word = rng.next_u64();
            self.always || word < self.threshold
        }
    }

    /// Error constructing an [`Exp`] or [`Geometric`] distribution.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum ExpError {
        /// The rate/probability parameter was not strictly positive.
        LambdaTooSmall,
    }

    impl std::fmt::Display for ExpError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("distribution parameter must be strictly positive")
        }
    }

    impl std::error::Error for ExpError {}

    /// The exponential distribution `Exp(λ)`, sampled by inversion:
    /// `-ln(1 - U) / λ` for `U` uniform in `[0, 1)`. Exactly one uniform
    /// draw per sample.
    #[derive(Clone, Copy, Debug)]
    pub struct Exp {
        lambda: f64,
    }

    impl Exp {
        /// An exponential distribution with rate `lambda > 0`.
        pub fn new(lambda: f64) -> Result<Self, ExpError> {
            if lambda > 0.0 && lambda.is_finite() {
                Ok(Exp { lambda })
            } else {
                Err(ExpError::LambdaTooSmall)
            }
        }
    }

    impl Distribution<f64> for Exp {
        fn sample<R: RngCore>(&self, rng: &mut R) -> f64 {
            let u = f64::standard(rng);
            -(1.0 - u).ln() / self.lambda
        }
    }

    /// The geometric distribution: the number of failures before the first
    /// success of a `p`-coin (support `0, 1, 2, …`, mean `(1 - p) / p`).
    ///
    /// Sampled by bounded inversion — `floor(ln(1 - U) / ln(1 - p))` from a
    /// single uniform draw, clamped into `u64` — so a sample never loops.
    #[derive(Clone, Copy, Debug)]
    pub struct Geometric {
        p: f64,
    }

    impl Geometric {
        /// A geometric distribution with success probability `p ∈ (0, 1]`.
        pub fn new(p: f64) -> Result<Self, ExpError> {
            if p > 0.0 && p <= 1.0 {
                Ok(Geometric { p })
            } else {
                Err(ExpError::LambdaTooSmall)
            }
        }
    }

    impl Distribution<u64> for Geometric {
        fn sample<R: RngCore>(&self, rng: &mut R) -> u64 {
            let u = f64::standard(rng);
            if self.p >= 1.0 {
                return 0;
            }
            let v = ((1.0 - u).ln() / (1.0 - self.p).ln()).floor();
            if v.is_finite() && v >= 0.0 {
                if v >= u64::MAX as f64 {
                    u64::MAX
                } else {
                    v as u64
                }
            } else {
                0
            }
        }
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ (SplitMix64-seeded).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_the_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same = (0..100).all(|_| a.gen_range(0u64..1_000_000) == c.gen_range(0u64..1_000_000));
        assert!(!same);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5u64..=5);
            assert_eq!(w, 5);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let g = rng.gen_range(1.0f64..=2.0);
            assert!((1.0..=2.0).contains(&g));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn usize_and_signed_ranges() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1_000 {
            let v = rng.gen_range(0usize..3);
            assert!(v < 3);
            let s = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&s));
        }
    }

    mod distributions {
        use crate::distributions::{Bernoulli, BernoulliError, Distribution, Exp, Geometric};
        use crate::rngs::StdRng;
        use crate::SeedableRng;

        #[test]
        fn bernoulli_edge_probabilities() {
            let mut rng = StdRng::seed_from_u64(3);
            let never = Bernoulli::new(0.0).unwrap();
            let always = Bernoulli::new(1.0).unwrap();
            for _ in 0..1_000 {
                assert!(!never.sample(&mut rng));
                assert!(always.sample(&mut rng));
            }
            assert_eq!(
                Bernoulli::new(1.5).unwrap_err(),
                BernoulliError::InvalidProbability
            );
            assert_eq!(
                Bernoulli::new(-0.1).unwrap_err(),
                BernoulliError::InvalidProbability
            );
            assert_eq!(
                Bernoulli::from_ratio(3, 2).unwrap_err(),
                BernoulliError::InvalidProbability
            );
            assert_eq!(
                Bernoulli::from_ratio(1, 0).unwrap_err(),
                BernoulliError::InvalidProbability
            );
        }

        #[test]
        fn bernoulli_hit_rate_tracks_p() {
            let mut rng = StdRng::seed_from_u64(11);
            let coin = Bernoulli::from_ratio(50, 1000).unwrap();
            let hits = (0..100_000).filter(|_| coin.sample(&mut rng)).count();
            // 5% ± 0.5% over 100k draws.
            assert!((4_500..=5_500).contains(&hits), "hit rate off: {hits}");
        }

        #[test]
        fn bernoulli_is_deterministic_in_the_seed() {
            let coin = Bernoulli::new(0.3).unwrap();
            let mut a = StdRng::seed_from_u64(9);
            let mut b = StdRng::seed_from_u64(9);
            for _ in 0..1_000 {
                assert_eq!(coin.sample(&mut a), coin.sample(&mut b));
            }
        }

        #[test]
        fn exponential_mean_and_positivity() {
            let mut rng = StdRng::seed_from_u64(5);
            let exp = Exp::new(0.25).unwrap();
            let n = 50_000;
            let mut sum = 0.0;
            for _ in 0..n {
                let v = exp.sample(&mut rng);
                assert!(v >= 0.0 && v.is_finite());
                sum += v;
            }
            let mean = sum / n as f64;
            // True mean 1/λ = 4; allow 5% sampling slack.
            assert!((3.8..=4.2).contains(&mean), "mean off: {mean}");
            assert!(Exp::new(0.0).is_err());
            assert!(Exp::new(-1.0).is_err());
        }

        #[test]
        fn geometric_mean_and_bounds() {
            let mut rng = StdRng::seed_from_u64(13);
            let geo = Geometric::new(0.5).unwrap();
            let n = 50_000u64;
            let sum: u64 = (0..n).map(|_| geo.sample(&mut rng)).sum();
            let mean = sum as f64 / n as f64;
            // True mean (1 - p)/p = 1; allow sampling slack.
            assert!((0.9..=1.1).contains(&mean), "mean off: {mean}");
            let sure = Geometric::new(1.0).unwrap();
            for _ in 0..100 {
                assert_eq!(sure.sample(&mut rng), 0);
            }
            assert!(Geometric::new(0.0).is_err());
            assert!(Geometric::new(1.5).is_err());
        }
    }
}
