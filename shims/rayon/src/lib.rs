//! Offline stand-in for `rayon`.
//!
//! The build environment cannot reach crates.io, so this crate provides the
//! data-parallel subset the experiment harness uses — `into_par_iter()` /
//! `par_iter()` with `map(...).collect()`, plus [`join`] — implemented with
//! `std::thread::scope` and a work queue for dynamic load balancing (the
//! per-seed synthesis runs it parallelizes vary widely in cost).
//!
//! `collect()` preserves input order, so parallel experiment sweeps produce
//! byte-identical output to their sequential versions. The worker count is
//! `RAYON_NUM_THREADS` if set, else `std::thread::available_parallelism()`.

#![forbid(unsafe_code)]

use std::sync::Mutex;

pub mod prelude {
    //! The usual rayon imports.
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
        ParallelIterator, ParallelSliceMut,
    };
}

pub mod iter;

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|scope| {
        let handle = scope.spawn(b);
        let ra = a();
        let rb = handle.join().expect("rayon shim: joined task panicked");
        (ra, rb)
    })
}

/// The number of worker threads parallel iterators will use —
/// `RAYON_NUM_THREADS` if set, else the machine's available parallelism.
/// Mirrors `rayon::current_num_threads`.
pub fn current_num_threads() -> usize {
    num_threads()
}

pub(crate) fn num_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Order-preserving parallel map over owned items.
pub(crate) fn parallel_map<T, O, F>(items: Vec<T>, f: &F) -> Vec<O>
where
    T: Send,
    O: Send,
    F: Fn(T) -> O + Sync,
{
    let n = items.len();
    let workers = num_threads().min(n.max(1));
    if workers <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let queue = Mutex::new(items.into_iter().enumerate());
    let results: Mutex<Vec<(usize, O)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let next = queue.lock().expect("queue poisoned").next();
                let Some((index, item)) = next else { break };
                let output = f(item);
                results
                    .lock()
                    .expect("results poisoned")
                    .push((index, output));
            });
        }
    });
    let mut keyed = results.into_inner().expect("results poisoned");
    keyed.sort_by_key(|&(index, _)| index);
    keyed.into_iter().map(|(_, output)| output).collect()
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let doubled: Vec<u64> = (0u64..1_000).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0u64..1_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_over_slices() {
        let items = vec![1u32, 2, 3, 4];
        let sums: Vec<u32> = items.par_iter().map(|&x| x + 10).collect();
        assert_eq!(sums, vec![11, 12, 13, 14]);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = crate::join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn par_iter_mut_mutates_in_place() {
        let mut items: Vec<u64> = (0..257).collect();
        items.par_iter_mut().for_each(|x| *x *= 3);
        assert_eq!(items, (0..257).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_mut_enumerate_indices_match_positions() {
        let mut items = vec![0usize; 100];
        items
            .par_iter_mut()
            .enumerate()
            .for_each(|(i, slot)| *slot = i * i);
        assert_eq!(items, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_mut_map_collect_preserves_order() {
        let mut items: Vec<u32> = (0..64).collect();
        let seen: Vec<u32> = items
            .par_iter_mut()
            .map(|x| {
                *x += 1;
                *x
            })
            .collect();
        assert_eq!(seen, (1..=64).collect::<Vec<_>>());
        assert_eq!(items, (1..=64).collect::<Vec<_>>());
    }

    #[test]
    fn par_chunks_mut_covers_every_disjoint_chunk() {
        let mut items = vec![1u64; 10];
        items.par_chunks_mut(3).enumerate().for_each(|(ci, chunk)| {
            for x in chunk.iter_mut() {
                *x = ci as u64;
            }
        });
        assert_eq!(items, vec![0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "chunk size must be non-zero")]
    fn par_chunks_mut_rejects_zero() {
        let mut items = [1u8; 4];
        items.par_chunks_mut(0).for_each(|_| {});
    }
}
