//! Parallel iterator adapters (the subset the workspace uses).

use std::ops::Range;

/// Conversion into a parallel iterator over owned items.
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// Starts the parallel pipeline.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

/// Conversion into a parallel iterator over borrowed items.
pub trait IntoParallelRefIterator<'a> {
    /// The borrowed element type.
    type Item: Send + 'a;
    /// Starts the parallel pipeline over references.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

/// Conversion into a parallel iterator over mutably borrowed items
/// (rayon's `IntoParallelRefMutIterator`): the indexed lockstep primitive
/// the batch evaluator drives its per-candidate lanes with.
pub trait IntoParallelRefMutIterator<'a> {
    /// The mutably borrowed element type.
    type Item: Send + 'a;
    /// Starts the parallel pipeline over mutable references.
    fn par_iter_mut(&'a mut self) -> ParIter<Self::Item>;
}

/// Parallel operations over mutable slices (rayon's `ParallelSliceMut`
/// subset): disjoint chunks processed across workers.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over non-overlapping mutable chunks of
    /// `chunk_size` elements (the last chunk may be shorter).
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size` is zero.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

macro_rules! impl_range_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}

impl_range_par_iter!(u32, u64, usize);

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;
    fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = &'a mut T;
    fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        assert!(chunk_size != 0, "chunk size must be non-zero");
        ParIter {
            items: self.chunks_mut(chunk_size).collect(),
        }
    }
}

/// A materialized parallel iterator.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T> std::fmt::Debug for ParIter<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParIter").finish_non_exhaustive()
    }
}

impl<T: Send> ParIter<T> {
    /// Maps every item through `f` in parallel.
    pub fn map<O, F>(self, f: F) -> ParMap<T, F>
    where
        O: Send,
        F: Fn(T) -> O + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Pairs every item with its position in the original sequence
    /// (rayon's indexed `enumerate`). Indices are assigned before any
    /// parallel dispatch, so they are deterministic regardless of worker
    /// scheduling.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Consumes every item with `f` in parallel, for side effects.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        crate::parallel_map(self.items, &|item| f(item));
    }
}

/// A mapped parallel pipeline awaiting collection.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T, F> std::fmt::Debug for ParMap<T, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParMap").finish_non_exhaustive()
    }
}

impl<T, O, F> ParMap<T, F>
where
    T: Send,
    O: Send,
    F: Fn(T) -> O + Sync,
{
    /// Executes the pipeline, preserving input order.
    pub fn collect<C: FromIterator<O>>(self) -> C {
        crate::parallel_map(self.items, &self.f)
            .into_iter()
            .collect()
    }
}

/// Marker trait mirroring rayon's `ParallelIterator` for `use` compatibility.
pub trait ParallelIterator {}

impl<T> ParallelIterator for ParIter<T> {}
impl<T, F> ParallelIterator for ParMap<T, F> {}
