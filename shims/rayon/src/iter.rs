//! Parallel iterator adapters (the subset the workspace uses).

use std::ops::Range;

/// Conversion into a parallel iterator over owned items.
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// Starts the parallel pipeline.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

/// Conversion into a parallel iterator over borrowed items.
pub trait IntoParallelRefIterator<'a> {
    /// The borrowed element type.
    type Item: Send + 'a;
    /// Starts the parallel pipeline over references.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

macro_rules! impl_range_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}

impl_range_par_iter!(u32, u64, usize);

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// A materialized parallel iterator.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Maps every item through `f` in parallel.
    pub fn map<O, F>(self, f: F) -> ParMap<T, F>
    where
        O: Send,
        F: Fn(T) -> O + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// A mapped parallel pipeline awaiting collection.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T, O, F> ParMap<T, F>
where
    T: Send,
    O: Send,
    F: Fn(T) -> O + Sync,
{
    /// Executes the pipeline, preserving input order.
    pub fn collect<C: FromIterator<O>>(self) -> C {
        crate::parallel_map(self.items, &self.f)
            .into_iter()
            .collect()
    }
}

/// Marker trait mirroring rayon's `ParallelIterator` for `use` compatibility.
pub trait ParallelIterator {}

impl<T> ParallelIterator for ParIter<T> {}
impl<T, F> ParallelIterator for ParMap<T, F> {}
