//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this local crate
//! implements the subset of the proptest API the workspace's tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`],
//! * range, tuple, [`collection::vec`], [`any`] and `prop_map` strategies.
//!
//! Semantics: each test runs `cases` random inputs (default 64) from a
//! deterministic per-test RNG (seeded from the test name), so failures are
//! reproducible run to run. There is **no shrinking** — a failing case
//! reports the formatted assertion message only.

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The strategy of values of type `T` produced by [`any`].
pub trait Arbitrary: Sized {
    /// The strategy type.
    type Strategy: strategy::Strategy<Value = Self>;
    /// The canonical "anything goes" strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy producing any value of `T` (full range / fair coin).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

impl Arbitrary for u64 {
    type Strategy = strategy::AnyU64;
    fn arbitrary() -> Self::Strategy {
        strategy::AnyU64
    }
}

impl Arbitrary for bool {
    type Strategy = strategy::AnyBool;
    fn arbitrary() -> Self::Strategy {
        strategy::AnyBool
    }
}

/// The common imports: strategies, config, macros.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Defines property tests: `fn name(pat in strategy, ...) { body }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal: expands each `fn` inside [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run($cfg, stringify!($name), |__proptest_rng| {
                $(let $pat =
                    $crate::strategy::Strategy::new_value(&($strat), __proptest_rng);)+
                $body
                Ok(())
            });
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property test (fails the case, with a
/// reproducible report, instead of panicking mid-closure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__left, __right) = (&$a, &$b);
        $crate::prop_assert!(
            __left == __right,
            "assertion failed: `{:?}` != `{:?}`",
            __left,
            __right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (__left, __right) = (&$a, &$b);
        $crate::prop_assert!(__left == __right, $($fmt)*);
    }};
}

/// Rejects the current case (it does not count toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject());
        }
    };
}
