//! Value-generation strategies (no shrinking).

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, RngCore};

/// A recipe for producing random values of one type.
pub trait Strategy {
    /// The produced value type.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F> std::fmt::Debug for Map<S, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Map").finish_non_exhaustive()
    }
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.start..self.end)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(*self.start()..=*self.end())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Strategy behind `any::<u64>()`: the full 64-bit range.
#[derive(Debug)]
pub struct AnyU64;

impl Strategy for AnyU64 {
    type Value = u64;
    fn new_value(&self, rng: &mut StdRng) -> u64 {
        rng.next_u64()
    }
}

/// Strategy behind `any::<bool>()`: a fair coin.
#[derive(Debug)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn new_value(&self, rng: &mut StdRng) -> bool {
        rng.gen::<bool>()
    }
}

/// Strategy producing always the same (cloned) value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> std::fmt::Debug for Just<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Just").finish_non_exhaustive()
    }
}

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}
