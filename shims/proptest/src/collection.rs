//! Collection strategies.

use std::ops::Range;

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Strategy for `Vec`s whose length is drawn from `size` and whose elements
/// come from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// The [`vec()`] strategy.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S> std::fmt::Debug for VecStrategy<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VecStrategy").finish_non_exhaustive()
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = if self.size.start >= self.size.end {
            self.size.start
        } else {
            rng.gen_range(self.size.start..self.size.end)
        };
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}
