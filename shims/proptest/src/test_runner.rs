//! The case runner driving each `proptest!` function.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runner configuration (the subset the workspace uses).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases — smaller than upstream's 256 to keep CI runs quick.
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` and is re-drawn.
    Reject,
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// A failed assertion.
    pub fn fail(message: String) -> Self {
        TestCaseError::Fail(message)
    }

    /// A rejected case.
    pub fn reject() -> Self {
        TestCaseError::Reject
    }
}

/// Outcome of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runs `cases` accepted cases of `body` with a deterministic RNG derived
/// from the test name. Panics (failing the enclosing `#[test]`) on the first
/// assertion failure or when too many cases are rejected.
pub fn run<F>(config: ProptestConfig, name: &str, mut body: F)
where
    F: FnMut(&mut StdRng) -> TestCaseResult,
{
    // FNV-1a over the test name: per-test deterministic stream.
    let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        seed ^= u64::from(b);
        seed = seed.wrapping_mul(0x100_0000_01b3);
    }
    let mut rng = StdRng::seed_from_u64(seed);

    let mut accepted = 0u32;
    let mut attempts = 0u32;
    let max_attempts = config.cases.saturating_mul(16).max(64);
    while accepted < config.cases {
        attempts += 1;
        assert!(
            attempts <= max_attempts,
            "proptest '{name}': too many rejected cases ({attempts} attempts \
             for {accepted} accepted)"
        );
        match body(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => continue,
            Err(TestCaseError::Fail(message)) => {
                panic!("proptest '{name}' failed at case {accepted}: {message}")
            }
        }
    }
}
