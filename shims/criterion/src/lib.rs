//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment cannot reach crates.io, so this crate implements the
//! subset of criterion the workspace's benches use: [`Criterion`],
//! [`BenchmarkGroup`] (`sample_size`, `bench_function`, `bench_with_input`,
//! `finish`), [`BenchmarkId`], [`Bencher::iter`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Methodology (simpler than upstream, adequate for tracking relative
//! throughput): each benchmark is warmed up for ~100 ms, then measured over
//! `sample_size` samples; each sample times a batch sized to run ≥1 ms. The
//! report prints the mean and min per-iteration time. Every result is also
//! recorded in [`Criterion::results`] so a harness `main` can post-process
//! (e.g. emit a JSON summary).

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One completed measurement.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// `group/name` identifier.
    pub id: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: f64,
    /// Fastest sample's nanoseconds per iteration.
    pub min_ns: f64,
    /// Total iterations measured.
    pub iterations: u64,
}

/// The benchmark context passed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {
    /// All measurements taken so far, in execution order.
    pub results: Vec<BenchResult>,
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let result = measure(id.to_string(), 20, &mut f);
        report(&result);
        self.results.push(result);
        self
    }
}

/// A named benchmark group sharing a sample size.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl<'c> std::fmt::Debug for BenchmarkGroup<'c> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BenchmarkGroup").finish_non_exhaustive()
    }
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(2);
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let result = measure(format!("{}/{}", self.name, id), self.sample_size, &mut f);
        report(&result);
        self.criterion.results.push(result);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (upstream finalizes reports here; we report eagerly).
    pub fn finish(&mut self) {}
}

/// A benchmark identifier (`from_parameter` renders the parameter value).
#[derive(Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] runs the payload.
#[derive(Debug)]
pub struct Bencher {
    mode: Mode,
    /// (total elapsed, iterations) accumulated by `iter` in measure mode.
    measured: Option<(Duration, u64)>,
}

#[derive(Debug)]
enum Mode {
    /// Run the payload until ~100 ms elapse; used to estimate batch size.
    Warmup,
    /// Run exactly `n` iterations and record the elapsed time.
    Measure(u64),
}

impl Bencher {
    /// Times repeated executions of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        match self.mode {
            Mode::Warmup => {
                let start = Instant::now();
                let mut iters = 0u64;
                while start.elapsed() < Duration::from_millis(100) {
                    black_box(f());
                    iters += 1;
                }
                self.measured = Some((start.elapsed(), iters));
            }
            Mode::Measure(n) => {
                let start = Instant::now();
                for _ in 0..n {
                    black_box(f());
                }
                self.measured = Some((start.elapsed(), n));
            }
        }
    }
}

fn measure<F: FnMut(&mut Bencher)>(id: String, samples: usize, f: &mut F) -> BenchResult {
    // Warmup, which also estimates the batch size for ≥1 ms samples.
    let mut bencher = Bencher {
        mode: Mode::Warmup,
        measured: None,
    };
    f(&mut bencher);
    let (elapsed, iters) = bencher
        .measured
        .expect("benchmark closure must call iter()");
    let ns_estimate = (elapsed.as_nanos() as f64 / iters.max(1) as f64).max(1.0);
    let batch = ((1_000_000.0 / ns_estimate).ceil() as u64).max(1);

    let mut total_ns = 0f64;
    let mut total_iters = 0u64;
    let mut min_ns = f64::INFINITY;
    for _ in 0..samples {
        let mut bencher = Bencher {
            mode: Mode::Measure(batch),
            measured: None,
        };
        f(&mut bencher);
        let (elapsed, iters) = bencher
            .measured
            .expect("benchmark closure must call iter()");
        let ns = elapsed.as_nanos() as f64;
        total_ns += ns;
        total_iters += iters;
        min_ns = min_ns.min(ns / iters.max(1) as f64);
    }
    BenchResult {
        id,
        mean_ns: total_ns / total_iters.max(1) as f64,
        min_ns,
        iterations: total_iters,
    }
}

fn report(result: &BenchResult) {
    println!(
        "{:<50} time: [mean {} | min {}]  ({} iterations)",
        result.id,
        human(result.mean_ns),
        human(result.min_ns),
        result.iterations
    );
}

fn human(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Declares a group function running the listed benchmarks.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(criterion: &mut $crate::Criterion) {
            $($target(criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
        }
    };
}
