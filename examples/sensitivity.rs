//! WCET sensitivity analysis: after synthesizing a schedulable cruise
//! controller through the front door, rank its processes by how much their
//! execution times could still grow — exposing the end-to-end critical
//! path.
//!
//! Run with `cargo run --release --example sensitivity`.

use mcs::opt::criticality_ranking;
use mcs::prelude::*;

fn main() {
    let cc = cruise_controller();
    let analysis = AnalysisParams::default();
    let report = Synthesis::builder(&cc.system)
        .analysis(analysis)
        .strategy(Os::new(OsParams::default()))
        .run()
        .expect("cruise controller is analyzable");
    assert!(report.best.is_schedulable());

    println!("WCET headroom under the synthesized configuration");
    println!("(least headroom first — the controller's critical path):");
    println!();
    let ranking = criticality_ranking(
        &cc.system,
        &report.best.config,
        &analysis,
        8,
        Time::from_millis(1),
    );
    for slack in ranking.iter().take(10) {
        let p = cc.system.application.process(slack.process);
        println!(
            "  {:<18} C = {:>5}  may grow to {:>6}  (+{:>4}.{} %)",
            p.name(),
            slack.wcet.to_string(),
            slack.max_wcet.to_string(),
            slack.headroom_permille() / 10,
            slack.headroom_permille() % 10,
        );
    }
    println!("  ...");
    if let Some(most_relaxed) = ranking.last() {
        let p = cc.system.application.process(most_relaxed.process);
        println!(
            "  {:<18} has the most headroom (+{} %)",
            p.name(),
            most_relaxed.headroom_permille() / 10
        );
    }
}
