//! Streaming service demo: enqueue a mixed-priority batch of generated
//! instances on a deliberately tiny worker pool, watch a high-priority
//! submission preempt a running low-priority search, resume the preempted
//! search bit-identically, and stream every outcome as a JSON line.
//!
//! Run with `cargo run --release --example service_demo`.

use std::sync::Arc;
use std::time::Duration;

use mcs::prelude::*;
use mcs::serve::{CancelCause, JobOutcome, JobSpec, ServiceConfig, SynthesisService};

fn main() {
    // A small pool so the priority queue and preemption actually bite.
    let service = SynthesisService::start(ServiceConfig {
        workers: 2,
        queue_capacity: 16,
        ..ServiceConfig::default()
    });

    // A mixed-priority batch: one long low-priority anneal per instance,
    // with a couple of urgent OS jobs arriving later.
    let analysis = AnalysisParams::default();
    let systems: Vec<Arc<System>> = (0..4)
        .map(|seed| Arc::new(generate(&GeneratorParams::paper_sized(2, seed))))
        .collect();
    let sa = |seed: u64| {
        Sa::schedule(SaParams {
            iterations: 30_000,
            seed,
            ..SaParams::default()
        })
    };
    for (i, system) in systems.iter().enumerate() {
        service
            .try_submit(
                JobSpec::new(
                    format!("background/{i}"),
                    Arc::clone(system),
                    analysis,
                    sa(i as u64),
                )
                .priority(0)
                .deadline(Duration::from_secs(30)),
            )
            .expect("queue has room");
    }
    println!(
        "submitted {} background jobs; {} running, {} queued",
        systems.len(),
        service.running(),
        service.pending()
    );

    // Urgent work arrives: with every worker busy, each submission
    // preempts the weakest running background search.
    for (i, system) in systems.iter().take(2).enumerate() {
        service
            .try_submit(
                JobSpec::new(
                    format!("urgent/{i}"),
                    Arc::clone(system),
                    analysis,
                    Os::new(OsParams::default()),
                )
                .priority(5),
            )
            .expect("queue has room");
    }

    // Stream records as they complete and collect preempted checkpoints.
    let mut preempted: Vec<(String, u64, Box<SynthesisReport>)> = Vec::new();
    let mut records = service.shutdown();
    records.sort_by_key(|record| record.id);
    println!("\nfirst pass:");
    for record in records {
        println!("{}", record.json_line());
        if let JobOutcome::Cancelled {
            partial: Some(partial),
            cause: CancelCause::Preempted,
        } = record.outcome
        {
            let seed = record
                .name
                .rsplit('/')
                .next()
                .and_then(|s| s.parse().ok())
                .expect("background job names end in their seed");
            preempted.push((record.name, seed, partial));
        }
    }

    // Second pass: resume every preempted search from its checkpoint. The
    // continuation replays the interrupted prefix deterministically and
    // produces a report bit-identical to a never-interrupted run.
    if preempted.is_empty() {
        println!("\nno job was preempted (fast machine?) — nothing to resume");
        return;
    }
    let service = SynthesisService::start(ServiceConfig {
        workers: 2,
        queue_capacity: 16,
        ..ServiceConfig::default()
    });
    for (name, seed, checkpoint) in preempted {
        let evaluations = checkpoint.evaluations;
        service
            .try_submit(
                JobSpec::new(
                    format!("{name}/resumed"),
                    Arc::clone(&systems[seed as usize]),
                    analysis,
                    sa(seed),
                )
                .resume_from(*checkpoint),
            )
            .expect("queue has room");
        println!("\nresuming {name} from evaluation {evaluations}");
    }
    let mut records = service.shutdown();
    records.sort_by_key(|record| record.id);
    println!("\nsecond pass:");
    for record in records {
        println!("{}", record.json_line());
    }
}
