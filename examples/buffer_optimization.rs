//! Buffer minimization: run the full `OptimizeResources` pipeline on a
//! generated system and show how the hill climber shrinks the gateway and
//! node queues while keeping the system schedulable.
//!
//! Run with `cargo run --release --example buffer_optimization`.

use mcs::core::AnalysisParams;
use mcs::gen::{generate, GeneratorParams};
use mcs::opt::{optimize_resources, OrParams};

fn main() {
    let system = generate(&GeneratorParams::paper_sized(4, 7));
    println!(
        "generated system: {} processes on {} nodes, {} messages \
         ({} inter-cluster)",
        system.application.processes().len(),
        system.architecture.node_count(),
        system.application.messages().len(),
        system.inter_cluster_message_count()
    );

    let analysis = AnalysisParams::default();
    let or = optimize_resources(&system, &analysis, &OrParams::default());

    let os = &or.os.best;
    println!();
    println!(
        "step 1 (OptimizeSchedule): schedulable = {}",
        os.is_schedulable()
    );
    println!("  total buffers: {} B", os.total_buffers);
    println!("  seeds handed to the hill climber: {}", or.os.seeds.len());

    println!();
    println!("step 2 (OptimizeResources): {} evaluations", or.evaluations);
    println!(
        "  total buffers: {} B ({:+.1} % vs OS)",
        or.best.total_buffers,
        (or.best.total_buffers as f64 - os.total_buffers as f64) / os.total_buffers as f64 * 100.0
    );
    println!("  still schedulable: {}", or.best.is_schedulable());

    println!();
    println!("per-queue bounds after optimization:");
    println!("  Out_CAN: {:>6} B", or.best.outcome.queues.out_can);
    println!("  Out_TTP: {:>6} B", or.best.outcome.queues.out_ttp);
    let mut nodes: Vec<_> = or.best.outcome.queues.out_node.iter().collect();
    nodes.sort();
    for (node, bytes) in nodes {
        println!(
            "  Out_{:<4}: {:>5} B",
            system.architecture.node(*node).name(),
            bytes
        );
    }
}
