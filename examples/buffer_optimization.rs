//! Buffer minimization: run the full `OptimizeResources` pipeline through
//! the synthesis front door on a generated system and show how the hill
//! climber shrinks the gateway and node queues while keeping the system
//! schedulable.
//!
//! Run with `cargo run --release --example buffer_optimization`.

use mcs::prelude::*;

fn main() {
    let system = generate(&GeneratorParams::paper_sized(4, 7));
    println!(
        "generated system: {} processes on {} nodes, {} messages \
         ({} inter-cluster)",
        system.application.processes().len(),
        system.architecture.node_count(),
        system.application.messages().len(),
        system.inter_cluster_message_count()
    );

    let mut strategy = Or::new(OrParams::default());
    let report = Synthesis::builder(&system)
        .analysis(AnalysisParams::default())
        .strategy(&mut strategy)
        .run()
        .expect("the straightforward start is analyzable");
    let details = strategy.take_details().expect("OR records its details");

    let os = &details.os_best;
    println!();
    println!(
        "step 1 (OptimizeSchedule): schedulable = {}",
        os.is_schedulable()
    );
    println!("  total buffers: {} B", os.total_buffers);
    println!(
        "  seeds handed to the hill climber: {}",
        details.os_seeds.len()
    );

    println!();
    println!(
        "step 2 (OptimizeResources): {} neighbor evaluations",
        details.climb_evaluations
    );
    println!(
        "  total buffers: {} B ({:+.1} % vs OS)",
        report.best.total_buffers,
        (report.best.total_buffers as f64 - os.total_buffers as f64) / os.total_buffers as f64
            * 100.0
    );
    println!("  still schedulable: {}", report.best.is_schedulable());

    println!();
    println!("per-queue bounds after optimization:");
    println!("  Out_CAN: {:>6} B", report.best.outcome.queues.out_can);
    println!("  Out_TTP: {:>6} B", report.best.outcome.queues.out_ttp);
    let mut nodes: Vec<_> = report.best.outcome.queues.out_node.iter().collect();
    nodes.sort();
    for (node, bytes) in nodes {
        println!(
            "  Out_{:<4}: {:>5} B",
            system.architecture.node(*node).name(),
            bytes
        );
    }
}
