//! Validate the worst-case analysis against the discrete-event simulator:
//! synthesize a configuration through the front door, execute it with
//! randomized execution times, and compare every observation against its
//! analytic bound.
//!
//! Run with `cargo run --release --example simulation_validation`.

use mcs::prelude::*;
use mcs::sim::{simulate, ExecutionModel, SimParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = generate(&GeneratorParams::paper_sized(2, 11));
    let report = Synthesis::builder(&system)
        .analysis(AnalysisParams::default())
        .strategy(Os::new(OsParams::default()))
        .run()?;
    assert!(
        report.best.is_schedulable(),
        "OS finds a schedulable config"
    );
    let outcome = &report.best.outcome;

    println!("simulating 5 activations under three execution-time models...");
    for (label, execution, seed) in [
        ("worst-case", ExecutionModel::WorstCase, 0),
        ("random #1", ExecutionModel::RandomUniform, 1),
        ("random #2", ExecutionModel::RandomUniform, 2),
    ] {
        let sim = simulate(
            &system,
            &report.best.config,
            outcome,
            &SimParams {
                activations: 5,
                execution,
                seed,
            },
        )
        .expect("simulable");
        let violations = sim.soundness_violations(&system, outcome);
        // Tightness: how close does the worst simulated graph response come
        // to its analytic bound?
        let mut worst_ratio = 0.0f64;
        for graph in system.application.graphs() {
            if let Some(&observed) = sim.graph_response.get(&graph.id()) {
                let bound = outcome.graph_response(graph.id());
                worst_ratio =
                    worst_ratio.max(observed.ticks() as f64 / bound.ticks().max(1) as f64);
            }
        }
        println!(
            "  {label:<11} violations: {:<3} peak Out_CAN {:>4} B (bound {:>4} B), \
             tightest graph at {:.0} % of its bound",
            violations.len(),
            sim.max_out_can,
            outcome.queues.out_can,
            worst_ratio * 100.0
        );
        assert!(violations.is_empty(), "{violations:?}");
    }
    println!("all observations within the analytic worst-case bounds");
    Ok(())
}
