//! Validate the worst-case analysis against the discrete-event simulator:
//! synthesize a configuration, execute it with randomized execution times,
//! and compare every observation against its analytic bound.
//!
//! Run with `cargo run --release --example simulation_validation`.

use mcs::core::{multi_cluster_scheduling, AnalysisParams};
use mcs::gen::{generate, GeneratorParams};
use mcs::opt::{optimize_schedule, OsParams};
use mcs::sim::{simulate, ExecutionModel, SimParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = generate(&GeneratorParams::paper_sized(2, 11));
    let analysis = AnalysisParams::default();
    let os = optimize_schedule(&system, &analysis, &OsParams::default());
    assert!(os.best.is_schedulable(), "OS finds a schedulable config");
    let outcome = multi_cluster_scheduling(&system, &os.best.config, &analysis)?;

    println!("simulating 5 activations under three execution-time models...");
    for (label, execution, seed) in [
        ("worst-case", ExecutionModel::WorstCase, 0),
        ("random #1", ExecutionModel::RandomUniform, 1),
        ("random #2", ExecutionModel::RandomUniform, 2),
    ] {
        let report = simulate(
            &system,
            &os.best.config,
            &outcome,
            &SimParams {
                activations: 5,
                execution,
                seed,
            },
        );
        let violations = report.soundness_violations(&system, &outcome);
        // Tightness: how close does the worst simulated graph response come
        // to its analytic bound?
        let mut worst_ratio = 0.0f64;
        for graph in system.application.graphs() {
            if let Some(&observed) = report.graph_response.get(&graph.id()) {
                let bound = outcome.graph_response(graph.id());
                worst_ratio =
                    worst_ratio.max(observed.ticks() as f64 / bound.ticks().max(1) as f64);
            }
        }
        println!(
            "  {label:<11} violations: {:<3} peak Out_CAN {:>4} B (bound {:>4} B), \
             tightest graph at {:.0} % of its bound",
            violations.len(),
            report.max_out_can,
            outcome.queues.out_can,
            worst_ratio * 100.0
        );
        assert!(violations.is_empty(), "{violations:?}");
    }
    println!("all observations within the analytic worst-case bounds");
    Ok(())
}
