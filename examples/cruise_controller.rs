//! The paper's real-life example: synthesize the vehicle cruise controller
//! (40 processes, deadline 250 ms) with the straightforward baseline and
//! with the OS heuristic, and compare.
//!
//! Run with `cargo run --release --example cruise_controller`.

use mcs::core::AnalysisParams;
use mcs::gen::cruise_controller;
use mcs::opt::{evaluate, optimize_schedule, straightforward_config, OsParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cc = cruise_controller();
    let graph = cc.system.application.graphs()[0].id();
    let deadline = cc.system.application.graphs()[0].deadline();
    let analysis = AnalysisParams::default();

    println!(
        "cruise controller: {} processes, {} messages ({} crossing the gateway), deadline {}",
        cc.system.application.processes().len(),
        cc.system.application.messages().len(),
        cc.system.inter_cluster_message_count(),
        deadline
    );

    // Straightforward configuration: ascending slots, minimal lengths,
    // unoptimized priorities.
    let sf = evaluate(&cc.system, straightforward_config(&cc.system), &analysis)?;
    println!(
        "SF: response {:>8}  -> {}",
        sf.outcome.graph_response(graph).to_string(),
        if sf.is_schedulable() {
            "meets the deadline"
        } else {
            "MISSES the deadline"
        }
    );

    // OptimizeSchedule: greedy slot sequence + slot lengths + HOPA
    // priorities.
    let os = optimize_schedule(&cc.system, &analysis, &OsParams::default());
    println!(
        "OS: response {:>8}  -> {}",
        os.best.outcome.graph_response(graph).to_string(),
        if os.best.is_schedulable() {
            "meets the deadline"
        } else {
            "MISSES the deadline"
        }
    );

    println!();
    println!("synthesized TDMA round (OS):");
    for (i, slot) in os.best.config.tdma.slots().iter().enumerate() {
        println!(
            "  slot {} -> {} ({} bytes)",
            i,
            cc.system.architecture.node(slot.node).name(),
            slot.capacity_bytes
        );
    }
    println!();
    println!(
        "buffer bounds (OS): Out_CAN {} B, Out_TTP {} B, total {} B",
        os.best.outcome.queues.out_can,
        os.best.outcome.queues.out_ttp,
        os.best.outcome.queues.total()
    );
    Ok(())
}
