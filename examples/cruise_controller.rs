//! The paper's real-life example: synthesize the vehicle cruise controller
//! (40 processes, deadline 250 ms) with a portfolio of the straightforward
//! baseline and the OS heuristic, and compare.
//!
//! Run with `cargo run --release --example cruise_controller`.

use mcs::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cc = cruise_controller();
    let graph = cc.system.application.graphs()[0].id();
    let deadline = cc.system.application.graphs()[0].deadline();

    println!(
        "cruise controller: {} processes, {} messages ({} crossing the gateway), deadline {}",
        cc.system.application.processes().len(),
        cc.system.application.messages().len(),
        cc.system.inter_cluster_message_count(),
        deadline
    );

    // Both strategies run in parallel; the winner is the best δΓ.
    let portfolio = Portfolio::builder(&cc.system)
        .analysis(AnalysisParams::default())
        .selection(Selection::BestCost(Objective::Schedule))
        .add("SF", Sf)
        .add("OS", Os::new(OsParams::default()))
        .run();

    for (label, report) in &portfolio.reports {
        let report = report.as_ref().expect("cruise controller is analyzable");
        println!(
            "{label}: response {:>8}  -> {}",
            report.best.outcome.graph_response(graph).to_string(),
            if report.best.is_schedulable() {
                "meets the deadline"
            } else {
                "MISSES the deadline"
            }
        );
    }

    let (winner, best) = portfolio.winner_report().expect("both entries succeed");
    println!();
    println!("synthesized TDMA round ({winner}):");
    for (i, slot) in best.best.config.tdma.slots().iter().enumerate() {
        println!(
            "  slot {} -> {} ({} bytes)",
            i,
            cc.system.architecture.node(slot.node).name(),
            slot.capacity_bytes
        );
    }
    println!();
    println!(
        "buffer bounds ({winner}): Out_CAN {} B, Out_TTP {} B, total {} B",
        best.best.outcome.queues.out_can,
        best.best.outcome.queues.out_ttp,
        best.best.outcome.queues.total()
    );
    Ok(())
}
