//! Quickstart: model a tiny two-cluster system by hand, analyze it, then
//! let the synthesis front door find a better configuration.
//!
//! Run with `cargo run --example quickstart`.

use mcs::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Architecture: one TT node, one ET node, the gateway.
    let mut arch = Architecture::builder();
    let n1 = arch.add_node("N1", NodeRole::TimeTriggered);
    let n2 = arch.add_node("N2", NodeRole::EventTriggered);
    let ng = arch.add_node("NG", NodeRole::Gateway);
    let arch = arch.build()?;

    // Application: a sensor-filter-actuate chain crossing both clusters.
    let mut app = Application::builder();
    let g = app.add_graph("control", Time::from_millis(100), Time::from_millis(80));
    let sense = app.add_process(g, "sense", n1, Time::from_millis(4));
    let filter = app.add_process(g, "filter", n2, Time::from_millis(6));
    let act = app.add_process(g, "actuate", n1, Time::from_millis(3));
    app.link(sense, filter, 8); // m0: TTC -> ETC through the gateway
    app.link(filter, act, 8); // m1: ETC -> TTC through the gateway
    let app = app.build(&arch)?;
    let system = System::new(app, arch);

    // Configuration ψ by hand: gateway slot first, then N1.
    let tdma = TdmaConfig::new(vec![
        TdmaSlot {
            node: ng,
            capacity_bytes: 8,
        },
        TdmaSlot {
            node: n1,
            capacity_bytes: 8,
        },
    ]);
    let mut priorities = PriorityAssignment::new();
    priorities.set_process(filter, Priority::new(0));
    priorities.set_message(MessageId::new(0), Priority::new(0));
    priorities.set_message(MessageId::new(1), Priority::new(1));
    let config = SystemConfig::new(tdma, priorities);

    // Analyze: MultiClusterScheduling resolves the TTC <-> ETC fixed point.
    let outcome = multi_cluster_scheduling(&system, &config, &AnalysisParams::default())?;

    println!("hand-built configuration:");
    println!("graph response: {}", outcome.graph_response(g));
    println!();
    println!("schedule table of N1:");
    for (p, start) in outcome
        .schedule
        .table_of_node(n1, |p| system.application.process(p).node())
    {
        println!(
            "  {:<10} start {:>8}  (WCET {})",
            system.application.process(p).name(),
            start.to_string(),
            system.application.process(p).wcet()
        );
    }
    println!();
    println!("worst-case process timing (offset / jitter / delay / response):");
    for p in system.application.processes() {
        let t = outcome.process_timing(p.id());
        println!(
            "  {:<10} O={:>7} J={:>7} w={:>7} r={:>7}",
            p.name(),
            t.offset.to_string(),
            t.jitter.to_string(),
            t.delay.to_string(),
            t.response.to_string()
        );
    }
    println!();
    println!(
        "gateway buffers: Out_CAN {} B, Out_TTP {} B (total {} B)",
        outcome.queues.out_can,
        outcome.queues.out_ttp,
        outcome.queues.total()
    );

    // Synthesis front door: let the OS heuristic search slot orders,
    // lengths and priorities instead.
    let report = Synthesis::builder(&system)
        .analysis(AnalysisParams::default())
        .strategy(Os::new(OsParams::default()))
        .budget(Budget::evals(1_000))
        .run()?;
    println!();
    println!(
        "synthesized by {} in {} evaluations: schedulable = {}, response {}",
        report.strategy,
        report.evaluations,
        report.best.is_schedulable(),
        report.best.outcome.graph_response(g)
    );
    for (i, slot) in report.best.config.tdma.slots().iter().enumerate() {
        println!(
            "  slot {} -> {} ({} bytes)",
            i,
            system.architecture.node(slot.node).name(),
            slot.capacity_bytes
        );
    }
    Ok(())
}
