//! End-to-end integration: generate → synthesize → analyze → simulate,
//! across the full crate stack, driven through the `mcs::prelude` and the
//! `Synthesis` front door.

use mcs::core::degree_of_schedulability;
use mcs::prelude::*;
use mcs::sim::{simulate, SimParams};

fn run<S: Strategy>(system: &System, strategy: S) -> SynthesisReport {
    Synthesis::builder(system)
        .analysis(AnalysisParams::default())
        .strategy(strategy)
        .run()
        .expect("the start configuration is analyzable")
}

#[test]
fn full_pipeline_on_a_generated_system() {
    let system = generate(&GeneratorParams::paper_sized(2, 3));

    // SF baseline and OS heuristic.
    let sf = run(&system, Sf);
    let os = run(&system, Os::new(OsParams::default()));
    assert!(os.best.schedule_cost() <= sf.best.schedule_cost());

    // OR never loses schedulability nor worsens the buffers.
    let or = run(&system, Or::new(OrParams::default()));
    if os.best.is_schedulable() {
        assert!(or.best.is_schedulable());
        assert!(or.best.total_buffers <= os.best.total_buffers);

        // The synthesized configuration survives simulation (the report
        // already carries the materialized analysis outcome).
        let report = simulate(
            &system,
            &or.best.config,
            &or.best.outcome,
            &SimParams::default(),
        )
        .expect("simulable");
        assert!(report
            .soundness_violations(&system, &or.best.outcome)
            .is_empty());
    }
}

#[test]
fn cruise_controller_reproduces_the_paper_shape() {
    let cc = cruise_controller();
    let graph = cc.system.application.graphs()[0].id();

    // Paper: SF misses the 250 ms deadline, OS meets it.
    let sf = run(&cc.system, Sf);
    assert!(!sf.best.is_schedulable(), "SF must miss (paper: 320 ms)");
    let mut or_strategy = Or::new(OrParams::default());
    let or = run(&cc.system, &mut or_strategy);
    let details = or_strategy.take_details().expect("details recorded");
    assert!(
        details.os_best.is_schedulable(),
        "OS must meet (paper: 185 ms)"
    );
    assert!(details.os_best.outcome.graph_response(graph) < sf.best.outcome.graph_response(graph));
    // Paper: OR reduces the buffer need (24 % there) and stays close to SAR.
    assert!(or.best.total_buffers < details.os_best.total_buffers);
    let sar = run(
        &cc.system,
        Sa::resources(SaParams {
            iterations: 300,
            seed: 1,
            ..SaParams::default()
        }),
    );
    assert!(sar.best.is_schedulable());
    // OR within 25 % of the SAR reference (paper: 6 %).
    let or_b = or.best.total_buffers as f64;
    let sar_b = sar.best.total_buffers as f64;
    assert!(or_b <= sar_b * 1.25, "OR {or_b} too far from SAR {sar_b}");
}

#[test]
fn figure4_shape_holds_end_to_end() {
    let fig = figure4(Time::from_millis(240));
    let analysis = AnalysisParams::default();
    let eval = |config: &SystemConfig| {
        mcs::opt::evaluate(&fig.system, config.clone(), &analysis).expect("analyzable")
    };
    let a = eval(&fig.config_a);
    let b = eval(&fig.config_b);
    let c = eval(&fig.config_c);
    assert!(!a.is_schedulable());
    assert!(b.is_schedulable());
    assert!(c.is_schedulable());
    // OS must do at least as well as the best hand configuration.
    let os = run(&fig.system, Os::new(OsParams::default()));
    assert!(os.best.is_schedulable());
    assert!(os.best.schedule_cost() <= c.schedule_cost().max(b.schedule_cost()));
}

#[test]
fn deterministic_pipeline_results_across_runs() {
    let once = || {
        let system = generate(&GeneratorParams::paper_sized(2, 9));
        let os = run(&system, Os::new(OsParams::default()));
        (
            os.best.schedule_cost(),
            os.best.total_buffers,
            os.evaluations,
        )
    };
    assert_eq!(once(), once());
}

#[test]
fn portfolio_serves_the_whole_heuristic_family() {
    // The front door runs the paper's strategy family on one instance; the
    // resource-best entry must be schedulable, and OR dominates OS on the
    // buffer axis by construction.
    let system = generate(&GeneratorParams::paper_sized(2, 3));
    let portfolio = Portfolio::builder(&system)
        .analysis(AnalysisParams::default())
        .selection(Selection::BestCost(Objective::Resources))
        .add("SF", Sf)
        .add("HOPA", Hopa)
        .add("OS", Os::new(OsParams::default()))
        .add("OR", Or::new(OrParams::default()))
        .run();
    assert_eq!(portfolio.reports.len(), 4);
    let (_, winner) = portfolio.winner_report().expect("all entries succeed");
    assert!(winner.best.is_schedulable());
    // OR dominates OS by construction, so the winner's buffer need equals
    // the OR entry's (OS wins outright ties by insertion order).
    let or_report = portfolio.reports[3].1.as_ref().expect("OR succeeds");
    assert_eq!(winner.best.total_buffers, or_report.best.total_buffers);
}

#[test]
fn degree_of_schedulability_orders_the_figure4_configs() {
    let fig = figure4(Time::from_millis(240));
    let analysis = AnalysisParams::default();
    let degree = |config| {
        let outcome = multi_cluster_scheduling(&fig.system, config, &analysis).expect("ok");
        degree_of_schedulability(&fig.system, &outcome)
    };
    let da = degree(&fig.config_a);
    let db = degree(&fig.config_b);
    let dc = degree(&fig.config_c);
    // (c) has the most slack, (a) is the only miss.
    assert!(dc.cost() < db.cost());
    assert!(db.cost() < da.cost());
}
