//! End-to-end integration: generate → synthesize → analyze → simulate,
//! across the full crate stack.

use mcs::core::{degree_of_schedulability, multi_cluster_scheduling, AnalysisParams};
use mcs::gen::{cruise_controller, figure4, generate, GeneratorParams};
use mcs::model::Time;
use mcs::opt::{
    evaluate, optimize_resources, optimize_schedule, sa_resources, straightforward_config,
    OrParams, OsParams, SaParams,
};
use mcs::sim::{simulate, SimParams};

#[test]
fn full_pipeline_on_a_generated_system() {
    let system = generate(&GeneratorParams::paper_sized(2, 3));
    let analysis = AnalysisParams::default();

    // SF baseline and OS heuristic.
    let sf = evaluate(&system, straightforward_config(&system), &analysis).expect("SF analyzable");
    let os = optimize_schedule(&system, &analysis, &OsParams::default());
    assert!(os.best.schedule_cost() <= sf.schedule_cost());

    // OR never loses schedulability nor worsens the buffers.
    let or = optimize_resources(&system, &analysis, &OrParams::default());
    if os.best.is_schedulable() {
        assert!(or.best.is_schedulable());
        assert!(or.best.total_buffers <= os.best.total_buffers);

        // The synthesized configuration survives simulation.
        let outcome =
            multi_cluster_scheduling(&system, &or.best.config, &analysis).expect("analyzable");
        let report = simulate(&system, &or.best.config, &outcome, &SimParams::default());
        assert!(report.soundness_violations(&system, &outcome).is_empty());
    }
}

#[test]
fn cruise_controller_reproduces_the_paper_shape() {
    let cc = cruise_controller();
    let analysis = AnalysisParams::default();
    let graph = cc.system.application.graphs()[0].id();

    // Paper: SF misses the 250 ms deadline, OS meets it.
    let sf =
        evaluate(&cc.system, straightforward_config(&cc.system), &analysis).expect("SF analyzable");
    assert!(!sf.is_schedulable(), "SF must miss (paper: 320 ms)");
    let or = optimize_resources(&cc.system, &analysis, &OrParams::default());
    assert!(or.os.best.is_schedulable(), "OS must meet (paper: 185 ms)");
    assert!(or.os.best.outcome.graph_response(graph) < sf.outcome.graph_response(graph));
    // Paper: OR reduces the buffer need (24 % there) and stays close to SAR.
    assert!(or.best.total_buffers < or.os.best.total_buffers);
    let sar = sa_resources(
        &cc.system,
        &analysis,
        &SaParams {
            iterations: 300,
            seed: 1,
            ..SaParams::default()
        },
    );
    assert!(sar.is_schedulable());
    // OR within 25 % of the SAR reference (paper: 6 %).
    let or_b = or.best.total_buffers as f64;
    let sar_b = sar.total_buffers as f64;
    assert!(or_b <= sar_b * 1.25, "OR {or_b} too far from SAR {sar_b}");
}

#[test]
fn figure4_shape_holds_end_to_end() {
    let fig = figure4(Time::from_millis(240));
    let analysis = AnalysisParams::default();
    let a = evaluate(&fig.system, fig.config_a.clone(), &analysis).expect("analyzable");
    let b = evaluate(&fig.system, fig.config_b.clone(), &analysis).expect("analyzable");
    let c = evaluate(&fig.system, fig.config_c.clone(), &analysis).expect("analyzable");
    assert!(!a.is_schedulable());
    assert!(b.is_schedulable());
    assert!(c.is_schedulable());
    // OS must do at least as well as the best hand configuration.
    let os = optimize_schedule(&fig.system, &analysis, &OsParams::default());
    assert!(os.best.is_schedulable());
    assert!(os.best.schedule_cost() <= c.schedule_cost().max(b.schedule_cost()));
}

#[test]
fn deterministic_pipeline_results_across_runs() {
    let analysis = AnalysisParams::default();
    let run = || {
        let system = generate(&GeneratorParams::paper_sized(2, 9));
        let os = optimize_schedule(&system, &analysis, &OsParams::default());
        (
            os.best.schedule_cost(),
            os.best.total_buffers,
            os.evaluations,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn degree_of_schedulability_orders_the_figure4_configs() {
    let fig = figure4(Time::from_millis(240));
    let analysis = AnalysisParams::default();
    let degree = |config| {
        let outcome = multi_cluster_scheduling(&fig.system, config, &analysis).expect("ok");
        degree_of_schedulability(&fig.system, &outcome)
    };
    let da = degree(&fig.config_a);
    let db = degree(&fig.config_b);
    let dc = degree(&fig.config_c);
    // (c) has the most slack, (a) is the only miss.
    assert!(dc.cost() < db.cost());
    assert!(db.cost() < da.cost());
}
