//! End-to-end use of hyper-graph unrolling (paper §2.1): a multi-period
//! application is unrolled to its hyper-period, the per-activation releases
//! are applied as offset pins, and the unrolled system is analyzed.

use mcs::core::{degree_of_schedulability, multi_cluster_scheduling, AnalysisParams};
use mcs::model::{
    unroll_to_hyperperiod, Application, Architecture, NodeRole, PriorityAssignment, System,
    SystemConfig, TdmaConfig, TdmaSlot, Time,
};

const MS: fn(u64) -> Time = Time::from_millis;

#[test]
fn unrolled_multi_period_ttc_application_is_schedulable_per_activation() {
    let mut b = Architecture::builder();
    let n1 = b.add_node("N1", NodeRole::TimeTriggered);
    let n2 = b.add_node("N2", NodeRole::TimeTriggered);
    let ng = b.add_node("NG", NodeRole::Gateway);
    let arch = b.build().expect("valid");

    // A 40 ms control loop and a 120 ms monitoring task sharing the TTC.
    let mut ab = Application::builder();
    let fast = ab.add_graph("control", MS(40), MS(30));
    let sense = ab.add_process(fast, "sense", n1, MS(4));
    let act = ab.add_process(fast, "act", n2, MS(4));
    ab.link(sense, act, 8);
    let slow = ab.add_graph("monitor", MS(120), MS(120));
    ab.add_process(slow, "monitor", n1, MS(6));
    let app = ab.build(&arch).expect("valid");

    let hyper = unroll_to_hyperperiod(&app, &arch).expect("unrolls");
    assert_eq!(hyper.application.graphs().len(), 4); // 3 control + 1 monitor
    let system = System::new(hyper.application, arch);

    // Apply the per-activation releases as offset pins (φ constraints).
    let tdma = TdmaConfig::new(vec![
        TdmaSlot {
            node: ng,
            capacity_bytes: 8,
        },
        TdmaSlot {
            node: n1,
            capacity_bytes: 8,
        },
        TdmaSlot {
            node: n2,
            capacity_bytes: 8,
        },
    ]);
    let mut config = SystemConfig::new(tdma, PriorityAssignment::new());
    for &(p, release) in &hyper.releases {
        config.offsets.pin_process(p, release);
    }

    let outcome =
        multi_cluster_scheduling(&system, &config, &AnalysisParams::default()).expect("ok");
    let degree = degree_of_schedulability(&system, &outcome);
    assert!(
        degree.is_schedulable(),
        "per-activation deadlines must hold: {degree:?}"
    );

    // Every control instance starts in its own activation window and meets
    // its per-activation deadline (release + 30 ms).
    for k in 0..3u64 {
        let sense_k = system
            .application
            .processes()
            .iter()
            .find(|p| p.name() == format!("sense#{k}"))
            .expect("instance exists");
        let act_k = system
            .application
            .processes()
            .iter()
            .find(|p| p.name() == format!("act#{k}"))
            .expect("instance exists");
        let start = outcome.process_timing(sense_k.id()).offset;
        assert!(
            start >= MS(40 * k),
            "instance {k} started at {start} before its release"
        );
        let completion = outcome.process_timing(act_k.id()).worst_completion();
        assert!(
            completion <= MS(40 * k + 30),
            "instance {k} completed at {completion} past its activation deadline"
        );
    }
}

#[test]
fn unrolled_instances_share_resources_without_overlap() {
    // Three instances of a CPU-heavy task on one node: the scheduler must
    // serialize them within their own windows.
    let mut b = Architecture::builder();
    let n1 = b.add_node("N1", NodeRole::TimeTriggered);
    let ng = b.add_node("NG", NodeRole::Gateway);
    let arch = b.build().expect("valid");
    let mut ab = Application::builder();
    let g = ab.add_graph("g", MS(20), MS(15));
    ab.add_process(g, "task", n1, MS(8));
    let other = ab.add_graph("o", MS(60), MS(60));
    ab.add_process(other, "bg", n1, MS(5));
    let app = ab.build(&arch).expect("valid");

    let hyper = unroll_to_hyperperiod(&app, &arch).expect("unrolls");
    let system = System::new(hyper.application, arch);
    let tdma = TdmaConfig::new(vec![
        TdmaSlot {
            node: ng,
            capacity_bytes: 8,
        },
        TdmaSlot {
            node: n1,
            capacity_bytes: 8,
        },
    ]);
    let mut config = SystemConfig::new(tdma, PriorityAssignment::new());
    for &(p, release) in &hyper.releases {
        config.offsets.pin_process(p, release);
    }
    let outcome =
        multi_cluster_scheduling(&system, &config, &AnalysisParams::default()).expect("ok");

    // CPU exclusivity over the unrolled hyper-period.
    let mut intervals: Vec<(Time, Time)> = system
        .application
        .processes()
        .iter()
        .map(|p| {
            let s = outcome.process_timing(p.id()).offset;
            (s, s + p.wcet())
        })
        .collect();
    intervals.sort();
    for pair in intervals.windows(2) {
        assert!(pair[0].1 <= pair[1].0, "CPU overlap: {pair:?}");
    }
}
