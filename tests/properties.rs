//! Property-based tests over randomly generated systems: invariants of the
//! analysis, the optimizers and the analysis/simulation contract.

use proptest::prelude::*;

use mcs::core::{multi_cluster_scheduling, AnalysisParams, FifoBound};
use mcs::gen::{generate, Distribution, GeneratorParams};
use mcs::opt::{evaluate, hopa_priorities, straightforward_config};
use mcs::sim::{simulate, ExecutionModel, SimParams};

fn params_from(
    seed: u64,
    exponential: bool,
    util_permille: u32,
    inter_cluster: usize,
) -> GeneratorParams {
    let mut p = GeneratorParams::paper_sized(2, seed);
    p.processes_per_node = 10;
    p.graphs = 4;
    p.utilization_permille = 150 + util_permille % 200;
    p.inter_cluster_messages = Some(1 + inter_cluster);
    if exponential {
        p.wcet_distribution = Distribution::Exponential;
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Response times always dominate WCETs; offsets and responses are
    /// finite for converged analyses.
    #[test]
    fn responses_dominate_wcets(seed in 0u64..500, exp in any::<bool>(),
                                util in 0u32..200, cross in 0usize..8) {
        let system = generate(&params_from(seed, exp, util, cross));
        let config = {
            let mut c = straightforward_config(&system);
            c.priorities = hopa_priorities(&system, &c.tdma);
            c
        };
        let outcome = multi_cluster_scheduling(&system, &config, &AnalysisParams::default())
            .expect("generated configurations are analyzable");
        for p in system.application.processes() {
            let t = outcome.process_timing(p.id());
            prop_assert!(t.response >= p.wcet(),
                "{}: r {} < C {}", p.name(), t.response, p.wcet());
        }
    }

    /// The occurrence-based FIFO bound never exceeds the paper's closed
    /// form on any graph response.
    #[test]
    fn occurrence_bound_is_never_looser(seed in 0u64..500, cross in 0usize..8) {
        let system = generate(&params_from(seed, false, 50, cross));
        let config = {
            let mut c = straightforward_config(&system);
            c.priorities = hopa_priorities(&system, &c.tdma);
            c
        };
        let tight = multi_cluster_scheduling(&system, &config, &AnalysisParams {
            fifo_bound: FifoBound::SlotOccurrence,
            ..AnalysisParams::default()
        }).expect("analyzable");
        let loose = multi_cluster_scheduling(&system, &config, &AnalysisParams {
            fifo_bound: FifoBound::PaperClosedForm,
            ..AnalysisParams::default()
        }).expect("analyzable");
        for g in system.application.graphs() {
            prop_assert!(tight.graph_response(g.id()) <= loose.graph_response(g.id()));
        }
    }

    /// Analysis soundness against the simulator on schedulable systems,
    /// under randomized execution times.
    #[test]
    fn analysis_bounds_the_simulation(seed in 0u64..200, sim_seed in 0u64..16) {
        let system = generate(&params_from(seed, false, 30, 3));
        let config = {
            let mut c = straightforward_config(&system);
            c.priorities = hopa_priorities(&system, &c.tdma);
            c
        };
        let analysis = AnalysisParams::default();
        let eval = evaluate(&system, config.clone(), &analysis).expect("analyzable");
        prop_assume!(eval.is_schedulable());
        let report = simulate(&system, &config, &eval.outcome, &SimParams {
            activations: 2,
            execution: ExecutionModel::RandomUniform,
            seed: sim_seed,
        }).expect("simulable");
        let violations = report.soundness_violations(&system, &eval.outcome);
        prop_assert!(violations.is_empty(), "{violations:?}");
    }

    /// δΓ is monotone under deadline tightening: shrinking every deadline
    /// never improves the degree of schedulability.
    #[test]
    fn tighter_deadlines_never_help(seed in 0u64..300) {
        let loose = {
            let mut p = params_from(seed, false, 50, 2);
            p.deadline_permille = 1_000;
            generate(&p)
        };
        let tight = {
            let mut p = params_from(seed, false, 50, 2);
            p.deadline_permille = 500;
            generate(&p)
        };
        let analysis = AnalysisParams::default();
        let config_l = {
            let mut c = straightforward_config(&loose);
            c.priorities = hopa_priorities(&loose, &c.tdma);
            c
        };
        let config_t = {
            let mut c = straightforward_config(&tight);
            c.priorities = hopa_priorities(&tight, &c.tdma);
            c
        };
        let el = evaluate(&loose, config_l, &analysis).expect("analyzable");
        let et = evaluate(&tight, config_t, &analysis).expect("analyzable");
        prop_assert!(et.schedule_cost() >= el.schedule_cost());
    }
}
