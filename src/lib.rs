//! # mcs — multi-cluster distributed embedded system synthesis
//!
//! A reproduction of *Pop, Eles, Peng — "Schedulability Analysis and
//! Optimization for the Synthesis of Multi-Cluster Distributed Embedded
//! Systems" (DATE 2003)*: schedulability analysis, gateway buffer-size
//! analysis and synthesis heuristics for architectures built from a
//! time-triggered cluster (TTP/TDMA) and an event-triggered cluster (CAN)
//! joined by a gateway.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`model`] — application/architecture model and the configuration ψ;
//! * [`ttp`] — TDMA rounds, schedule tables (MEDL), the static list
//!   scheduler;
//! * [`can`] — CAN frame timing, arbitration, queuing-delay analysis;
//! * [`core`] — the multi-cluster schedulability analysis (the paper's
//!   contribution): [`core::multi_cluster_scheduling`];
//! * [`opt`] — the synthesis strategies (HOPA, OS/OR, SF/SAS/SAR) behind
//!   the [`synth`] front door;
//! * [`sim`] — a discrete-event simulator validating the analysis bounds;
//! * [`gen`] — workload generation (paper §6 setup, Figure 4 example,
//!   cruise controller).
//!
//! [`synth`] is the synthesis front door: a [`Strategy`](synth::Strategy)-
//! driven [`Synthesis`](synth::Synthesis) driver plus
//! [`Portfolio`](synth::Portfolio) racing and batch
//! [`ExperimentRunner`](synth::ExperimentRunner) serving. [`serve`] is the
//! resilient streaming service on top — bounded submission queue, per-job
//! deadlines and priorities with preemption, panic isolation with retry,
//! and resumable jobs ([`SynthesisService`](serve::SynthesisService)). The
//! [`prelude`] pulls in the handful of types almost every program needs.
//!
//! # Examples
//!
//! Synthesize a schedulable configuration for a generated system through
//! the front door and verify it in simulation:
//!
//! ```
//! use mcs::prelude::*;
//! use mcs::sim::{simulate, SimParams};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let system = generate(&GeneratorParams::paper_sized(2, 42));
//! let report = Synthesis::builder(&system)
//!     .analysis(AnalysisParams::default())
//!     .strategy(Os::new(OsParams::default()))
//!     .budget(Budget::evals(10_000))
//!     .run()?;
//! if report.best.is_schedulable() {
//!     let sim = simulate(
//!         &system,
//!         &report.best.config,
//!         &report.best.outcome,
//!         &SimParams::default(),
//!     )?;
//!     assert!(sim.soundness_violations(&system, &report.best.outcome).is_empty());
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mcs_can as can;
pub use mcs_core as core;
pub use mcs_gen as gen;
pub use mcs_model as model;
pub use mcs_opt as opt;
pub use mcs_opt::serve;
pub use mcs_opt::synthesis as synth;
pub use mcs_sim as sim;
pub use mcs_ttp as ttp;

pub mod prelude {
    //! The types almost every `mcs` program needs: the system model, the
    //! analysis entry points, workload generation and the synthesis front
    //! door.
    //!
    //! ```
    //! use mcs::prelude::*;
    //!
    //! let system = generate(&GeneratorParams::paper_sized(2, 7));
    //! let report = Synthesis::builder(&system).strategy(Sf).run().unwrap();
    //! assert!(report.best.total_buffers > 0);
    //! ```

    pub use mcs_core::{
        multi_cluster_scheduling, AnalysisOutcome, AnalysisParams, EvalSummary, Evaluator,
    };
    pub use mcs_gen::{cruise_controller, figure4, generate, GeneratorParams, PeriodMultipliers};
    pub use mcs_model::{
        Application, Architecture, MessageId, NodeRole, Priority, PriorityAssignment, ProcessId,
        System, SystemConfig, TdmaConfig, TdmaSlot, Time,
    };
    pub use mcs_opt::{
        Budget, BudgetAxis, Evaluation, ExperimentJob, ExperimentRecord, ExperimentRunner, Hopa,
        JobOutcome, JobRecord, JobSpec, Objective, Observer, Or, OrParams, Os, OsParams, Portfolio,
        Sa, SaParams, SearchEvent, Selection, ServiceConfig, Sf, Strategy, Synthesis,
        SynthesisReport, SynthesisService,
    };
}
