//! # mcs — multi-cluster distributed embedded system synthesis
//!
//! A reproduction of *Pop, Eles, Peng — "Schedulability Analysis and
//! Optimization for the Synthesis of Multi-Cluster Distributed Embedded
//! Systems" (DATE 2003)*: schedulability analysis, gateway buffer-size
//! analysis and synthesis heuristics for architectures built from a
//! time-triggered cluster (TTP/TDMA) and an event-triggered cluster (CAN)
//! joined by a gateway.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`model`] — application/architecture model and the configuration ψ;
//! * [`ttp`] — TDMA rounds, schedule tables (MEDL), the static list
//!   scheduler;
//! * [`can`] — CAN frame timing, arbitration, queuing-delay analysis;
//! * [`core`] — the multi-cluster schedulability analysis (the paper's
//!   contribution): [`core::multi_cluster_scheduling`];
//! * [`opt`] — HOPA priorities, the OS/OR heuristics and the SF/SAS/SAR
//!   baselines;
//! * [`sim`] — a discrete-event simulator validating the analysis bounds;
//! * [`gen`] — workload generation (paper §6 setup, Figure 4 example,
//!   cruise controller).
//!
//! # Examples
//!
//! Synthesize a schedulable configuration for a generated system and verify
//! it in simulation:
//!
//! ```
//! use mcs::core::{multi_cluster_scheduling, AnalysisParams};
//! use mcs::gen::{generate, GeneratorParams};
//! use mcs::opt::{optimize_schedule, OsParams};
//! use mcs::sim::{simulate, SimParams};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let system = generate(&GeneratorParams::paper_sized(2, 42));
//! let os = optimize_schedule(&system, &AnalysisParams::default(), &OsParams::default());
//! if os.best.is_schedulable() {
//!     let outcome =
//!         multi_cluster_scheduling(&system, &os.best.config, &AnalysisParams::default())?;
//!     let report = simulate(&system, &os.best.config, &outcome, &SimParams::default());
//!     assert!(report.soundness_violations(&system, &outcome).is_empty());
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mcs_can as can;
pub use mcs_core as core;
pub use mcs_gen as gen;
pub use mcs_model as model;
pub use mcs_opt as opt;
pub use mcs_sim as sim;
pub use mcs_ttp as ttp;
