//! Property-based tests for the model's core data structures.

use proptest::prelude::*;

use mcs_model::{
    lcm, Application, Architecture, NodeId, NodeRole, SlotId, TdmaConfig, TdmaSlot, Time,
    TtpBusParams,
};

proptest! {
    #[test]
    fn lcm_is_divisible_by_both(a in 1u64..10_000, b in 1u64..10_000) {
        let l = lcm(Time::from_ticks(a), Time::from_ticks(b));
        prop_assert_eq!(l.ticks() % a, 0);
        prop_assert_eq!(l.ticks() % b, 0);
        prop_assert!(l.ticks() >= a.max(b));
        prop_assert!(l.ticks() <= a * b);
    }

    #[test]
    fn saturating_sub_never_underflows(a in any::<u64>(), b in any::<u64>()) {
        let d = Time::from_ticks(a).saturating_sub(Time::from_ticks(b));
        prop_assert_eq!(d.ticks(), a.saturating_sub(b));
    }

    #[test]
    fn div_ceil_matches_definition(x in 0u64..1_000_000, t in 1u64..10_000) {
        let n = Time::from_ticks(x).div_ceil(Time::from_ticks(t));
        prop_assert!(n * t >= x);
        prop_assert!(n == 0 || (n - 1) * t < x);
    }

    /// Slot offsets are the prefix sums of slot durations, and the round is
    /// the total.
    #[test]
    fn slot_offsets_are_prefix_sums(
        capacities in proptest::collection::vec(1u32..64, 1..8),
        byte_time in 1u64..100,
        overhead in 0u64..100,
    ) {
        let params = TtpBusParams::new(
            Time::from_ticks(byte_time),
            Time::from_ticks(overhead),
        );
        let slots: Vec<TdmaSlot> = capacities
            .iter()
            .enumerate()
            .map(|(i, &c)| TdmaSlot { node: NodeId::new(i as u32), capacity_bytes: c })
            .collect();
        let config = TdmaConfig::new(slots);
        let mut acc = Time::ZERO;
        for i in 0..config.slot_count() {
            let id = SlotId::new(i as u32);
            prop_assert_eq!(config.slot_offset(id, &params), acc);
            acc += config.slot_duration(id, &params);
        }
        prop_assert_eq!(config.round_duration(&params), acc);
    }

    /// Random chain-structured applications always build, and the
    /// topological order respects every edge.
    #[test]
    fn random_chains_build_and_topo_sort(
        wcets in proptest::collection::vec(1u64..50, 2..20),
        preds in proptest::collection::vec(0usize..100, 0..18),
    ) {
        let mut b = Architecture::builder();
        let n1 = b.add_node("N1", NodeRole::TimeTriggered);
        let n2 = b.add_node("N2", NodeRole::EventTriggered);
        b.add_node("NG", NodeRole::Gateway);
        let arch = b.build().expect("valid");

        let mut ab = Application::builder();
        let g = ab.add_graph("G", Time::from_millis(1000), Time::from_millis(1000));
        let mut procs = Vec::new();
        for (i, &w) in wcets.iter().enumerate() {
            let node = if i % 2 == 0 { n1 } else { n2 };
            let p = ab.add_process(g, format!("p{i}"), node, Time::from_millis(w));
            if i > 0 {
                let pred = procs[preds.get(i - 1).copied().unwrap_or(0) % procs.len()];
                ab.link(pred, p, 8);
            }
            procs.push(p);
        }
        let app = ab.build(&arch).expect("chains are acyclic");
        let order = app.topological_order(g);
        let pos = |p| order.iter().position(|&q| q == p).expect("in order");
        for e in app.edges() {
            prop_assert!(pos(e.source) < pos(e.dest));
        }
        // Messages exactly on the cross-node arcs.
        for e in app.edges() {
            let cross = app.process(e.source).node() != app.process(e.dest).node();
            prop_assert_eq!(e.message.is_some(), cross);
        }
    }
}
