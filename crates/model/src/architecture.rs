//! Hardware architecture: clusters, nodes, gateway, bus parameters.
//!
//! An architecture (paper §2.2) is a set of *nodes* partitioned into a
//! time-triggered cluster (TTC, nodes on the TTP bus) and an event-triggered
//! cluster (ETC, nodes on the CAN bus), plus one *gateway* node that sits on
//! both buses and routes inter-cluster traffic.

use crate::ids::NodeId;
use crate::time::Time;

/// Which cluster(s) a node belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NodeRole {
    /// Node on the time-triggered cluster: statically scheduled CPU, one TDMA
    /// slot on the TTP bus.
    TimeTriggered,
    /// Node on the event-triggered cluster: fixed-priority preemptive CPU,
    /// transmits on the CAN bus through its `Out_Ni` priority queue.
    EventTriggered,
    /// The gateway: has both a TTP controller (and thus a TDMA slot, `S_G`)
    /// and a CAN controller. Its CPU runs the transfer process `T` under
    /// fixed-priority scheduling.
    Gateway,
}

impl NodeRole {
    /// Returns `true` if the node owns a TDMA slot on the TTP bus.
    pub fn on_ttp(self) -> bool {
        matches!(self, NodeRole::TimeTriggered | NodeRole::Gateway)
    }

    /// Returns `true` if the node transmits on the CAN bus.
    pub fn on_can(self) -> bool {
        matches!(self, NodeRole::EventTriggered | NodeRole::Gateway)
    }

    /// Returns `true` if the node's CPU is table-driven (non-preemptive,
    /// statically scheduled).
    pub fn is_statically_scheduled(self) -> bool {
        matches!(self, NodeRole::TimeTriggered)
    }
}

/// A processing node: CPU plus communication controller(s).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Node {
    id: NodeId,
    name: String,
    role: NodeRole,
}

impl Node {
    /// The node identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The human-readable node name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The cluster membership of the node.
    pub fn role(&self) -> NodeRole {
        self.role
    }
}

/// Timing parameters of the TTP (TDMA) bus.
///
/// Slot *capacities* are expressed in bytes; a slot carrying `b` bytes
/// occupies `slot_overhead + b × byte_time` on the wire. The TDMA round
/// duration `T_TDMA` is the sum of all slot durations (see
/// [`crate::config::TdmaConfig`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TtpBusParams {
    /// Wire time per payload byte.
    pub byte_time: Time,
    /// Fixed per-slot overhead (frame header, inter-frame gap, clock-sync
    /// field).
    pub slot_overhead: Time,
}

impl TtpBusParams {
    /// Creates TTP bus parameters.
    pub fn new(byte_time: Time, slot_overhead: Time) -> Self {
        TtpBusParams {
            byte_time,
            slot_overhead,
        }
    }

    /// Wire duration of a slot with the given byte capacity.
    pub fn slot_duration(&self, capacity_bytes: u32) -> Time {
        self.slot_overhead + self.byte_time * u64::from(capacity_bytes)
    }
}

impl Default for TtpBusParams {
    /// 1 Mbit/s payload rate (8 µs/byte) with 20 µs slot overhead.
    fn default() -> Self {
        TtpBusParams {
            byte_time: Time::from_micros(8),
            slot_overhead: Time::from_micros(20),
        }
    }
}

/// Timing parameters of the CAN bus.
///
/// By default frame times follow the classic worst-case formula with bit
/// stuffing (see `mcs-can`). Didactic scenarios (the paper's Figure 4 uses a
/// flat 10 ms per frame) can instead fix the frame time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CanBusParams {
    /// Duration of one bit on the wire.
    pub bit_time: Time,
    /// If set, every frame takes exactly this long regardless of size.
    pub fixed_frame_time: Option<Time>,
}

impl CanBusParams {
    /// Creates CAN parameters from a bit time (e.g. 2 µs/bit for 500 kbit/s).
    pub fn new(bit_time: Time) -> Self {
        CanBusParams {
            bit_time,
            fixed_frame_time: None,
        }
    }

    /// Creates CAN parameters where every frame takes a fixed time, as in the
    /// paper's worked example (Figure 4: `C_m = 10 ms`).
    pub fn with_fixed_frame_time(frame_time: Time) -> Self {
        CanBusParams {
            bit_time: Time::from_micros(2),
            fixed_frame_time: Some(frame_time),
        }
    }
}

impl Default for CanBusParams {
    /// 500 kbit/s (2 µs/bit), exact frame-time formula.
    fn default() -> Self {
        CanBusParams::new(Time::from_micros(2))
    }
}

/// A two-cluster architecture: TTC + ETC joined by a single gateway.
///
/// # Examples
///
/// ```
/// use mcs_model::{Architecture, NodeRole};
///
/// let mut arch = Architecture::builder();
/// let n1 = arch.add_node("N1", NodeRole::TimeTriggered);
/// let n2 = arch.add_node("N2", NodeRole::EventTriggered);
/// let ng = arch.add_node("NG", NodeRole::Gateway);
/// let arch = arch.build().expect("valid architecture");
/// assert_eq!(arch.gateway(), ng);
/// assert_eq!(arch.ttp_nodes().count(), 2); // N1 and the gateway
/// assert_eq!(arch.can_nodes().count(), 2); // N2 and the gateway
/// # let _ = (n1, n2);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Architecture {
    nodes: Vec<Node>,
    gateway: NodeId,
    ttp: TtpBusParams,
    can: CanBusParams,
}

/// Error constructing an [`Architecture`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BuildArchitectureError {
    /// No gateway node was declared.
    MissingGateway,
    /// More than one gateway node was declared (the model supports one
    /// gateway; multi-gateway systems are compositions of two-cluster ones).
    MultipleGateways,
    /// The architecture has no nodes at all.
    Empty,
}

impl std::fmt::Display for BuildArchitectureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildArchitectureError::MissingGateway => {
                write!(f, "architecture has no gateway node")
            }
            BuildArchitectureError::MultipleGateways => {
                write!(f, "architecture declares more than one gateway node")
            }
            BuildArchitectureError::Empty => write!(f, "architecture has no nodes"),
        }
    }
}

impl std::error::Error for BuildArchitectureError {}

/// Builder for [`Architecture`].
#[derive(Clone, Debug, Default)]
pub struct ArchitectureBuilder {
    nodes: Vec<Node>,
    ttp: Option<TtpBusParams>,
    can: Option<CanBusParams>,
}

impl ArchitectureBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node and returns its identifier.
    pub fn add_node(&mut self, name: impl Into<String>, role: NodeRole) -> NodeId {
        let id = NodeId::new(self.nodes.len() as u32);
        self.nodes.push(Node {
            id,
            name: name.into(),
            role,
        });
        id
    }

    /// Overrides the TTP bus parameters (defaults otherwise).
    pub fn ttp_params(&mut self, params: TtpBusParams) -> &mut Self {
        self.ttp = Some(params);
        self
    }

    /// Overrides the CAN bus parameters (defaults otherwise).
    pub fn can_params(&mut self, params: CanBusParams) -> &mut Self {
        self.can = Some(params);
        self
    }

    /// Finalizes the architecture.
    ///
    /// # Errors
    ///
    /// Returns an error if there is not exactly one gateway node, or no nodes
    /// at all.
    pub fn build(self) -> Result<Architecture, BuildArchitectureError> {
        if self.nodes.is_empty() {
            return Err(BuildArchitectureError::Empty);
        }
        let mut gateway = None;
        for node in &self.nodes {
            if node.role == NodeRole::Gateway {
                if gateway.is_some() {
                    return Err(BuildArchitectureError::MultipleGateways);
                }
                gateway = Some(node.id);
            }
        }
        let gateway = gateway.ok_or(BuildArchitectureError::MissingGateway)?;
        Ok(Architecture {
            nodes: self.nodes,
            gateway,
            ttp: self.ttp.unwrap_or_default(),
            can: self.can.unwrap_or_default(),
        })
    }
}

impl Architecture {
    /// Starts building an architecture.
    pub fn builder() -> ArchitectureBuilder {
        ArchitectureBuilder::new()
    }

    /// All nodes, ordered by id.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Looks up a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this architecture.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Returns `true` if `id` is a valid node of this architecture.
    pub fn contains_node(&self, id: NodeId) -> bool {
        id.index() < self.nodes.len()
    }

    /// The gateway node.
    pub fn gateway(&self) -> NodeId {
        self.gateway
    }

    /// Nodes owning a TDMA slot on the TTP bus (TT nodes plus the gateway),
    /// in id order.
    pub fn ttp_nodes(&self) -> impl Iterator<Item = &Node> + '_ {
        self.nodes.iter().filter(|n| n.role.on_ttp())
    }

    /// Nodes transmitting on the CAN bus (ET nodes plus the gateway), in id
    /// order.
    pub fn can_nodes(&self) -> impl Iterator<Item = &Node> + '_ {
        self.nodes.iter().filter(|n| n.role.on_can())
    }

    /// Pure TT nodes (excluding the gateway), in id order.
    pub fn tt_nodes(&self) -> impl Iterator<Item = &Node> + '_ {
        self.nodes
            .iter()
            .filter(|n| n.role == NodeRole::TimeTriggered)
    }

    /// Pure ET nodes (excluding the gateway), in id order.
    pub fn et_nodes(&self) -> impl Iterator<Item = &Node> + '_ {
        self.nodes
            .iter()
            .filter(|n| n.role == NodeRole::EventTriggered)
    }

    /// TTP bus parameters.
    pub fn ttp_params(&self) -> TtpBusParams {
        self.ttp
    }

    /// CAN bus parameters.
    pub fn can_params(&self) -> CanBusParams {
        self.can
    }

    /// Returns `true` if the CPU of `node` is scheduled by static tables
    /// (offsets) rather than by priorities.
    pub fn is_tt_cpu(&self, node: NodeId) -> bool {
        self.node(node).role().is_statically_scheduled()
    }

    /// Returns `true` if the CPU of `node` is scheduled by fixed-priority
    /// preemptive scheduling (ET nodes and the gateway CPU).
    pub fn is_et_cpu(&self, node: NodeId) -> bool {
        !self.is_tt_cpu(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cluster() -> Architecture {
        let mut b = Architecture::builder();
        b.add_node("N1", NodeRole::TimeTriggered);
        b.add_node("N2", NodeRole::EventTriggered);
        b.add_node("NG", NodeRole::Gateway);
        b.build().expect("valid")
    }

    #[test]
    fn builder_assigns_dense_ids() {
        let mut b = Architecture::builder();
        let a = b.add_node("a", NodeRole::TimeTriggered);
        let c = b.add_node("c", NodeRole::Gateway);
        assert_eq!(a.index(), 0);
        assert_eq!(c.index(), 1);
    }

    #[test]
    fn gateway_is_required_and_unique() {
        let mut b = Architecture::builder();
        b.add_node("N1", NodeRole::TimeTriggered);
        assert_eq!(
            b.clone().build().unwrap_err(),
            BuildArchitectureError::MissingGateway
        );
        b.add_node("G1", NodeRole::Gateway);
        b.add_node("G2", NodeRole::Gateway);
        assert_eq!(
            b.build().unwrap_err(),
            BuildArchitectureError::MultipleGateways
        );
        assert_eq!(
            ArchitectureBuilder::new().build().unwrap_err(),
            BuildArchitectureError::Empty
        );
    }

    #[test]
    fn cluster_membership_queries() {
        let arch = two_cluster();
        assert!(arch.node(NodeId::new(0)).role().on_ttp());
        assert!(!arch.node(NodeId::new(0)).role().on_can());
        assert!(arch.node(NodeId::new(2)).role().on_ttp());
        assert!(arch.node(NodeId::new(2)).role().on_can());
        assert_eq!(arch.ttp_nodes().count(), 2);
        assert_eq!(arch.can_nodes().count(), 2);
        assert_eq!(arch.tt_nodes().count(), 1);
        assert_eq!(arch.et_nodes().count(), 1);
        assert_eq!(arch.gateway(), NodeId::new(2));
    }

    #[test]
    fn cpu_scheduling_classes() {
        let arch = two_cluster();
        assert!(arch.is_tt_cpu(NodeId::new(0)));
        assert!(arch.is_et_cpu(NodeId::new(1)));
        // The gateway CPU runs the transfer process under priorities.
        assert!(arch.is_et_cpu(NodeId::new(2)));
    }

    #[test]
    fn ttp_slot_duration_accounts_for_overhead() {
        let params = TtpBusParams::new(Time::from_micros(8), Time::from_micros(20));
        assert_eq!(params.slot_duration(16), Time::from_micros(20 + 128));
        assert_eq!(params.slot_duration(0), Time::from_micros(20));
    }

    #[test]
    fn can_params_fixed_frame_time() {
        let p = CanBusParams::with_fixed_frame_time(Time::from_millis(10));
        assert_eq!(p.fixed_frame_time, Some(Time::from_millis(10)));
        assert_eq!(CanBusParams::default().fixed_frame_time, None);
    }
}
