//! The system configuration ψ = ⟨φ, β, π⟩ (paper §3).
//!
//! * β — the TDMA bus configuration: slot sequence and slot sizes
//!   ([`TdmaConfig`]).
//! * π — priorities of ET processes and messages ([`PriorityAssignment`]).
//! * φ — the offsets; these are an *output* of the analysis
//!   (`mcs-core::MultiClusterScheduling`), but the hill-climbing optimizer
//!   pins individual offsets inside their [ASAP, ALAP] windows through
//!   [`OffsetConstraints`].

use std::collections::HashMap;
use std::fmt;

use crate::architecture::{Architecture, TtpBusParams};
use crate::error::ConfigError;
use crate::ids::{MessageId, NodeId, ProcessId, SlotId};
use crate::time::Time;

/// A fixed priority. **Lower values are higher priority**, matching CAN frame
/// identifiers where the numerically smallest identifier wins arbitration.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Priority(u32);

impl Priority {
    /// The highest possible priority.
    pub const HIGHEST: Priority = Priority(0);

    /// Creates a priority from its numeric level (lower = more urgent).
    pub const fn new(level: u32) -> Self {
        Priority(level)
    }

    /// The numeric level.
    pub const fn level(self) -> u32 {
        self.0
    }

    /// Returns `true` if `self` is strictly more urgent than `other`.
    pub fn is_higher_than(self, other: Priority) -> bool {
        self.0 < other.0
    }
}

impl fmt::Debug for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "prio{}", self.0)
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// One TDMA slot: a node and its byte capacity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TdmaSlot {
    /// The node transmitting in this slot.
    pub node: NodeId,
    /// Payload capacity of the slot in bytes (`size_Si`).
    pub capacity_bytes: u32,
}

/// The TDMA bus configuration β: the ordered sequence of slots in a round.
///
/// Each TTP node (including the gateway) owns exactly one slot per round.
///
/// # Examples
///
/// ```
/// use mcs_model::{TdmaConfig, TdmaSlot, NodeId, TtpBusParams, Time};
///
/// let cfg = TdmaConfig::new(vec![
///     TdmaSlot { node: NodeId::new(2), capacity_bytes: 8 }, // S_G first
///     TdmaSlot { node: NodeId::new(0), capacity_bytes: 8 },
/// ]);
/// let params = TtpBusParams::new(Time::from_micros(8), Time::ZERO);
/// assert_eq!(cfg.round_duration(&params), Time::from_micros(128));
/// assert!(cfg.slot_of_node(NodeId::new(0)).is_some());
/// ```
#[derive(Debug, PartialEq, Eq, Default)]
pub struct TdmaConfig {
    slots: Vec<TdmaSlot>,
}

impl Clone for TdmaConfig {
    fn clone(&self) -> Self {
        TdmaConfig {
            slots: self.slots.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        // Reuses the slot vector's allocation (hot path: search loops
        // snapshotting configurations).
        self.slots.clone_from(&source.slots);
    }
}

impl TdmaConfig {
    /// Creates a configuration from an ordered slot sequence.
    pub fn new(slots: Vec<TdmaSlot>) -> Self {
        TdmaConfig { slots }
    }

    /// The ordered slots of one round.
    pub fn slots(&self) -> &[TdmaSlot] {
        &self.slots
    }

    /// Mutable access to the slots (used by optimizer moves).
    pub fn slots_mut(&mut self) -> &mut [TdmaSlot] {
        &mut self.slots
    }

    /// Number of slots in a round.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// The slot owned by `node`, if any.
    pub fn slot_of_node(&self, node: NodeId) -> Option<(SlotId, TdmaSlot)> {
        self.slots
            .iter()
            .enumerate()
            .find(|(_, s)| s.node == node)
            .map(|(i, s)| (SlotId::new(i as u32), *s))
    }

    /// Swaps the positions of two slots (an optimizer move).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn swap_slots(&mut self, a: SlotId, b: SlotId) {
        self.slots.swap(a.index(), b.index());
    }

    /// Duration of the slot at `slot` under the given bus parameters.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn slot_duration(&self, slot: SlotId, params: &TtpBusParams) -> Time {
        params.slot_duration(self.slots[slot.index()].capacity_bytes)
    }

    /// Offset of the start of `slot` within a round.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn slot_offset(&self, slot: SlotId, params: &TtpBusParams) -> Time {
        self.slots[..slot.index()]
            .iter()
            .map(|s| params.slot_duration(s.capacity_bytes))
            .sum()
    }

    /// Duration of one full TDMA round, `T_TDMA`.
    pub fn round_duration(&self, params: &TtpBusParams) -> Time {
        self.slots
            .iter()
            .map(|s| params.slot_duration(s.capacity_bytes))
            .sum()
    }

    /// Validates the configuration against an architecture: every TTP node
    /// has exactly one non-empty slot.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the first violation found.
    pub fn validate(&self, arch: &Architecture) -> Result<(), ConfigError> {
        let mut seen: HashMap<NodeId, ()> = HashMap::new();
        for slot in &self.slots {
            if !arch.contains_node(slot.node) || !arch.node(slot.node).role().on_ttp() {
                return Err(ConfigError::SlotForNonTtpNode(slot.node));
            }
            if slot.capacity_bytes == 0 {
                return Err(ConfigError::ZeroCapacitySlot(slot.node));
            }
            if seen.insert(slot.node, ()).is_some() {
                return Err(ConfigError::DuplicateSlot(slot.node));
            }
        }
        for node in arch.ttp_nodes() {
            if !seen.contains_key(&node.id()) {
                return Err(ConfigError::MissingSlot(node.id()));
            }
        }
        Ok(())
    }
}

/// The priority assignment π for ET processes and messages.
///
/// Priorities must be unique per scheduling resource: among processes sharing
/// an ET CPU, and among all frames on the CAN bus.
#[derive(Debug, PartialEq, Eq, Default)]
pub struct PriorityAssignment {
    processes: HashMap<ProcessId, Priority>,
    messages: HashMap<MessageId, Priority>,
}

impl Clone for PriorityAssignment {
    fn clone(&self) -> Self {
        PriorityAssignment {
            processes: self.processes.clone(),
            messages: self.messages.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.processes.clone_from(&source.processes);
        self.messages.clone_from(&source.messages);
    }
}

impl PriorityAssignment {
    /// Creates an empty assignment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the priority of a process.
    pub fn set_process(&mut self, process: ProcessId, priority: Priority) -> &mut Self {
        self.processes.insert(process, priority);
        self
    }

    /// Sets the priority of a message.
    pub fn set_message(&mut self, message: MessageId, priority: Priority) -> &mut Self {
        self.messages.insert(message, priority);
        self
    }

    /// The priority of a process, if assigned.
    pub fn process(&self, process: ProcessId) -> Option<Priority> {
        self.processes.get(&process).copied()
    }

    /// The priority of a message, if assigned.
    pub fn message(&self, message: MessageId) -> Option<Priority> {
        self.messages.get(&message).copied()
    }

    /// Swaps the priorities of two processes (an optimizer move).
    ///
    /// Missing entries are treated as an error in validation, not here; the
    /// swap is a no-op when either side is unassigned.
    pub fn swap_processes(&mut self, a: ProcessId, b: ProcessId) {
        if let (Some(pa), Some(pb)) = (self.process(a), self.process(b)) {
            self.processes.insert(a, pb);
            self.processes.insert(b, pa);
        }
    }

    /// Swaps the priorities of two messages (an optimizer move).
    pub fn swap_messages(&mut self, a: MessageId, b: MessageId) {
        if let (Some(pa), Some(pb)) = (self.message(a), self.message(b)) {
            self.messages.insert(a, pb);
            self.messages.insert(b, pa);
        }
    }

    /// Number of assigned process priorities.
    pub fn process_count(&self) -> usize {
        self.processes.len()
    }

    /// Number of assigned message priorities.
    pub fn message_count(&self) -> usize {
        self.messages.len()
    }
}

/// Offset pins used by the resource optimizer: minimum start times for TT
/// processes and TTC messages inside their [ASAP, ALAP] windows.
///
/// The static scheduler treats a pinned entity as "not ready before the pin",
/// which realizes the paper's *move a process/message inside its
/// [ASAP, ALAP] interval* design transformation.
#[derive(Debug, PartialEq, Eq, Default)]
pub struct OffsetConstraints {
    processes: HashMap<ProcessId, Time>,
    messages: HashMap<MessageId, Time>,
}

impl Clone for OffsetConstraints {
    fn clone(&self) -> Self {
        OffsetConstraints {
            processes: self.processes.clone(),
            messages: self.messages.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.processes.clone_from(&source.processes);
        self.messages.clone_from(&source.messages);
    }
}

impl OffsetConstraints {
    /// Creates an empty (unconstrained) set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pins the earliest start of a TT process.
    pub fn pin_process(&mut self, process: ProcessId, not_before: Time) -> &mut Self {
        self.processes.insert(process, not_before);
        self
    }

    /// Pins the earliest transmission of a TTC message.
    pub fn pin_message(&mut self, message: MessageId, not_before: Time) -> &mut Self {
        self.messages.insert(message, not_before);
        self
    }

    /// Removes the pin on a process.
    pub fn unpin_process(&mut self, process: ProcessId) -> &mut Self {
        self.processes.remove(&process);
        self
    }

    /// Removes the pin on a message.
    pub fn unpin_message(&mut self, message: MessageId) -> &mut Self {
        self.messages.remove(&message);
        self
    }

    /// The pin on a process, if any.
    pub fn process(&self, process: ProcessId) -> Option<Time> {
        self.processes.get(&process).copied()
    }

    /// The pin on a message, if any.
    pub fn message(&self, message: MessageId) -> Option<Time> {
        self.messages.get(&message).copied()
    }

    /// Returns `true` if no entity is pinned.
    pub fn is_empty(&self) -> bool {
        self.processes.is_empty() && self.messages.is_empty()
    }
}

/// The complete system configuration ψ = ⟨φ, β, π⟩ explored by the synthesis
/// heuristics. φ is represented by its constraints; the realized offsets are
/// computed by `MultiClusterScheduling`.
#[derive(Debug, PartialEq, Default)]
pub struct SystemConfig {
    /// The TDMA bus configuration β.
    pub tdma: TdmaConfig,
    /// The ET priority assignment π.
    pub priorities: PriorityAssignment,
    /// Offset pins realizing φ-moves of the resource optimizer.
    pub offsets: OffsetConstraints,
}

impl Clone for SystemConfig {
    fn clone(&self) -> Self {
        SystemConfig {
            tdma: self.tdma.clone(),
            priorities: self.priorities.clone(),
            offsets: self.offsets.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.tdma.clone_from(&source.tdma);
        self.priorities.clone_from(&source.priorities);
        self.offsets.clone_from(&source.offsets);
    }
}

impl SystemConfig {
    /// Creates a configuration from a TDMA layout and priorities, with no
    /// offset pins.
    pub fn new(tdma: TdmaConfig, priorities: PriorityAssignment) -> Self {
        SystemConfig {
            tdma,
            priorities,
            offsets: OffsetConstraints::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::architecture::NodeRole;

    fn arch3() -> Architecture {
        let mut b = Architecture::builder();
        b.add_node("N1", NodeRole::TimeTriggered);
        b.add_node("N2", NodeRole::EventTriggered);
        b.add_node("NG", NodeRole::Gateway);
        b.build().expect("valid")
    }

    #[test]
    fn priority_ordering_matches_can_semantics() {
        assert!(Priority::new(1).is_higher_than(Priority::new(5)));
        assert!(!Priority::new(5).is_higher_than(Priority::new(5)));
        assert_eq!(Priority::HIGHEST.level(), 0);
    }

    #[test]
    fn slot_offsets_and_round_duration() {
        let params = TtpBusParams::new(Time::from_micros(10), Time::from_micros(5));
        let cfg = TdmaConfig::new(vec![
            TdmaSlot {
                node: NodeId::new(2),
                capacity_bytes: 4,
            },
            TdmaSlot {
                node: NodeId::new(0),
                capacity_bytes: 8,
            },
        ]);
        assert_eq!(cfg.slot_offset(SlotId::new(0), &params), Time::ZERO);
        assert_eq!(
            cfg.slot_offset(SlotId::new(1), &params),
            Time::from_micros(45)
        );
        assert_eq!(cfg.round_duration(&params), Time::from_micros(45 + 85));
        assert_eq!(
            cfg.slot_duration(SlotId::new(1), &params),
            Time::from_micros(85)
        );
    }

    #[test]
    fn validation_requires_one_slot_per_ttp_node() {
        let arch = arch3();
        let ok = TdmaConfig::new(vec![
            TdmaSlot {
                node: NodeId::new(0),
                capacity_bytes: 8,
            },
            TdmaSlot {
                node: NodeId::new(2),
                capacity_bytes: 8,
            },
        ]);
        assert_eq!(ok.validate(&arch), Ok(()));

        let missing = TdmaConfig::new(vec![TdmaSlot {
            node: NodeId::new(0),
            capacity_bytes: 8,
        }]);
        assert_eq!(
            missing.validate(&arch),
            Err(ConfigError::MissingSlot(NodeId::new(2)))
        );

        let dup = TdmaConfig::new(vec![
            TdmaSlot {
                node: NodeId::new(0),
                capacity_bytes: 8,
            },
            TdmaSlot {
                node: NodeId::new(0),
                capacity_bytes: 8,
            },
        ]);
        assert_eq!(
            dup.validate(&arch),
            Err(ConfigError::DuplicateSlot(NodeId::new(0)))
        );

        let wrong = TdmaConfig::new(vec![TdmaSlot {
            node: NodeId::new(1),
            capacity_bytes: 8,
        }]);
        assert_eq!(
            wrong.validate(&arch),
            Err(ConfigError::SlotForNonTtpNode(NodeId::new(1)))
        );

        let zero = TdmaConfig::new(vec![TdmaSlot {
            node: NodeId::new(0),
            capacity_bytes: 0,
        }]);
        assert_eq!(
            zero.validate(&arch),
            Err(ConfigError::ZeroCapacitySlot(NodeId::new(0)))
        );
    }

    #[test]
    fn swap_slots_reorders_round() {
        let mut cfg = TdmaConfig::new(vec![
            TdmaSlot {
                node: NodeId::new(0),
                capacity_bytes: 1,
            },
            TdmaSlot {
                node: NodeId::new(2),
                capacity_bytes: 2,
            },
        ]);
        cfg.swap_slots(SlotId::new(0), SlotId::new(1));
        assert_eq!(cfg.slots()[0].node, NodeId::new(2));
        assert_eq!(cfg.slots()[1].node, NodeId::new(0));
    }

    #[test]
    fn priority_swaps() {
        let mut pa = PriorityAssignment::new();
        let (p1, p2) = (ProcessId::new(0), ProcessId::new(1));
        pa.set_process(p1, Priority::new(1));
        pa.set_process(p2, Priority::new(2));
        pa.swap_processes(p1, p2);
        assert_eq!(pa.process(p1), Some(Priority::new(2)));
        assert_eq!(pa.process(p2), Some(Priority::new(1)));

        let (m1, m2) = (MessageId::new(0), MessageId::new(1));
        pa.set_message(m1, Priority::new(3));
        pa.swap_messages(m1, m2); // m2 unassigned: no-op
        assert_eq!(pa.message(m1), Some(Priority::new(3)));
        assert_eq!(pa.message(m2), None);
    }

    #[test]
    fn offset_pins_round_trip() {
        let mut oc = OffsetConstraints::new();
        assert!(oc.is_empty());
        oc.pin_process(ProcessId::new(3), Time::from_millis(10));
        oc.pin_message(MessageId::new(1), Time::from_millis(20));
        assert_eq!(oc.process(ProcessId::new(3)), Some(Time::from_millis(10)));
        assert_eq!(oc.message(MessageId::new(1)), Some(Time::from_millis(20)));
        oc.unpin_process(ProcessId::new(3));
        oc.unpin_message(MessageId::new(1));
        assert!(oc.is_empty());
    }
}
