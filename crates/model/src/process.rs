//! Processes: the computational nodes of a process graph.

use crate::ids::{GraphId, NodeId, ProcessId};
use crate::time::Time;

/// A process mapped on a processing node (paper §2.1).
///
/// A process has a worst-case execution time on its node, inherits the period
/// of its process graph, and may carry a local deadline. Processes on the ETC
/// additionally need a unique priority, which is part of the *system
/// configuration* π (see [`crate::config::PriorityAssignment`]), not of the
/// application model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Process {
    id: ProcessId,
    name: String,
    graph: GraphId,
    node: NodeId,
    wcet: Time,
    bcet: Time,
    local_deadline: Option<Time>,
    blocking: Time,
}

impl Process {
    pub(crate) fn new(
        id: ProcessId,
        name: String,
        graph: GraphId,
        node: NodeId,
        wcet: Time,
    ) -> Self {
        Process {
            id,
            name,
            graph,
            node,
            wcet,
            bcet: wcet,
            local_deadline: None,
            blocking: Time::ZERO,
        }
    }

    /// The process identifier.
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// The human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The graph this process belongs to.
    pub fn graph(&self) -> GraphId {
        self.graph
    }

    /// The node the process is mapped on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Worst-case execution time `C_i` on the mapped node.
    pub fn wcet(&self) -> Time {
        self.wcet
    }

    /// Best-case execution time (used by the simulator to draw execution
    /// times; defaults to the WCET, i.e. deterministic execution).
    pub fn bcet(&self) -> Time {
        self.bcet
    }

    /// Optional local deadline `D_i` (relative to the graph activation).
    pub fn local_deadline(&self) -> Option<Time> {
        self.local_deadline
    }

    /// Blocking bound `B_i`: the longest critical section of any
    /// lower-priority process on the same node that can delay this process.
    /// Zero unless the application models shared resources.
    pub fn blocking(&self) -> Time {
        self.blocking
    }

    pub(crate) fn set_bcet(&mut self, bcet: Time) {
        self.bcet = bcet;
    }

    pub(crate) fn set_wcet(&mut self, wcet: Time) {
        self.wcet = wcet;
    }

    pub(crate) fn set_local_deadline(&mut self, deadline: Option<Time>) {
        self.local_deadline = deadline;
    }

    pub(crate) fn set_blocking(&mut self, blocking: Time) {
        self.blocking = blocking;
    }

    pub(crate) fn set_node(&mut self, node: NodeId) {
        self.node = node;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_defaults() {
        let p = Process::new(
            ProcessId::new(0),
            "P0".to_owned(),
            GraphId::new(0),
            NodeId::new(1),
            Time::from_millis(30),
        );
        assert_eq!(p.wcet(), Time::from_millis(30));
        assert_eq!(p.bcet(), p.wcet());
        assert_eq!(p.blocking(), Time::ZERO);
        assert_eq!(p.local_deadline(), None);
        assert_eq!(p.node(), NodeId::new(1));
        assert_eq!(p.name(), "P0");
    }
}
