//! Classification of messages by the route they take through the system.

use crate::application::Application;
use crate::architecture::Architecture;
use crate::ids::MessageId;

/// The route of a message through the buses and gateway queues (paper §4.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MessageRoute {
    /// Both endpoints reach the TTP bus: the message is statically scheduled
    /// into the sender's TDMA slot and handled entirely by the schedule
    /// tables (no queue analysis needed).
    TtcToTtc,
    /// Both endpoints reach the CAN bus: the message waits in the sender's
    /// `Out_Ni` priority queue, then arbitrates on CAN.
    EtcToEtc,
    /// TTC sender, ETC receiver: TTP slot → gateway MBI → transfer process
    /// `T` → `Out_CAN` priority queue → CAN bus.
    TtcToEtc,
    /// ETC sender, TTC receiver: `Out_Ni` → CAN bus → gateway interrupt →
    /// transfer process `T` → `Out_TTP` FIFO → gateway slot `S_G` → TTP bus.
    EtcToTtc,
}

impl MessageRoute {
    /// Returns `true` if the message crosses the gateway.
    pub fn crosses_gateway(self) -> bool {
        matches!(self, MessageRoute::TtcToEtc | MessageRoute::EtcToTtc)
    }

    /// Returns `true` if any leg of the route uses the CAN bus.
    pub fn uses_can(self) -> bool {
        !matches!(self, MessageRoute::TtcToTtc)
    }

    /// Returns `true` if any leg of the route uses the TTP bus.
    pub fn uses_ttp(self) -> bool {
        !matches!(self, MessageRoute::EtcToEtc)
    }
}

/// Classifies the route of `message` on `arch`.
///
/// Nodes that sit on both buses (the gateway) always use the direct,
/// single-bus route to their peer.
///
/// # Panics
///
/// Panics if `message` does not belong to `app` or its endpoints are mapped
/// on nodes outside `arch`.
pub fn classify(arch: &Architecture, app: &Application, message: MessageId) -> MessageRoute {
    let m = app.message(message);
    let src = arch.node(app.process(m.source()).node()).role();
    let dst = arch.node(app.process(m.dest()).node()).role();
    if src.on_ttp() && dst.on_ttp() {
        MessageRoute::TtcToTtc
    } else if src.on_can() && dst.on_can() {
        MessageRoute::EtcToEtc
    } else if src.on_ttp() {
        MessageRoute::TtcToEtc
    } else {
        MessageRoute::EtcToTtc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::architecture::NodeRole;
    use crate::time::Time;

    #[test]
    fn routes_cover_all_endpoint_combinations() {
        let mut b = Architecture::builder();
        let n1 = b.add_node("N1", NodeRole::TimeTriggered);
        let n2 = b.add_node("N2", NodeRole::EventTriggered);
        let ng = b.add_node("NG", NodeRole::Gateway);
        let n3 = b.add_node("N3", NodeRole::EventTriggered);
        let n4 = b.add_node("N4", NodeRole::TimeTriggered);
        let arch = b.build().expect("valid");

        let mut ab = Application::builder();
        let g = ab.add_graph("G", Time::from_millis(100), Time::from_millis(100));
        let p_tt = ab.add_process(g, "tt", n1, Time::from_millis(1));
        let p_et = ab.add_process(g, "et", n2, Time::from_millis(1));
        let p_gw = ab.add_process(g, "gw", ng, Time::from_millis(1));
        let p_et2 = ab.add_process(g, "et2", n3, Time::from_millis(1));
        let p_tt2 = ab.add_process(g, "tt2", n4, Time::from_millis(1));
        ab.link(p_tt, p_tt2, 4); // m0: TTC->TTC
        ab.link(p_tt, p_et, 4); // m1: TTC->ETC
        ab.link(p_et, p_tt2, 4); // m2: ETC->TTC
        ab.link(p_et, p_et2, 4); // m3: ETC->ETC
        ab.link(p_gw, p_tt2, 4); // m4: gateway->TT = TTP direct
        ab.link(p_et, p_gw, 4); // m5: ET->gateway = CAN direct
        let app = ab.build(&arch).expect("valid");

        let routes: Vec<MessageRoute> = app
            .messages()
            .iter()
            .map(|m| classify(&arch, &app, m.id()))
            .collect();
        assert_eq!(
            routes,
            vec![
                MessageRoute::TtcToTtc,
                MessageRoute::TtcToEtc,
                MessageRoute::EtcToTtc,
                MessageRoute::EtcToEtc,
                MessageRoute::TtcToTtc,
                MessageRoute::EtcToEtc,
            ]
        );
    }

    #[test]
    fn route_predicates() {
        assert!(MessageRoute::TtcToEtc.crosses_gateway());
        assert!(MessageRoute::EtcToTtc.crosses_gateway());
        assert!(!MessageRoute::TtcToTtc.crosses_gateway());
        assert!(!MessageRoute::EtcToEtc.crosses_gateway());
        assert!(MessageRoute::TtcToTtc.uses_ttp());
        assert!(!MessageRoute::TtcToTtc.uses_can());
        assert!(MessageRoute::EtcToEtc.uses_can());
        assert!(!MessageRoute::EtcToEtc.uses_ttp());
        assert!(MessageRoute::EtcToTtc.uses_can() && MessageRoute::EtcToTtc.uses_ttp());
    }
}
