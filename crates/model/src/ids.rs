//! Typed identifiers for the entities of an application/architecture.
//!
//! Every entity (process, message, node, slot, graph) is referred to by a
//! dense index wrapped in a newtype, so that a [`ProcessId`] can never be
//! confused with a [`MessageId`] at compile time (C-NEWTYPE). Dense indices
//! also let the analysis store per-entity state in flat `Vec`s.

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(u32);

        impl $name {
            /// Creates an identifier from a dense index.
            #[inline]
            pub const fn new(index: u32) -> Self {
                $name(index)
            }

            /// Returns the dense index as `usize`, for vector indexing.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Returns the raw index.
            #[inline]
            pub const fn raw(self) -> u32 {
                self.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(index: u32) -> Self {
                $name(index)
            }
        }

        impl From<$name> for u32 {
            fn from(id: $name) -> u32 {
                id.0
            }
        }
    };
}

define_id!(
    /// Identifier of a process (a node of a process graph).
    ProcessId,
    "P"
);
define_id!(
    /// Identifier of a message (a communication process on a graph arc).
    MessageId,
    "m"
);
define_id!(
    /// Identifier of a processing node (CPU + communication controller).
    NodeId,
    "N"
);
define_id!(
    /// Identifier of a process graph within an application.
    GraphId,
    "G"
);
define_id!(
    /// Identifier of a TDMA slot position within a round.
    SlotId,
    "S"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_through_u32() {
        let p = ProcessId::new(7);
        assert_eq!(p.index(), 7);
        assert_eq!(u32::from(p), 7);
        assert_eq!(ProcessId::from(7u32), p);
    }

    #[test]
    fn ids_format_with_paper_prefixes() {
        assert_eq!(ProcessId::new(1).to_string(), "P1");
        assert_eq!(MessageId::new(2).to_string(), "m2");
        assert_eq!(NodeId::new(3).to_string(), "N3");
        assert_eq!(GraphId::new(4).to_string(), "G4");
        assert_eq!(SlotId::new(0).to_string(), "S0");
        assert_eq!(format!("{:?}", ProcessId::new(1)), "P1");
    }

    #[test]
    fn distinct_id_types_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let set: HashSet<ProcessId> = (0..4).map(ProcessId::new).collect();
        assert_eq!(set.len(), 4);
        assert!(ProcessId::new(1) < ProcessId::new(2));
    }
}
