//! Process graphs: DAGs of dependent processes with a period and deadline.

use crate::ids::{GraphId, ProcessId};
use crate::time::Time;

/// A process graph `G_i` (paper §2.1).
///
/// All processes and messages of a graph share its period `T_G`; a deadline
/// `D_G ≤ T_G` is imposed on the completion of the graph's sink processes.
/// Graphs of communicating processes with different periods are assumed to
/// have already been combined into a hyper-graph over the LCM of the periods
/// (the generator in `mcs-gen` produces such hyper-graphs directly).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProcessGraph {
    id: GraphId,
    name: String,
    period: Time,
    deadline: Time,
    processes: Vec<ProcessId>,
}

impl ProcessGraph {
    pub(crate) fn new(id: GraphId, name: String, period: Time, deadline: Time) -> Self {
        ProcessGraph {
            id,
            name,
            period,
            deadline,
            processes: Vec::new(),
        }
    }

    pub(crate) fn push_process(&mut self, process: ProcessId) {
        self.processes.push(process);
    }

    /// The graph identifier.
    pub fn id(&self) -> GraphId {
        self.id
    }

    /// The human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The activation period `T_G`.
    pub fn period(&self) -> Time {
        self.period
    }

    /// The end-to-end deadline `D_G` (relative to activation).
    pub fn deadline(&self) -> Time {
        self.deadline
    }

    /// The processes belonging to this graph, in insertion order.
    pub fn processes(&self) -> &[ProcessId] {
        &self.processes
    }

    /// Number of processes in the graph.
    pub fn len(&self) -> usize {
        self.processes.len()
    }

    /// Returns `true` if the graph has no processes.
    pub fn is_empty(&self) -> bool {
        self.processes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_accessors() {
        let mut g = ProcessGraph::new(
            GraphId::new(0),
            "G1".to_owned(),
            Time::from_millis(240),
            Time::from_millis(200),
        );
        assert!(g.is_empty());
        g.push_process(ProcessId::new(0));
        g.push_process(ProcessId::new(1));
        assert_eq!(g.len(), 2);
        assert_eq!(g.period(), Time::from_millis(240));
        assert_eq!(g.deadline(), Time::from_millis(200));
        assert_eq!(g.processes(), &[ProcessId::new(0), ProcessId::new(1)]);
    }
}
