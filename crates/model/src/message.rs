//! Messages: communication processes inserted on inter-node graph arcs.

use crate::ids::{GraphId, MessageId, ProcessId};

/// A message exchanged between two processes mapped on different nodes
/// (paper §2.1: the black dots on the graph arcs).
///
/// A message inherits the period of its sender's process graph. Its size is
/// given in bytes; the transmission time `C_m` is derived from the size and
/// the bus it travels on (CAN frame formula, or the TTP slot it is packed
/// into). Messages on the ETC carry a unique priority assigned through
/// [`crate::config::PriorityAssignment`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Message {
    id: MessageId,
    name: String,
    graph: GraphId,
    source: ProcessId,
    dest: ProcessId,
    size_bytes: u32,
}

impl Message {
    pub(crate) fn new(
        id: MessageId,
        name: String,
        graph: GraphId,
        source: ProcessId,
        dest: ProcessId,
        size_bytes: u32,
    ) -> Self {
        Message {
            id,
            name,
            graph,
            source,
            dest,
            size_bytes,
        }
    }

    /// The message identifier.
    pub fn id(&self) -> MessageId {
        self.id
    }

    /// The human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The graph whose arc carries this message.
    pub fn graph(&self) -> GraphId {
        self.graph
    }

    /// The sending process `P_{S(m)}`.
    pub fn source(&self) -> ProcessId {
        self.source
    }

    /// The receiving process `P_{D(m)}`.
    pub fn dest(&self) -> ProcessId {
        self.dest
    }

    /// Payload size `s_m` in bytes.
    pub fn size_bytes(&self) -> u32 {
        self.size_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_accessors() {
        let m = Message::new(
            MessageId::new(3),
            "m3".to_owned(),
            GraphId::new(0),
            ProcessId::new(1),
            ProcessId::new(4),
            8,
        );
        assert_eq!(m.id(), MessageId::new(3));
        assert_eq!(m.source(), ProcessId::new(1));
        assert_eq!(m.dest(), ProcessId::new(4));
        assert_eq!(m.size_bytes(), 8);
        assert_eq!(m.name(), "m3");
    }
}
