//! Integer time arithmetic for the analysis.
//!
//! All schedulability equations in the paper are fixed points over times and
//! byte counts. Using exact integer arithmetic (instead of `f64`) makes the
//! fixed points exact and the iteration termination argument trivial. A
//! [`Time`] is an opaque count of *ticks*; the experiments interpret one tick
//! as one microsecond, so the paper's millisecond figures scale by 1000.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// A non-negative instant or duration measured in integer ticks.
///
/// `Time` is a transparent newtype over `u64` with saturating subtraction
/// helpers used pervasively by the response-time equations, where terms such
/// as `w + J_j − O_ij` must clamp at zero rather than underflow.
///
/// # Examples
///
/// ```
/// use mcs_model::Time;
///
/// let round = Time::from_millis(40);
/// let offset = Time::from_millis(90);
/// assert_eq!(offset % round, Time::from_millis(10));
/// assert_eq!(Time::from_millis(5).saturating_sub(round), Time::ZERO);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

impl Time {
    /// The zero instant/duration.
    pub const ZERO: Time = Time(0);
    /// The maximum representable time; used as an "unschedulable" sentinel
    /// bound by divergence checks.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates a time from raw ticks.
    #[inline]
    pub const fn from_ticks(ticks: u64) -> Self {
        Time(ticks)
    }

    /// Creates a time from microseconds (1 tick = 1 µs by convention).
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Time(us)
    }

    /// Creates a time from milliseconds (1 ms = 1000 ticks).
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Time(ms * 1_000)
    }

    /// Returns the raw tick count.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Returns the value in (possibly fractional) milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns `true` if this is the zero time.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Subtraction clamped at zero, mirroring the `(x)⁺` clamps in the
    /// paper's interference terms.
    #[inline]
    pub const fn saturating_sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition; `None` on overflow.
    #[inline]
    pub fn checked_add(self, rhs: Time) -> Option<Time> {
        self.0.checked_add(rhs.0).map(Time)
    }

    /// Saturating addition, used when accumulating divergent fixed points.
    #[inline]
    pub const fn saturating_add(self, rhs: Time) -> Time {
        Time(self.0.saturating_add(rhs.0))
    }

    /// Ceiling division by another time, returning a dimensionless count.
    ///
    /// This is the `⌈x / T⌉` that counts interfering activations.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    #[inline]
    pub fn div_ceil(self, divisor: Time) -> u64 {
        assert!(!divisor.is_zero(), "division of Time by zero period");
        self.0.div_ceil(divisor.0)
    }

    /// Multiplies a duration by a dimensionless count, saturating on overflow.
    #[inline]
    pub const fn saturating_mul(self, count: u64) -> Time {
        Time(self.0.saturating_mul(count))
    }

    /// The larger of two times.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The smaller of two times.
    #[inline]
    pub fn min(self, other: Time) -> Time {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Time({})", self.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_multiple_of(1_000) {
            write!(f, "{}ms", self.0 / 1_000)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

impl Add for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    /// # Panics
    ///
    /// Panics on underflow in debug builds (wraps in release like `u64`);
    /// prefer [`Time::saturating_sub`] in analysis code.
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl SubAssign for Time {
    #[inline]
    fn sub_assign(&mut self, rhs: Time) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Time {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: u64) -> Time {
        Time(self.0 * rhs)
    }
}

impl Div<u64> for Time {
    type Output = Time;
    #[inline]
    fn div(self, rhs: u64) -> Time {
        Time(self.0 / rhs)
    }
}

impl Rem for Time {
    type Output = Time;
    #[inline]
    fn rem(self, rhs: Time) -> Time {
        Time(self.0 % rhs.0)
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, Add::add)
    }
}

impl From<u64> for Time {
    fn from(ticks: u64) -> Self {
        Time(ticks)
    }
}

impl From<Time> for u64 {
    fn from(t: Time) -> u64 {
        t.0
    }
}

/// Least common multiple of two times, used for hyper-period computation.
///
/// # Panics
///
/// Panics if either argument is zero (a period of zero is invalid).
pub fn lcm(a: Time, b: Time) -> Time {
    assert!(!a.is_zero() && !b.is_zero(), "lcm of zero period");
    Time(a.0 / gcd_u64(a.0, b.0) * b.0)
}

fn gcd_u64(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = b;
        b = a % b;
        a = t;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        assert_eq!(Time::from_millis(3).ticks(), 3_000);
        assert_eq!(Time::from_micros(7).ticks(), 7);
        assert_eq!(Time::from_ticks(9).ticks(), 9);
        assert!(Time::ZERO.is_zero());
        assert!(!Time::from_ticks(1).is_zero());
    }

    #[test]
    fn saturating_sub_clamps_at_zero() {
        let a = Time::from_ticks(5);
        let b = Time::from_ticks(9);
        assert_eq!(a.saturating_sub(b), Time::ZERO);
        assert_eq!(b.saturating_sub(a), Time::from_ticks(4));
    }

    #[test]
    fn div_ceil_counts_activations() {
        let window = Time::from_ticks(41);
        let period = Time::from_ticks(20);
        assert_eq!(window.div_ceil(period), 3);
        assert_eq!(Time::from_ticks(40).div_ceil(period), 2);
        assert_eq!(Time::ZERO.div_ceil(period), 0);
    }

    #[test]
    #[should_panic(expected = "division of Time by zero period")]
    fn div_ceil_zero_period_panics() {
        let _ = Time::from_ticks(1).div_ceil(Time::ZERO);
    }

    #[test]
    fn rem_wraps_into_round() {
        assert_eq!(
            Time::from_millis(90) % Time::from_millis(40),
            Time::from_millis(10)
        );
    }

    #[test]
    fn lcm_of_periods() {
        assert_eq!(
            lcm(Time::from_ticks(6), Time::from_ticks(4)),
            Time::from_ticks(12)
        );
        assert_eq!(
            lcm(Time::from_ticks(5), Time::from_ticks(5)),
            Time::from_ticks(5)
        );
    }

    #[test]
    fn display_uses_millis_when_round() {
        assert_eq!(Time::from_millis(40).to_string(), "40ms");
        assert_eq!(Time::from_micros(1500).to_string(), "1500us");
    }

    #[test]
    fn sum_and_ordering() {
        let total: Time = [1u64, 2, 3].into_iter().map(Time::from_ticks).sum();
        assert_eq!(total, Time::from_ticks(6));
        assert_eq!(
            Time::from_ticks(3).max(Time::from_ticks(5)),
            Time::from_ticks(5)
        );
        assert_eq!(
            Time::from_ticks(3).min(Time::from_ticks(5)),
            Time::from_ticks(3)
        );
    }

    #[test]
    fn saturating_ops_do_not_overflow() {
        assert_eq!(Time::MAX.saturating_add(Time::from_ticks(1)), Time::MAX);
        assert_eq!(Time::MAX.saturating_mul(3), Time::MAX);
    }
}
