//! A [`System`]: application + architecture + gateway software parameters.

use crate::application::Application;
use crate::architecture::Architecture;
use crate::ids::MessageId;
use crate::route::{classify, MessageRoute};
use crate::time::Time;

/// Parameters of the gateway transfer process `T` (paper §2.3).
///
/// `T` runs on the gateway CPU with the highest priority. It is invoked
/// periodically to copy TTC frames from the MBI into `Out_CAN`, and on CAN
/// receive interrupts to move frames into `Out_TTP`. Its period must be short
/// enough that no MBI message instance is overwritten before being copied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GatewayParams {
    /// Worst-case execution time `C_T` of one transfer invocation.
    pub transfer_wcet: Time,
    /// Invocation period `T_T` of the transfer process.
    pub transfer_period: Time,
}

impl GatewayParams {
    /// Creates gateway parameters.
    pub fn new(transfer_wcet: Time, transfer_period: Time) -> Self {
        GatewayParams {
            transfer_wcet,
            transfer_period,
        }
    }

    /// Worst-case response time `r_T` of the transfer process. `T` has the
    /// highest priority on the gateway CPU and is never blocked, so
    /// `r_T = C_T`.
    pub fn transfer_response(&self) -> Time {
        self.transfer_wcet
    }
}

impl Default for GatewayParams {
    /// 100 µs transfer WCET, invoked every 1 ms.
    fn default() -> Self {
        GatewayParams {
            transfer_wcet: Time::from_micros(100),
            transfer_period: Time::from_millis(1),
        }
    }
}

/// A complete system: the application Γ mapped on a two-cluster architecture,
/// plus gateway software parameters. This is the input to the analysis and
/// synthesis algorithms.
#[derive(Clone, Debug)]
pub struct System {
    /// The application (process graphs, processes, messages).
    pub application: Application,
    /// The two-cluster hardware architecture.
    pub architecture: Architecture,
    /// Gateway transfer-process parameters.
    pub gateway: GatewayParams,
}

impl System {
    /// Bundles an application with its architecture using default gateway
    /// parameters.
    pub fn new(application: Application, architecture: Architecture) -> Self {
        System {
            application,
            architecture,
            gateway: GatewayParams::default(),
        }
    }

    /// Bundles an application with its architecture and explicit gateway
    /// parameters.
    pub fn with_gateway(
        application: Application,
        architecture: Architecture,
        gateway: GatewayParams,
    ) -> Self {
        System {
            application,
            architecture,
            gateway,
        }
    }

    /// The route taken by `message`.
    pub fn route(&self, message: MessageId) -> MessageRoute {
        classify(&self.architecture, &self.application, message)
    }

    /// Messages following the given route, in id order.
    pub fn messages_on_route(&self, route: MessageRoute) -> Vec<MessageId> {
        self.application
            .messages()
            .iter()
            .map(|m| m.id())
            .filter(|&m| self.route(m) == route)
            .collect()
    }

    /// Number of inter-cluster messages (both gateway directions).
    pub fn inter_cluster_message_count(&self) -> usize {
        self.application
            .messages()
            .iter()
            .filter(|m| self.route(m.id()).crosses_gateway())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::architecture::NodeRole;

    #[test]
    fn gateway_defaults_and_response() {
        let g = GatewayParams::default();
        assert_eq!(g.transfer_response(), g.transfer_wcet);
        let g2 = GatewayParams::new(Time::from_millis(5), Time::from_millis(10));
        assert_eq!(g2.transfer_response(), Time::from_millis(5));
    }

    #[test]
    fn system_routing_helpers() {
        let mut b = Architecture::builder();
        let n1 = b.add_node("N1", NodeRole::TimeTriggered);
        let n2 = b.add_node("N2", NodeRole::EventTriggered);
        b.add_node("NG", NodeRole::Gateway);
        let arch = b.build().expect("valid");

        let mut ab = Application::builder();
        let g = ab.add_graph("G", Time::from_millis(100), Time::from_millis(100));
        let a = ab.add_process(g, "a", n1, Time::from_millis(1));
        let c = ab.add_process(g, "c", n2, Time::from_millis(1));
        let d = ab.add_process(g, "d", n1, Time::from_millis(1));
        ab.link(a, c, 8);
        ab.link(c, d, 8);
        let app = ab.build(&arch).expect("valid");

        let sys = System::new(app, arch);
        assert_eq!(sys.inter_cluster_message_count(), 2);
        assert_eq!(sys.messages_on_route(MessageRoute::TtcToEtc).len(), 1);
        assert_eq!(sys.messages_on_route(MessageRoute::EtcToTtc).len(), 1);
        assert_eq!(sys.messages_on_route(MessageRoute::TtcToTtc).len(), 0);
    }
}
