//! # mcs-model
//!
//! Application and architecture model for multi-cluster (TTP + CAN)
//! distributed embedded systems, reproducing the system model of
//! *Pop, Eles, Peng — "Schedulability Analysis and Optimization for the
//! Synthesis of Multi-Cluster Distributed Embedded Systems", DATE 2003*.
//!
//! The model has three layers:
//!
//! * the **application** Γ — process graphs with periods and deadlines,
//!   processes with WCETs mapped on nodes, and messages on inter-node arcs
//!   ([`Application`], [`ProcessGraph`], [`Process`], [`Message`]);
//! * the **architecture** — a time-triggered cluster (TTP/TDMA bus), an
//!   event-triggered cluster (CAN bus) and a gateway node bridging them
//!   ([`Architecture`], [`NodeRole`], [`System`]);
//! * the **configuration** ψ = ⟨φ, β, π⟩ explored by synthesis — TDMA slot
//!   sequence/sizes, ET priorities and offset pins ([`SystemConfig`],
//!   [`TdmaConfig`], [`PriorityAssignment`], [`OffsetConstraints`]).
//!
//! # Examples
//!
//! ```
//! use mcs_model::{Application, Architecture, NodeRole, System, Time};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut arch = Architecture::builder();
//! let n1 = arch.add_node("N1", NodeRole::TimeTriggered);
//! let n2 = arch.add_node("N2", NodeRole::EventTriggered);
//! arch.add_node("NG", NodeRole::Gateway);
//! let arch = arch.build()?;
//!
//! let mut app = Application::builder();
//! let g1 = app.add_graph("G1", Time::from_millis(240), Time::from_millis(200));
//! let p1 = app.add_process(g1, "P1", n1, Time::from_millis(30));
//! let p2 = app.add_process(g1, "P2", n2, Time::from_millis(20));
//! app.link(p1, p2, 8);
//! let app = app.build(&arch)?;
//!
//! let system = System::new(app, arch);
//! assert_eq!(system.inter_cluster_message_count(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod application;
mod architecture;
mod config;
mod error;
mod graph;
mod hypergraph;
mod ids;
mod message;
mod process;
mod route;
mod system;
mod time;

pub use application::{Application, ApplicationBuilder, Edge};
pub use architecture::{
    Architecture, ArchitectureBuilder, BuildArchitectureError, CanBusParams, Node, NodeRole,
    TtpBusParams,
};
pub use config::{
    OffsetConstraints, Priority, PriorityAssignment, SystemConfig, TdmaConfig, TdmaSlot,
};
pub use error::{ConfigError, ModelError};
pub use graph::ProcessGraph;
pub use hypergraph::{unroll_to_hyperperiod, Hypergraph};
pub use ids::{GraphId, MessageId, NodeId, ProcessId, SlotId};
pub use message::Message;
pub use process::Process;
pub use route::{classify, MessageRoute};
pub use system::{GatewayParams, System};
pub use time::{lcm, Time};
