//! Hyper-graph construction (paper §2.1): combining process graphs of
//! different periods into activation-unrolled graphs over the hyper-period.
//!
//! "If communicating processes are of different periods, they are combined
//! into a hyper-graph capturing all process activations for the
//! hyper-period (LCM of all periods)."
//!
//! [`unroll_to_hyperperiod`] replaces every graph of period `T < H` (where
//! `H` is the application hyper-period) with `H / T` copies — one per
//! activation — each released `k · T` after the hyper-graph activation and
//! carrying the local deadline `k · T + D`. The resulting application has a
//! single common period `H`, which makes the one-activation-per-cycle
//! assumption of the static TTC scheduler exact and lets all flows share
//! one phase group in the analysis.

use crate::application::{Application, ApplicationBuilder};
use crate::architecture::Architecture;
use crate::error::ModelError;
use crate::ids::ProcessId;
use crate::time::Time;

/// The result of unrolling: the hyper-period application plus the release
/// offsets that must be applied as offset pins (instance `k` of a
/// `T`-periodic graph may not start before `k · T`).
#[derive(Clone, Debug)]
pub struct Hypergraph {
    /// The unrolled application; every graph has the hyper-period as its
    /// period.
    pub application: Application,
    /// Release lower bound per process of the unrolled application
    /// (zero entries are omitted).
    pub releases: Vec<(ProcessId, Time)>,
}

/// Unrolls `app` to its hyper-period.
///
/// Instance `k` of each process keeps its node and WCET; its local deadline
/// becomes `k · T + min(D_local, D_G)` so that per-activation deadlines are
/// still enforced within the long hyper-graph period.
///
/// # Errors
///
/// Returns [`ModelError`] if the unrolled application fails validation
/// (cannot happen for an application that itself validated against `arch`).
///
/// # Examples
///
/// ```
/// use mcs_model::{unroll_to_hyperperiod, Application, Architecture, NodeRole, Time};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut arch = Architecture::builder();
/// let n1 = arch.add_node("N1", NodeRole::TimeTriggered);
/// arch.add_node("NG", NodeRole::Gateway);
/// let arch = arch.build()?;
///
/// let mut app = Application::builder();
/// let fast = app.add_graph("fast", Time::from_millis(50), Time::from_millis(40));
/// app.add_process(fast, "f", n1, Time::from_millis(5));
/// let slow = app.add_graph("slow", Time::from_millis(100), Time::from_millis(90));
/// app.add_process(slow, "s", n1, Time::from_millis(5));
/// let app = app.build(&arch)?;
///
/// let hyper = unroll_to_hyperperiod(&app, &arch)?;
/// // "fast" unrolls into 2 instances; "slow" stays single.
/// assert_eq!(hyper.application.graphs().len(), 3);
/// assert_eq!(hyper.application.hyperperiod(), Time::from_millis(100));
/// # Ok(())
/// # }
/// ```
pub fn unroll_to_hyperperiod(
    app: &Application,
    arch: &Architecture,
) -> Result<Hypergraph, ModelError> {
    let hyper = app.hyperperiod();
    let mut builder = ApplicationBuilder::new();
    let mut releases = Vec::new();

    for graph in app.graphs() {
        let period = graph.period();
        let copies = hyper.ticks() / period.ticks();
        for k in 0..copies {
            let release = period.saturating_mul(k);
            let name = if copies == 1 {
                graph.name().to_owned()
            } else {
                format!("{}#{k}", graph.name())
            };
            let new_graph = builder.add_graph(name, hyper, hyper);
            // Map original process ids to the new instance's ids.
            let mut mapping = std::collections::HashMap::new();
            for &p in graph.processes() {
                let proc = app.process(p);
                let name = if copies == 1 {
                    proc.name().to_owned()
                } else {
                    format!("{}#{k}", proc.name())
                };
                let new_p = builder.add_process(new_graph, name, proc.node(), proc.wcet());
                builder.set_bcet(new_p, proc.bcet());
                if !proc.blocking().is_zero() {
                    builder.set_blocking(new_p, proc.blocking());
                }
                // Per-activation deadline, relative to the hyper-graph
                // activation.
                let local = proc
                    .local_deadline()
                    .unwrap_or_else(|| graph.deadline())
                    .min(graph.deadline());
                builder.set_local_deadline(new_p, release + local);
                if !release.is_zero() {
                    releases.push((new_p, release));
                }
                mapping.insert(p, new_p);
            }
            for edge in app.edges() {
                if app.process(edge.source).graph() != graph.id() {
                    continue;
                }
                let size = edge
                    .message
                    .map(|m| app.message(m).size_bytes())
                    .unwrap_or(0);
                builder.link(mapping[&edge.source], mapping[&edge.dest], size.max(1));
            }
        }
    }
    let application = builder.build(arch)?;
    Ok(Hypergraph {
        application,
        releases,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::architecture::NodeRole;

    fn arch() -> (Architecture, crate::ids::NodeId, crate::ids::NodeId) {
        let mut b = Architecture::builder();
        let n1 = b.add_node("N1", NodeRole::TimeTriggered);
        let n2 = b.add_node("N2", NodeRole::EventTriggered);
        b.add_node("NG", NodeRole::Gateway);
        (b.build().expect("valid"), n1, n2)
    }

    #[test]
    fn unrolling_replicates_fast_graphs() {
        let (arch, n1, n2) = arch();
        let mut ab = Application::builder();
        let fast = ab.add_graph("fast", Time::from_millis(40), Time::from_millis(30));
        let f1 = ab.add_process(fast, "f1", n1, Time::from_millis(4));
        let f2 = ab.add_process(fast, "f2", n2, Time::from_millis(4));
        ab.link(f1, f2, 8);
        let slow = ab.add_graph("slow", Time::from_millis(120), Time::from_millis(120));
        ab.add_process(slow, "s1", n1, Time::from_millis(4));
        let app = ab.build(&arch).expect("valid");

        let hyper = unroll_to_hyperperiod(&app, &arch).expect("unrolls");
        // 120 / 40 = 3 fast instances + 1 slow.
        assert_eq!(hyper.application.graphs().len(), 4);
        assert_eq!(hyper.application.processes().len(), 3 * 2 + 1);
        assert_eq!(hyper.application.messages().len(), 3);
        for g in hyper.application.graphs() {
            assert_eq!(g.period(), Time::from_millis(120));
        }
        // Instances 1 and 2 carry releases of 40/80 ms.
        let releases: Vec<Time> = hyper.releases.iter().map(|&(_, t)| t).collect();
        assert!(releases.contains(&Time::from_millis(40)));
        assert!(releases.contains(&Time::from_millis(80)));
        // Per-activation deadlines: instance 2's f-processes must complete
        // by 80 + 30.
        let late = hyper
            .application
            .processes()
            .iter()
            .find(|p| p.name() == "f2#2")
            .expect("instance exists");
        assert_eq!(late.local_deadline(), Some(Time::from_millis(110)));
    }

    #[test]
    fn single_period_applications_pass_through() {
        let (arch, n1, _) = arch();
        let mut ab = Application::builder();
        let g = ab.add_graph("g", Time::from_millis(50), Time::from_millis(50));
        ab.add_process(g, "p", n1, Time::from_millis(5));
        let app = ab.build(&arch).expect("valid");
        let hyper = unroll_to_hyperperiod(&app, &arch).expect("unrolls");
        assert_eq!(hyper.application.graphs().len(), 1);
        assert!(hyper.releases.is_empty());
        assert_eq!(hyper.application.graphs()[0].name(), "g");
        assert_eq!(hyper.application.processes()[0].name(), "p");
    }

    #[test]
    fn unrolled_instances_preserve_structure() {
        let (arch, n1, n2) = arch();
        let mut ab = Application::builder();
        let g = ab.add_graph("g", Time::from_millis(60), Time::from_millis(60));
        let a = ab.add_process(g, "a", n1, Time::from_millis(3));
        let b = ab.add_process(g, "b", n2, Time::from_millis(3));
        let c = ab.add_process(g, "c", n1, Time::from_millis(3));
        ab.link(a, b, 8);
        ab.link(b, c, 8);
        let other = ab.add_graph("o", Time::from_millis(120), Time::from_millis(120));
        ab.add_process(other, "x", n1, Time::from_millis(3));
        let app = ab.build(&arch).expect("valid");

        let hyper = unroll_to_hyperperiod(&app, &arch).expect("unrolls");
        // Each of the two g-instances has 2 messages with identical sizes.
        for k in 0..2 {
            let inst: Vec<_> = hyper
                .application
                .processes()
                .iter()
                .filter(|p| p.name().ends_with(&format!("#{k}")))
                .collect();
            assert_eq!(inst.len(), 3, "instance {k}");
        }
        assert_eq!(hyper.application.messages().len(), 4);
    }
}
