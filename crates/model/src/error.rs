//! Error types for model construction and configuration validation.

use std::error::Error;
use std::fmt;

use crate::ids::{GraphId, MessageId, NodeId, ProcessId};

/// Error building or validating an application model.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// A graph has period zero.
    ZeroPeriod(GraphId),
    /// A graph deadline is zero or exceeds the graph period.
    InvalidDeadline(GraphId),
    /// A graph contains no processes.
    EmptyGraph(GraphId),
    /// A graph contains a dependency cycle.
    CyclicGraph(GraphId),
    /// A process is mapped on a node that does not exist.
    UnknownNode(ProcessId),
    /// A process has zero worst-case execution time.
    ZeroWcet(ProcessId),
    /// A process's best-case execution time exceeds its WCET.
    BcetExceedsWcet(ProcessId),
    /// A link connects processes of different graphs.
    CrossGraphLink(ProcessId, ProcessId),
    /// A cross-node link declares a zero-size message.
    ZeroSizeMessage(ProcessId, ProcessId),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::ZeroPeriod(g) => write!(f, "graph {g} has zero period"),
            ModelError::InvalidDeadline(g) => {
                write!(f, "graph {g} deadline is zero or exceeds its period")
            }
            ModelError::EmptyGraph(g) => write!(f, "graph {g} has no processes"),
            ModelError::CyclicGraph(g) => write!(f, "graph {g} contains a dependency cycle"),
            ModelError::UnknownNode(p) => write!(f, "process {p} is mapped on an unknown node"),
            ModelError::ZeroWcet(p) => write!(f, "process {p} has zero WCET"),
            ModelError::BcetExceedsWcet(p) => write!(f, "process {p} has BCET exceeding its WCET"),
            ModelError::CrossGraphLink(a, b) => {
                write!(f, "link {a} -> {b} connects different graphs")
            }
            ModelError::ZeroSizeMessage(a, b) => {
                write!(f, "cross-node link {a} -> {b} declares a zero-size message")
            }
        }
    }
}

impl Error for ModelError {}

/// Error validating a system configuration ψ against a system.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// A TTP node has no TDMA slot.
    MissingSlot(NodeId),
    /// A node appears in more than one TDMA slot.
    DuplicateSlot(NodeId),
    /// A slot references a node that is not on the TTP bus.
    SlotForNonTtpNode(NodeId),
    /// A slot has zero byte capacity.
    ZeroCapacitySlot(NodeId),
    /// A slot is too small for the largest message its node must send.
    SlotTooSmall {
        /// The under-provisioned node.
        node: NodeId,
        /// The capacity configured for the node's slot.
        capacity: u32,
        /// The size of the largest frame the node must send in one slot.
        required: u32,
    },
    /// An ET process has no priority assigned.
    MissingProcessPriority(ProcessId),
    /// An ET message has no priority assigned.
    MissingMessagePriority(MessageId),
    /// Two processes on the same node share a priority.
    DuplicateProcessPriority(ProcessId, ProcessId),
    /// Two CAN messages share a priority.
    DuplicateMessagePriority(MessageId, MessageId),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::MissingSlot(n) => write!(f, "TTP node {n} has no TDMA slot"),
            ConfigError::DuplicateSlot(n) => write!(f, "node {n} appears in more than one slot"),
            ConfigError::SlotForNonTtpNode(n) => {
                write!(f, "slot assigned to node {n} which is not on the TTP bus")
            }
            ConfigError::ZeroCapacitySlot(n) => write!(f, "slot of node {n} has zero capacity"),
            ConfigError::SlotTooSmall {
                node,
                capacity,
                required,
            } => write!(
                f,
                "slot of node {node} has capacity {capacity} B but must carry {required} B"
            ),
            ConfigError::MissingProcessPriority(p) => {
                write!(f, "ET process {p} has no priority assigned")
            }
            ConfigError::MissingMessagePriority(m) => {
                write!(f, "ET message {m} has no priority assigned")
            }
            ConfigError::DuplicateProcessPriority(a, b) => {
                write!(f, "processes {a} and {b} on the same node share a priority")
            }
            ConfigError::DuplicateMessagePriority(a, b) => {
                write!(f, "messages {a} and {b} share a priority")
            }
        }
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_concise() {
        let e = ModelError::ZeroPeriod(GraphId::new(1));
        assert_eq!(e.to_string(), "graph G1 has zero period");
        let c = ConfigError::SlotTooSmall {
            node: NodeId::new(2),
            capacity: 8,
            required: 16,
        };
        assert!(c.to_string().contains("N2"));
        assert!(c.to_string().contains("16"));
    }
}
