//! The application `Γ`: a set of process graphs plus their messages, with
//! derived adjacency, topological orders and the hyper-period.

use std::collections::HashMap;

use crate::architecture::Architecture;
use crate::error::ModelError;
use crate::graph::ProcessGraph;
use crate::ids::{GraphId, MessageId, NodeId, ProcessId};
use crate::message::Message;
use crate::process::Process;
use crate::time::{lcm, Time};

/// A dependency arc of a process graph.
///
/// Arcs between processes on the same node are plain precedence constraints
/// (the communication cost is folded into the sender's WCET, paper §2.1);
/// arcs between processes on different nodes carry a [`Message`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Edge {
    /// The predecessor process.
    pub source: ProcessId,
    /// The successor process.
    pub dest: ProcessId,
    /// The message inserted on the arc, if the endpoints are on different
    /// nodes.
    pub message: Option<MessageId>,
}

/// An application `Γ` mapped on an architecture: process graphs, processes,
/// messages, and derived structure.
///
/// Build one with [`Application::builder`]; the builder validates the model
/// against the target [`Architecture`] (mapping, acyclicity, deadlines).
///
/// # Examples
///
/// ```
/// use mcs_model::{Application, Architecture, NodeRole, Time};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut arch = Architecture::builder();
/// let n1 = arch.add_node("N1", NodeRole::TimeTriggered);
/// let n2 = arch.add_node("N2", NodeRole::EventTriggered);
/// arch.add_node("NG", NodeRole::Gateway);
/// let arch = arch.build()?;
///
/// let mut app = Application::builder();
/// let g = app.add_graph("G1", Time::from_millis(240), Time::from_millis(200));
/// let p1 = app.add_process(g, "P1", n1, Time::from_millis(30));
/// let p2 = app.add_process(g, "P2", n2, Time::from_millis(20));
/// app.link(p1, p2, 8); // cross-node: a message is inserted on the arc
/// let app = app.build(&arch)?;
/// assert_eq!(app.messages().len(), 1);
/// assert_eq!(app.hyperperiod(), Time::from_millis(240));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Application {
    graphs: Vec<ProcessGraph>,
    processes: Vec<Process>,
    messages: Vec<Message>,
    edges: Vec<Edge>,
    /// Outgoing arcs per process.
    succs: Vec<Vec<Edge>>,
    /// Incoming arcs per process.
    preds: Vec<Vec<Edge>>,
    /// Topological order of each graph's processes.
    topo: Vec<Vec<ProcessId>>,
    hyperperiod: Time,
}

impl Application {
    /// Starts building an application.
    pub fn builder() -> ApplicationBuilder {
        ApplicationBuilder::default()
    }

    /// The process graphs, ordered by id.
    pub fn graphs(&self) -> &[ProcessGraph] {
        &self.graphs
    }

    /// The processes, ordered by id.
    pub fn processes(&self) -> &[Process] {
        &self.processes
    }

    /// The messages, ordered by id.
    pub fn messages(&self) -> &[Message] {
        &self.messages
    }

    /// All dependency arcs.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Looks up a process graph.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this application.
    pub fn graph(&self, id: GraphId) -> &ProcessGraph {
        &self.graphs[id.index()]
    }

    /// Looks up a process.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this application.
    pub fn process(&self, id: ProcessId) -> &Process {
        &self.processes[id.index()]
    }

    /// Looks up a message.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this application.
    pub fn message(&self, id: MessageId) -> &Message {
        &self.messages[id.index()]
    }

    /// Outgoing arcs of a process.
    pub fn successors(&self, id: ProcessId) -> &[Edge] {
        &self.succs[id.index()]
    }

    /// Incoming arcs of a process.
    pub fn predecessors(&self, id: ProcessId) -> &[Edge] {
        &self.preds[id.index()]
    }

    /// The period of the graph a process belongs to.
    pub fn process_period(&self, id: ProcessId) -> Time {
        self.graph(self.process(id).graph()).period()
    }

    /// The period of a message (identical to its sender's graph period).
    pub fn message_period(&self, id: MessageId) -> Time {
        self.graph(self.message(id).graph()).period()
    }

    /// A topological order of the processes of `graph`.
    pub fn topological_order(&self, graph: GraphId) -> &[ProcessId] {
        &self.topo[graph.index()]
    }

    /// Source processes (no predecessors) of a graph.
    pub fn sources(&self, graph: GraphId) -> Vec<ProcessId> {
        self.graph(graph)
            .processes()
            .iter()
            .copied()
            .filter(|&p| self.preds[p.index()].is_empty())
            .collect()
    }

    /// Sink processes (no successors) of a graph.
    pub fn sinks(&self, graph: GraphId) -> Vec<ProcessId> {
        self.graph(graph)
            .processes()
            .iter()
            .copied()
            .filter(|&p| self.succs[p.index()].is_empty())
            .collect()
    }

    /// The hyper-period: LCM of all graph periods.
    pub fn hyperperiod(&self) -> Time {
        self.hyperperiod
    }

    /// Processes mapped on `node`, in id order.
    pub fn processes_on(&self, node: NodeId) -> impl Iterator<Item = &Process> + '_ {
        self.processes.iter().filter(move |p| p.node() == node)
    }

    /// Messages whose sender is mapped on `node`, in id order.
    pub fn messages_from(&self, node: NodeId) -> impl Iterator<Item = &Message> + '_ {
        self.messages
            .iter()
            .filter(move |m| self.process(m.source()).node() == node)
    }

    /// Returns a copy of the application with `process`'s WCET replaced —
    /// the primitive of WCET sensitivity analysis.
    ///
    /// The BCET is clamped down to the new WCET if necessary.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ZeroWcet`] if `wcet` is zero.
    pub fn with_wcet(&self, process: ProcessId, wcet: Time) -> Result<Application, ModelError> {
        if wcet.is_zero() {
            return Err(ModelError::ZeroWcet(process));
        }
        let mut copy = self.clone();
        let p = &mut copy.processes[process.index()];
        p.set_wcet(wcet);
        if p.bcet() > wcet {
            p.set_bcet(wcet);
        }
        Ok(copy)
    }

    /// CPU utilization of `node`: sum over mapped processes of `C_i / T_i`.
    pub fn node_utilization(&self, node: NodeId) -> f64 {
        self.processes_on(node)
            .map(|p| p.wcet().ticks() as f64 / self.process_period(p.id()).ticks() as f64)
            .sum()
    }
}

/// Builder for [`Application`].
#[derive(Clone, Debug, Default)]
pub struct ApplicationBuilder {
    graphs: Vec<ProcessGraph>,
    processes: Vec<Process>,
    links: Vec<(ProcessId, ProcessId, u32)>,
    bcets: HashMap<ProcessId, Time>,
    local_deadlines: HashMap<ProcessId, Time>,
    blockings: HashMap<ProcessId, Time>,
}

impl ApplicationBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a process graph with the given period and end-to-end deadline.
    pub fn add_graph(&mut self, name: impl Into<String>, period: Time, deadline: Time) -> GraphId {
        let id = GraphId::new(self.graphs.len() as u32);
        self.graphs
            .push(ProcessGraph::new(id, name.into(), period, deadline));
        id
    }

    /// Adds a process to `graph`, mapped on `node`, with the given WCET.
    ///
    /// # Panics
    ///
    /// Panics if `graph` was not created by this builder.
    pub fn add_process(
        &mut self,
        graph: GraphId,
        name: impl Into<String>,
        node: NodeId,
        wcet: Time,
    ) -> ProcessId {
        let id = ProcessId::new(self.processes.len() as u32);
        self.processes
            .push(Process::new(id, name.into(), graph, node, wcet));
        self.graphs[graph.index()].push_process(id);
        id
    }

    /// Adds a dependency arc from `source` to `dest`.
    ///
    /// If the two processes are mapped on different nodes, a message of
    /// `size_bytes` is inserted on the arc at [`build`](Self::build) time;
    /// otherwise the size is ignored and the arc is a plain precedence
    /// constraint.
    pub fn link(&mut self, source: ProcessId, dest: ProcessId, size_bytes: u32) -> &mut Self {
        self.links.push((source, dest, size_bytes));
        self
    }

    /// Sets the best-case execution time of a process (simulator input).
    pub fn set_bcet(&mut self, process: ProcessId, bcet: Time) -> &mut Self {
        self.bcets.insert(process, bcet);
        self
    }

    /// Sets a local deadline on a process.
    pub fn set_local_deadline(&mut self, process: ProcessId, deadline: Time) -> &mut Self {
        self.local_deadlines.insert(process, deadline);
        self
    }

    /// Sets the blocking bound `B_i` of a process.
    pub fn set_blocking(&mut self, process: ProcessId, blocking: Time) -> &mut Self {
        self.blockings.insert(process, blocking);
        self
    }

    /// Remaps a process to a different node (used by design-space exploration
    /// before `build`).
    pub fn set_node(&mut self, process: ProcessId, node: NodeId) -> &mut Self {
        self.processes[process.index()].set_node(node);
        self
    }

    /// Validates the model against `arch` and produces the [`Application`].
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if a process references an unknown node, a
    /// graph has a non-positive period or a deadline exceeding its period, a
    /// link crosses graphs, a message has zero size, a graph is cyclic, or a
    /// process's BCET exceeds its WCET.
    pub fn build(mut self, arch: &Architecture) -> Result<Application, ModelError> {
        for (&pid, &bcet) in &self.bcets {
            if bcet > self.processes[pid.index()].wcet() {
                return Err(ModelError::BcetExceedsWcet(pid));
            }
            self.processes[pid.index()].set_bcet(bcet);
        }
        for (&pid, &d) in &self.local_deadlines {
            self.processes[pid.index()].set_local_deadline(Some(d));
        }
        for (&pid, &b) in &self.blockings {
            self.processes[pid.index()].set_blocking(b);
        }

        for graph in &self.graphs {
            if graph.period().is_zero() {
                return Err(ModelError::ZeroPeriod(graph.id()));
            }
            if graph.deadline().is_zero() || graph.deadline() > graph.period() {
                return Err(ModelError::InvalidDeadline(graph.id()));
            }
            if graph.is_empty() {
                return Err(ModelError::EmptyGraph(graph.id()));
            }
        }
        for process in &self.processes {
            if !arch.contains_node(process.node()) {
                return Err(ModelError::UnknownNode(process.id()));
            }
            if process.wcet().is_zero() {
                return Err(ModelError::ZeroWcet(process.id()));
            }
        }

        let mut messages = Vec::new();
        let mut edges = Vec::new();
        for &(src, dst, size) in &self.links {
            let (ps, pd) = (&self.processes[src.index()], &self.processes[dst.index()]);
            if ps.graph() != pd.graph() {
                return Err(ModelError::CrossGraphLink(src, dst));
            }
            let message = if ps.node() != pd.node() {
                if size == 0 {
                    return Err(ModelError::ZeroSizeMessage(src, dst));
                }
                let id = MessageId::new(messages.len() as u32);
                messages.push(Message::new(
                    id,
                    format!("m{}", id.raw()),
                    ps.graph(),
                    src,
                    dst,
                    size,
                ));
                Some(id)
            } else {
                None
            };
            edges.push(Edge {
                source: src,
                dest: dst,
                message,
            });
        }

        let n = self.processes.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for &edge in &edges {
            succs[edge.source.index()].push(edge);
            preds[edge.dest.index()].push(edge);
        }

        // Kahn's algorithm per graph; detects cycles.
        let mut topo = Vec::with_capacity(self.graphs.len());
        for graph in &self.graphs {
            let mut indeg: HashMap<ProcessId, usize> = graph
                .processes()
                .iter()
                .map(|&p| (p, preds[p.index()].len()))
                .collect();
            let mut ready: Vec<ProcessId> = graph
                .processes()
                .iter()
                .copied()
                .filter(|p| indeg[p] == 0)
                .collect();
            let mut order = Vec::with_capacity(graph.len());
            while let Some(p) = ready.pop() {
                order.push(p);
                for edge in &succs[p.index()] {
                    let d = indeg.get_mut(&edge.dest).expect("edge within graph");
                    *d -= 1;
                    if *d == 0 {
                        ready.push(edge.dest);
                    }
                }
            }
            if order.len() != graph.len() {
                return Err(ModelError::CyclicGraph(graph.id()));
            }
            topo.push(order);
        }

        let hyperperiod = self
            .graphs
            .iter()
            .map(ProcessGraph::period)
            .fold(Time::from_ticks(1), lcm);

        Ok(Application {
            graphs: self.graphs,
            processes: self.processes,
            messages,
            edges,
            succs,
            preds,
            topo,
            hyperperiod,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::architecture::NodeRole;

    fn arch() -> (Architecture, NodeId, NodeId) {
        let mut b = Architecture::builder();
        let n1 = b.add_node("N1", NodeRole::TimeTriggered);
        let n2 = b.add_node("N2", NodeRole::EventTriggered);
        b.add_node("NG", NodeRole::Gateway);
        (b.build().expect("valid"), n1, n2)
    }

    #[test]
    fn cross_node_links_create_messages() {
        let (arch, n1, n2) = arch();
        let mut b = Application::builder();
        let g = b.add_graph("G", Time::from_millis(100), Time::from_millis(100));
        let p1 = b.add_process(g, "P1", n1, Time::from_millis(5));
        let p2 = b.add_process(g, "P2", n2, Time::from_millis(5));
        let p3 = b.add_process(g, "P3", n1, Time::from_millis(5));
        b.link(p1, p2, 8);
        b.link(p1, p3, 16); // same node: no message
        let app = b.build(&arch).expect("valid");
        assert_eq!(app.messages().len(), 1);
        assert_eq!(app.messages()[0].size_bytes(), 8);
        assert_eq!(app.successors(p1).len(), 2);
        assert_eq!(app.predecessors(p2).len(), 1);
        assert!(app.successors(p1)[1].message.is_none());
    }

    #[test]
    fn topological_order_respects_edges() {
        let (arch, n1, _) = arch();
        let mut b = Application::builder();
        let g = b.add_graph("G", Time::from_millis(100), Time::from_millis(100));
        let a = b.add_process(g, "a", n1, Time::from_millis(1));
        let c = b.add_process(g, "c", n1, Time::from_millis(1));
        let d = b.add_process(g, "d", n1, Time::from_millis(1));
        b.link(a, c, 0);
        b.link(c, d, 0);
        let app = b.build(&arch).expect("valid");
        let order = app.topological_order(g);
        let pos = |p: ProcessId| order.iter().position(|&q| q == p).expect("present");
        assert!(pos(a) < pos(c));
        assert!(pos(c) < pos(d));
        assert_eq!(app.sources(g), vec![a]);
        assert_eq!(app.sinks(g), vec![d]);
    }

    #[test]
    fn cycles_are_rejected() {
        let (arch, n1, _) = arch();
        let mut b = Application::builder();
        let g = b.add_graph("G", Time::from_millis(100), Time::from_millis(100));
        let a = b.add_process(g, "a", n1, Time::from_millis(1));
        let c = b.add_process(g, "c", n1, Time::from_millis(1));
        b.link(a, c, 0);
        b.link(c, a, 0);
        assert_eq!(b.build(&arch).unwrap_err(), ModelError::CyclicGraph(g));
    }

    #[test]
    fn deadline_must_not_exceed_period() {
        let (arch, n1, _) = arch();
        let mut b = Application::builder();
        let g = b.add_graph("G", Time::from_millis(100), Time::from_millis(150));
        b.add_process(g, "a", n1, Time::from_millis(1));
        assert_eq!(b.build(&arch).unwrap_err(), ModelError::InvalidDeadline(g));
    }

    #[test]
    fn zero_wcet_and_unknown_node_are_rejected() {
        let (arch, n1, _) = arch();
        let mut b = Application::builder();
        let g = b.add_graph("G", Time::from_millis(100), Time::from_millis(100));
        let p = b.add_process(g, "a", n1, Time::ZERO);
        assert_eq!(b.clone().build(&arch).unwrap_err(), ModelError::ZeroWcet(p));

        let mut b2 = Application::builder();
        let g2 = b2.add_graph("G", Time::from_millis(100), Time::from_millis(100));
        let q = b2.add_process(g2, "a", NodeId::new(99), Time::from_millis(1));
        assert_eq!(b2.build(&arch).unwrap_err(), ModelError::UnknownNode(q));
    }

    #[test]
    fn hyperperiod_is_lcm_of_graph_periods() {
        let (arch, n1, _) = arch();
        let mut b = Application::builder();
        let g1 = b.add_graph("G1", Time::from_millis(60), Time::from_millis(60));
        let g2 = b.add_graph("G2", Time::from_millis(40), Time::from_millis(40));
        b.add_process(g1, "a", n1, Time::from_millis(1));
        b.add_process(g2, "b", n1, Time::from_millis(1));
        let app = b.build(&arch).expect("valid");
        assert_eq!(app.hyperperiod(), Time::from_millis(120));
    }

    #[test]
    fn utilization_sums_over_node() {
        let (arch, n1, n2) = arch();
        let mut b = Application::builder();
        let g = b.add_graph("G", Time::from_millis(100), Time::from_millis(100));
        b.add_process(g, "a", n1, Time::from_millis(25));
        b.add_process(g, "b", n1, Time::from_millis(25));
        b.add_process(g, "c", n2, Time::from_millis(10));
        let app = b.build(&arch).expect("valid");
        assert!((app.node_utilization(n1) - 0.5).abs() < 1e-9);
        assert!((app.node_utilization(n2) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn bcet_cannot_exceed_wcet() {
        let (arch, n1, _) = arch();
        let mut b = Application::builder();
        let g = b.add_graph("G", Time::from_millis(100), Time::from_millis(100));
        let p = b.add_process(g, "a", n1, Time::from_millis(5));
        b.set_bcet(p, Time::from_millis(6));
        assert_eq!(b.build(&arch).unwrap_err(), ModelError::BcetExceedsWcet(p));
    }

    #[test]
    fn cross_graph_links_are_rejected() {
        let (arch, n1, _) = arch();
        let mut b = Application::builder();
        let g1 = b.add_graph("G1", Time::from_millis(100), Time::from_millis(100));
        let g2 = b.add_graph("G2", Time::from_millis(100), Time::from_millis(100));
        let a = b.add_process(g1, "a", n1, Time::from_millis(1));
        let c = b.add_process(g2, "c", n1, Time::from_millis(1));
        b.link(a, c, 4);
        assert_eq!(
            b.build(&arch).unwrap_err(),
            ModelError::CrossGraphLink(a, c)
        );
    }
}
