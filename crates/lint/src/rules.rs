//! The five rules. Each is a pure function over a [`FileCtx`] that
//! appends [`Violation`]s; scoping decisions (which files a rule guards)
//! live in [`crate::engine::Config`], matching decisions live here.
//!
//! All rules are token-level: they see the comment-free, string-free
//! token stream from [`crate::lexer`], so nothing inside a comment or
//! literal can ever fire, and `unwrap_or` can never match `unwrap`.
//! They are deliberately syntactic — no type information — so each has a
//! documented over-approximation, discharged case-by-case with an
//! `// mcs-lint: allow(<rule>) -- <reason>` marker.

use crate::engine::{matching_close, FileCtx, Violation};
use crate::lexer::{Token, TokenKind};

/// `wall-clock`: reading the host clock (`Instant::now`, any
/// `SystemTime`, `.elapsed()`) is confined to the explicit allowlist —
/// everywhere else it is nondeterministic input and breaks seeded
/// bit-identity. Test regions are exempt (they assert on, not feed,
/// results).
pub fn wall_clock(ctx: &FileCtx, out: &mut Vec<Violation>) {
    let t = &ctx.tokens;
    for i in 0..t.len() {
        let (line, what) = if t[i].is_ident("Instant")
            && path_sep(t, i + 1)
            && t.get(i + 3).is_some_and(|x| x.is_ident("now"))
        {
            (t[i].line, "`Instant::now()` reads the host clock")
        } else if t[i].is_ident("SystemTime") {
            (t[i].line, "`SystemTime` is wall-clock state")
        } else if t[i].is_punct('.') && t.get(i + 1).is_some_and(|x| x.is_ident("elapsed")) {
            (t[i].line, "`.elapsed()` reads the host clock")
        } else {
            continue;
        };
        if ctx.in_test(line) || ctx.allowed(line, "wall-clock") {
            continue;
        }
        push(ctx, out, line, "wall-clock", format!(
            "{what}; wall-clock input is confined to the serve/bench allowlist — thread a deterministic quantity (evaluation counts, virtual time) instead"
        ));
    }
}

/// `rng-discipline`: every RNG must be constructed from an explicit
/// seed. Entropy-source constructors are banned outright, and inside a
/// rayon parallel region a seed expression made only of literals is
/// banned too — every lane would draw the identical stream, so the seed
/// must be derived from per-lane data.
pub fn rng_discipline(ctx: &FileCtx, out: &mut Vec<Violation>) {
    const ENTROPY: [&str; 5] = [
        "from_entropy",
        "thread_rng",
        "from_os_rng",
        "OsRng",
        "ThreadRng",
    ];
    let t = &ctx.tokens;
    for i in 0..t.len() {
        if ENTROPY.iter().any(|e| t[i].is_ident(e)) {
            let line = t[i].line;
            if !ctx.allowed(line, "rng-discipline") {
                push(ctx, out, line, "rng-discipline", format!(
                    "`{}` draws from an entropy source; every RNG must take an explicit seed so runs are replayable",
                    t[i].text
                ));
            }
        }
        if t[i].is_ident("random") && path_sep_before(t, i) {
            let line = t[i].line;
            if !ctx.allowed(line, "rng-discipline") {
                push(
                    ctx,
                    out,
                    line,
                    "rng-discipline",
                    "`::random()` hides an entropy-seeded RNG; seed explicitly".to_string(),
                );
            }
        }
    }
    // Constant seeds inside parallel regions: every lane would replay the
    // same stream.
    for (start, end) in par_spans(t) {
        let mut i = start;
        while i < end {
            if (t[i].is_ident("seed_from_u64") || t[i].is_ident("from_seed"))
                && t.get(i + 1).is_some_and(|x| x.is_punct('('))
            {
                let close = matching_close(t, i + 1).min(end);
                let has_ident = t[i + 2..close]
                    .iter()
                    .any(|x| matches!(x.kind, TokenKind::Ident | TokenKind::Lifetime));
                let line = t[i].line;
                if !has_ident && !ctx.allowed(line, "rng-discipline") {
                    push(ctx, out, line, "rng-discipline", format!(
                        "`{}` with a literal-only seed inside a parallel region gives every lane the same stream; derive the seed from per-lane data",
                        t[i].text
                    ));
                }
                i = close;
            }
            i += 1;
        }
    }
}

/// Map/set iteration methods whose yield order is the hasher's.
const HASH_ITER: [&str; 9] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

/// `hash-order`: in a module that feeds reports, `json_line` output,
/// event streams or digests, iterating a `HashMap`/`HashSet` leaks
/// hasher order into the output. The rule tracks identifiers declared
/// with a `HashMap`/`HashSet` type (or bound from a constructor) within
/// the file and flags iteration over them unless a sort follows within
/// three lines (the collect-then-sort idiom) or a marker justifies an
/// order-independent consumer (`.values().max()` and friends).
///
/// Over-approximation: identifier tracking is per-file and name-based —
/// an unrelated local sharing a hash-typed name is also flagged.
pub fn hash_order(ctx: &FileCtx, out: &mut Vec<Violation>) {
    // Scope: only modules that produce externally visible, order-
    // sensitive artifacts.
    let feeds_output = ["json_line", "JsonLinesWriter", "digest", "SearchEvent"]
        .iter()
        .any(|m| ctx.mentions(m))
        || ctx.path.ends_with("/report.rs");
    if !feeds_output {
        return;
    }
    let t = &ctx.tokens;
    let hashed = hash_typed_idents(t);
    if hashed.is_empty() {
        return;
    }
    let flag = |ctx: &FileCtx, out: &mut Vec<Violation>, line: u32, name: &str, how: &str| {
        if ctx.in_test(line) || ctx.allowed(line, "hash-order") || sort_nearby(t, line) {
            return;
        }
        push(ctx, out, line, "hash-order", format!(
            "{how} `{name}` (hash-typed in this file) leaks hasher order into report/digest output; sort first (see `sorted()` in mcs-sim's report module), switch to BTreeMap, or justify an order-independent fold with a marker"
        ));
    };
    for i in 0..t.len() {
        // receiver.method(… where receiver is hash-typed.
        if t[i].is_punct('.')
            && i > 0
            && t[i - 1].kind == TokenKind::Ident
            && hashed.contains(&t[i - 1].text)
            && t.get(i + 1)
                .is_some_and(|x| HASH_ITER.iter().any(|m| x.is_ident(m)))
        {
            flag(ctx, out, t[i].line, &t[i - 1].text, "iterating");
        }
        // for pat in [&mut] chain.ending.in.a.hash-typed.ident {
        if t[i].is_ident("in") {
            let mut j = i + 1;
            let mut last_ident: Option<usize> = None;
            while j < t.len() {
                match t[j].kind {
                    TokenKind::Ident if !t[j].is_ident("mut") => {
                        last_ident = Some(j);
                        j += 1;
                    }
                    TokenKind::Ident => j += 1,
                    TokenKind::Punct if matches!(t[j].text.as_str(), "&" | ".") => j += 1,
                    _ => break,
                }
            }
            if let Some(k) = last_ident {
                if t.get(j).is_some_and(|x| x.is_punct('{')) && hashed.contains(&t[k].text) {
                    flag(ctx, out, t[k].line, &t[k].text, "for-looping over");
                }
            }
        }
    }
}

/// Identifiers declared (field/param/let-annotation) or `let`-bound with
/// a `HashMap`/`HashSet` type in this file.
fn hash_typed_idents(t: &[Token]) -> Vec<String> {
    let mut names = Vec::new();
    for i in 0..t.len() {
        if !(t[i].is_ident("HashMap") || t[i].is_ident("HashSet")) {
            continue;
        }
        // Walk back over path prefix / reference sigils to the declaring
        // `:` or binding `=`.
        let mut j = i;
        while j > 0 {
            let p = &t[j - 1];
            let skip = p.is_punct(':') && j >= 2 && t[j - 2].is_punct(':') // `::`
                || p.is_ident("std")
                || p.is_ident("collections")
                || p.is_punct('&')
                || p.is_ident("mut")
                || p.kind == TokenKind::Lifetime;
            if p.is_punct(':') && j >= 2 && t[j - 2].is_punct(':') {
                j -= 2;
                continue;
            }
            if skip {
                j -= 1;
                continue;
            }
            break;
        }
        if j == 0 {
            continue;
        }
        let anchor = &t[j - 1];
        let named = if anchor.is_punct(':') || anchor.is_punct('=') {
            (j >= 2 && t[j - 2].kind == TokenKind::Ident).then(|| t[j - 2].text.clone())
        } else {
            None
        };
        if let Some(name) = named {
            if !names.contains(&name) {
                names.push(name);
            }
        }
    }
    names
}

/// True when a `sort*` call or a BTree re-collection appears within the
/// three lines following `line` — the collect-then-sort idiom.
fn sort_nearby(t: &[Token], line: u32) -> bool {
    t.iter().any(|x| {
        x.line >= line
            && x.line <= line + 3
            && x.kind == TokenKind::Ident
            && (x.text.starts_with("sort") || x.text == "BTreeMap" || x.text == "BTreeSet")
    })
}

/// `panic-policy`: non-test library code of the guarded crates must not
/// contain `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/
/// `unimplemented!` — degenerate inputs return structured errors
/// (`AnalysisError`/`SimError`), and genuinely infallible invariants
/// carry a marker stating why.
pub fn panic_policy(ctx: &FileCtx, out: &mut Vec<Violation>) {
    const MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];
    let t = &ctx.tokens;
    for i in 0..t.len() {
        let (line, what) = if t[i].is_punct('.')
            && t.get(i + 1)
                .is_some_and(|x| x.is_ident("unwrap") || x.is_ident("expect"))
            && t.get(i + 2).is_some_and(|x| x.is_punct('('))
        {
            (t[i + 1].line, format!("`.{}()`", t[i + 1].text))
        } else if MACROS.iter().any(|m| t[i].is_ident(m))
            && t.get(i + 1).is_some_and(|x| x.is_punct('!'))
        {
            (t[i].line, format!("`{}!`", t[i].text))
        } else {
            continue;
        };
        if ctx.in_test(line) || ctx.allowed(line, "panic-policy") {
            continue;
        }
        push(ctx, out, line, "panic-policy", format!(
            "{what} in guarded library code; return a structured error (AnalysisError/SimError) or justify the invariant with a marker"
        ));
    }
}

/// `float-reduction`: `.sum()`/`.product()` inside a rayon parallel
/// region reduces in nondeterministic order — for floats that breaks
/// bit-identity. Integer reductions are justified with a marker.
pub fn float_reduction(ctx: &FileCtx, out: &mut Vec<Violation>) {
    let t = &ctx.tokens;
    for (start, end) in par_spans(t) {
        for i in start..end {
            if t[i].is_punct('.')
                && t.get(i + 1)
                    .is_some_and(|x| x.is_ident("sum") || x.is_ident("product"))
            {
                let line = t[i + 1].line;
                if !ctx.allowed(line, "float-reduction") {
                    push(ctx, out, line, "float-reduction", format!(
                        "`.{}()` inside a parallel region reduces in nondeterministic order; reduce sequentially over collected lanes, or mark the reduction as integer/order-independent",
                        t[i + 1].text
                    ));
                }
            }
        }
    }
}

/// Token spans `[start, end)` of statements containing a rayon parallel
/// combinator: from the `par_*` token to the end of the enclosing
/// statement (`;` at the combinator's depth, or the close of the
/// enclosing group), so trailing closure arguments are covered.
fn par_spans(t: &[Token]) -> Vec<(usize, usize)> {
    let mut spans: Vec<(usize, usize)> = Vec::new();
    for i in 0..t.len() {
        if t[i].kind != TokenKind::Ident {
            continue;
        }
        let is_par = t[i].text.starts_with("par_")
            || t[i].text == "into_par_iter"
            || t[i].text == "par_bridge";
        if !is_par {
            continue;
        }
        if spans.last().is_some_and(|&(_, e)| i < e) {
            continue; // already inside a recorded span
        }
        let mut depth = 0i32;
        let mut j = i;
        while j < t.len() {
            let x = &t[j];
            if x.kind == TokenKind::Punct {
                match x.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => {
                        depth -= 1;
                        if depth < 0 {
                            break;
                        }
                    }
                    ";" if depth == 0 => break,
                    _ => {}
                }
            }
            j += 1;
        }
        spans.push((i, j));
    }
    spans
}

/// True when tokens `i-2..i` are `::`.
fn path_sep_before(t: &[Token], i: usize) -> bool {
    i >= 2 && t[i - 1].is_punct(':') && t[i - 2].is_punct(':')
}

/// True when tokens `i..i+2` are `::`.
fn path_sep(t: &[Token], i: usize) -> bool {
    t.get(i).is_some_and(|x| x.is_punct(':')) && t.get(i + 1).is_some_and(|x| x.is_punct(':'))
}

fn push(ctx: &FileCtx, out: &mut Vec<Violation>, line: u32, rule: &'static str, message: String) {
    out.push(Violation {
        file: ctx.path.clone(),
        line,
        rule,
        message,
    });
}
