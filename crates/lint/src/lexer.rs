//! A minimal, lossless-enough Rust lexer for rule matching.
//!
//! The rules in this crate are token-level: they must never fire on text
//! inside comments, string literals (including raw/byte/C strings with any
//! number of `#` guards), or char literals, and they must see identifiers
//! as whole words (`unwrap_or` is not `unwrap`). That is exactly the
//! contract this lexer provides — it is *not* a full Rust lexer (no
//! keyword table, multi-char operators arrive as single [`Punct`] tokens)
//! but it is precise about the four things that matter here:
//!
//! 1. comments (line, nested block) are recognized and diverted into a
//!    side channel so allow-markers can be parsed from them;
//! 2. every string-literal form is skipped atomically;
//! 3. lifetimes (`'a`) are distinguished from char literals (`'a'`);
//! 4. identifiers and numbers are single tokens with line numbers.
//!
//! [`Punct`]: TokenKind::Punct

/// What a [`Token`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`unwrap`, `for`, `HashMap`, …).
    Ident,
    /// A lifetime (`'a`) — distinguished from char literals.
    Lifetime,
    /// A numeric literal (integer or float, any base).
    Number,
    /// Any string-ish literal: `"…"`, `r#"…"#`, `b"…"`, `c"…"`, `'x'`.
    Str,
    /// One punctuation character (`::` arrives as two `:` tokens).
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Token {
    /// Classification of `text`.
    pub kind: TokenKind,
    /// The token's source text (for [`TokenKind::Str`], the opening
    /// delimiter only — rules never inspect literal contents).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// True for an identifier token with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// True for a punctuation token with exactly this character.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == 1 && self.text.starts_with(ch)
    }
}

/// A comment diverted out of the token stream, for marker parsing.
#[derive(Clone, Debug)]
pub struct Comment {
    /// Comment body (delimiters stripped for line comments; block
    /// comments keep interior text).
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
}

/// The output of [`lex`]: code tokens plus the comment side channel.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment, non-whitespace tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes Rust source. Never fails: unrecognized bytes become punctuation,
/// unterminated literals run to end-of-file — for a lint that is the
/// right degradation (rustc itself will reject such a file).
pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;

    // Advances `i` over `n` bytes, counting newlines into `line`.
    macro_rules! advance {
        ($n:expr) => {{
            let n: usize = $n;
            for k in 0..n {
                if bytes[i + k] == b'\n' {
                    line += 1;
                }
            }
            i += n;
        }};
    }

    while i < bytes.len() {
        let c = bytes[i] as char;
        let start_line = line;

        // Whitespace.
        if c.is_ascii_whitespace() {
            advance!(1);
            continue;
        }

        // Line comment (also covers doc `///` and `//!`).
        if c == '/' && bytes.get(i + 1) == Some(&b'/') {
            let end = src[i..].find('\n').map_or(bytes.len(), |n| i + n);
            out.comments.push(Comment {
                text: src[i + 2..end].to_string(),
                line: start_line,
            });
            advance!(end - i);
            continue;
        }

        // Block comment, nested.
        if c == '/' && bytes.get(i + 1) == Some(&b'*') {
            let mut depth = 1usize;
            let mut j = i + 2;
            while j < bytes.len() && depth > 0 {
                if bytes[j] == b'/' && bytes.get(j + 1) == Some(&b'*') {
                    depth += 1;
                    j += 2;
                } else if bytes[j] == b'*' && bytes.get(j + 1) == Some(&b'/') {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            out.comments.push(Comment {
                text: src[i + 2..j.saturating_sub(2).max(i + 2)].to_string(),
                line: start_line,
            });
            advance!(j - i);
            continue;
        }

        // Raw / byte / C string prefixes: r", r#", br", rb is invalid,
        // b", br#", c", cr#". Longest match on [bcr]+ then quote/hash.
        if matches!(c, 'r' | 'b' | 'c') {
            if let Some(len) = raw_or_prefixed_string_len(&src[i..]) {
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    text: src[i..i + len.min(2)].to_string(),
                    line: start_line,
                });
                advance!(len);
                continue;
            }
        }

        // Plain string literal.
        if c == '"' {
            let len = quoted_len(&src[i..], '"');
            out.tokens.push(Token {
                kind: TokenKind::Str,
                text: "\"".to_string(),
                line: start_line,
            });
            advance!(len);
            continue;
        }

        // Lifetime or char literal.
        if c == '\'' {
            let rest = &src[i + 1..];
            let mut chars = rest.chars();
            let first = chars.next().unwrap_or('\0');
            let second = chars.next().unwrap_or('\0');
            let is_lifetime =
                (first.is_alphabetic() || first == '_') && second != '\'' && first != '\\';
            if is_lifetime {
                let len = 1 + rest
                    .find(|ch: char| !ch.is_alphanumeric() && ch != '_')
                    .unwrap_or(rest.len());
                out.tokens.push(Token {
                    kind: TokenKind::Lifetime,
                    text: src[i..i + len].to_string(),
                    line: start_line,
                });
                advance!(len);
            } else {
                let len = quoted_len(&src[i..], '\'');
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    text: "'".to_string(),
                    line: start_line,
                });
                advance!(len);
            }
            continue;
        }

        // Identifier / keyword.
        if c.is_alphabetic() || c == '_' {
            let len = src[i..]
                .find(|ch: char| !ch.is_alphanumeric() && ch != '_')
                .unwrap_or(src.len() - i);
            out.tokens.push(Token {
                kind: TokenKind::Ident,
                text: src[i..i + len].to_string(),
                line: start_line,
            });
            advance!(len);
            continue;
        }

        // Number (we never inspect the value; greedy alnum/_/. suffices,
        // with `.` consumed only when followed by a digit so method calls
        // on literals — `1.max(2)` — stay separate tokens).
        if c.is_ascii_digit() {
            let mut j = i + 1;
            while j < bytes.len() {
                let b = bytes[j] as char;
                let float_dot = b == '.'
                    && bytes
                        .get(j + 1)
                        .is_some_and(|n| (*n as char).is_ascii_digit());
                if b.is_alphanumeric() || b == '_' || float_dot {
                    j += 1;
                } else {
                    break;
                }
            }
            out.tokens.push(Token {
                kind: TokenKind::Number,
                text: src[i..j].to_string(),
                line: start_line,
            });
            advance!(j - i);
            continue;
        }

        // Anything else: one punctuation character.
        let len = c.len_utf8();
        out.tokens.push(Token {
            kind: TokenKind::Punct,
            text: src[i..i + len].to_string(),
            line: start_line,
        });
        advance!(len);
    }

    out
}

/// Byte length of a `"…"`/`'…'` literal starting at `src[0]`, handling
/// backslash escapes. Unterminated literals run to end-of-input.
fn quoted_len(src: &str, quote: char) -> usize {
    let bytes = src.as_bytes();
    let mut j = 1usize;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b if b == quote as u8 => return j + 1,
            _ => j += 1,
        }
    }
    bytes.len()
}

/// If `src` starts with a raw / byte / C string literal (any `r`/`b`/`c`
/// prefix combination), returns its byte length; `None` when the prefix
/// letters are just an identifier (e.g. `raw_value`).
fn raw_or_prefixed_string_len(src: &str) -> Option<usize> {
    let bytes = src.as_bytes();
    let mut j = 0usize;
    let mut raw = false;
    while j < bytes.len() && j < 2 {
        match bytes[j] {
            b'r' => {
                raw = true;
                j += 1;
            }
            b'b' | b'c' => j += 1,
            _ => break,
        }
    }
    if j == 0 || j >= bytes.len() {
        return None;
    }
    if raw {
        // r, br, cr: optional `#` guards then `"`.
        let mut hashes = 0usize;
        while bytes.get(j + hashes) == Some(&b'#') {
            hashes += 1;
        }
        if bytes.get(j + hashes) != Some(&b'"') {
            return None;
        }
        let body_start = j + hashes + 1;
        let terminator: String = std::iter::once('"')
            .chain(std::iter::repeat_n('#', hashes))
            .collect();
        let end = src[body_start..]
            .find(&terminator)
            .map_or(src.len(), |n| body_start + n + terminator.len());
        Some(end)
    } else {
        // b" or c": escaped like a plain string.
        if bytes.get(j) != Some(&b'"') {
            return None;
        }
        Some(j + quoted_len(&src[j..], '"'))
    }
}
