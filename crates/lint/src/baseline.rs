//! The checked-in exemption baseline (`lint.toml`).
//!
//! A baseline entry grandfathers exactly one `(file, line, rule)`
//! violation. The file is hand-parsed (the build environment has no
//! registry access, so no `toml` crate) against the narrow grammar this
//! crate itself writes:
//!
//! ```toml
//! [[allow]]
//! file = "crates/foo/src/bar.rs"
//! line = 42
//! rule = "hash-order"
//! reason = "why this exemption was reviewed in"
//! ```
//!
//! Entries are auditable (the mandatory `reason`) and *checked for
//! staleness*: an entry whose site no longer violates fails
//! `mcs-lint --stale-check`, so the baseline can only shrink unless a
//! human deliberately re-adds to it.

use crate::engine::Violation;

/// One reviewed exemption.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Entry {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line of the grandfathered violation.
    pub line: u32,
    /// Rule name.
    pub rule: String,
    /// Why the exemption was accepted.
    pub reason: String,
}

/// A parsed baseline.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Baseline {
    /// All entries, in file order.
    pub entries: Vec<Entry>,
}

impl Baseline {
    /// Parses the `lint.toml` grammar. Unknown keys, entries missing a
    /// field, and anything outside an `[[allow]]` table are errors — a
    /// baseline that cannot be fully understood must not suppress
    /// anything.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries = Vec::new();
        let mut current: Option<Entry> = None;
        for (n, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[allow]]" {
                if let Some(e) = current.take() {
                    entries.push(Self::complete(e)?);
                }
                current = Some(Entry {
                    file: String::new(),
                    line: 0,
                    rule: String::new(),
                    reason: String::new(),
                });
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("lint.toml:{}: expected `key = value`", n + 1));
            };
            let Some(entry) = current.as_mut() else {
                return Err(format!("lint.toml:{}: key outside [[allow]] table", n + 1));
            };
            let key = key.trim();
            let value = value.trim();
            match key {
                "file" => entry.file = unquote(value, n)?,
                "rule" => entry.rule = unquote(value, n)?,
                "reason" => entry.reason = unquote(value, n)?,
                "line" => {
                    entry.line = value
                        .parse()
                        .map_err(|_| format!("lint.toml:{}: bad line number", n + 1))?;
                }
                other => return Err(format!("lint.toml:{}: unknown key `{other}`", n + 1)),
            }
        }
        if let Some(e) = current.take() {
            entries.push(Self::complete(e)?);
        }
        Ok(Baseline { entries })
    }

    fn complete(e: Entry) -> Result<Entry, String> {
        if e.file.is_empty() || e.rule.is_empty() || e.line == 0 {
            return Err(format!(
                "incomplete [[allow]] entry (file={:?} line={} rule={:?})",
                e.file, e.line, e.rule
            ));
        }
        if e.reason.is_empty() {
            return Err(format!(
                "baseline entry {}:{} [{}] has no reason",
                e.file, e.line, e.rule
            ));
        }
        Ok(e)
    }

    /// Renders back to the grammar [`Baseline::parse`] accepts
    /// (round-trip stable).
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# mcs-lint baseline — reviewed exemptions from the workspace invariants.\n\
             # Regenerate with `cargo run -p mcs-lint -- --write-baseline` (then fill\n\
             # in reasons); `mcs-lint --stale-check` fails on entries that no longer\n\
             # match a violation.\n",
        );
        for e in &self.entries {
            out.push_str(&format!(
                "\n[[allow]]\nfile = \"{}\"\nline = {}\nrule = \"{}\"\nreason = \"{}\"\n",
                e.file, e.line, e.rule, e.reason
            ));
        }
        out
    }

    /// True when `v` is grandfathered by an entry.
    pub fn covers(&self, v: &Violation) -> bool {
        self.entries
            .iter()
            .any(|e| e.file == v.file && e.line == v.line && e.rule == v.rule)
    }

    /// Entries that match none of `violations` — stale, and grounds for
    /// failing the build.
    pub fn stale<'b>(&'b self, violations: &[Violation]) -> Vec<&'b Entry> {
        self.entries
            .iter()
            .filter(|e| {
                !violations
                    .iter()
                    .any(|v| v.file == e.file && v.line == e.line && v.rule == e.rule)
            })
            .collect()
    }
}

fn unquote(value: &str, n: usize) -> Result<String, String> {
    value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| format!("lint.toml:{}: expected a double-quoted string", n + 1))
}
