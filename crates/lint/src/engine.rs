//! File model and workspace driver: lexes each source file, parses
//! `mcs-lint: allow(rule) -- reason` markers out of its comments, maps
//! `#[cfg(test)]` / `#[test]` regions, and runs every rule.
//!
//! # Marker grammar
//!
//! ```text
//! // mcs-lint: allow(<rule>) -- <reason>
//! ```
//!
//! A marker suppresses diagnostics of `<rule>` on its own line and on the
//! line directly below (so it works both trailing and standalone). The
//! `-- <reason>` part is mandatory: a reasonless or unparsable marker is
//! itself reported under the pseudo-rule `marker`, so exemptions cannot
//! silently rot into cargo-cult comments.

use crate::lexer::{lex, Token, TokenKind};
use crate::rules;
use std::path::{Path, PathBuf};

/// Names of the five substantive rules (the `marker` pseudo-rule is not
/// listed — it cannot be allowed away).
pub const RULES: [&str; 5] = [
    "wall-clock",
    "rng-discipline",
    "hash-order",
    "panic-policy",
    "float-reduction",
];

/// One diagnostic: a rule fired at a file/line.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Violation {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Rule name (one of [`RULES`] or `marker`).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A parsed allow-marker.
#[derive(Clone, Debug)]
pub struct Marker {
    /// 1-based line the marker comment starts on.
    pub line: u32,
    /// The rule it exempts.
    pub rule: String,
}

/// A lexed source file plus everything the rules need to know about it.
#[derive(Debug)]
pub struct FileCtx {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// Code tokens (comments diverted).
    pub tokens: Vec<Token>,
    /// Well-formed allow-markers.
    pub markers: Vec<Marker>,
    /// Malformed markers, reported as `marker` violations.
    pub bad_markers: Vec<(u32, String)>,
    /// Inclusive line ranges covered by `#[cfg(test)]` / `#[test]` items.
    pub test_ranges: Vec<(u32, u32)>,
}

impl FileCtx {
    /// Lexes `src` (as workspace-relative `path`) into a rule-ready
    /// context.
    pub fn new(path: &str, src: &str) -> Self {
        let lexed = lex(src);
        let mut markers = Vec::new();
        let mut bad_markers = Vec::new();
        for comment in &lexed.comments {
            match parse_marker(&comment.text) {
                MarkerParse::None => {}
                MarkerParse::Ok(rule) => markers.push(Marker {
                    line: comment.line,
                    rule,
                }),
                MarkerParse::Malformed(why) => bad_markers.push((comment.line, why)),
            }
        }
        let test_ranges = test_ranges(&lexed.tokens);
        FileCtx {
            path: path.to_string(),
            tokens: lexed.tokens,
            markers,
            bad_markers,
            test_ranges,
        }
    }

    /// True when `line` is inside a `#[cfg(test)]` / `#[test]` item.
    pub fn in_test(&self, line: u32) -> bool {
        self.test_ranges
            .iter()
            .any(|&(a, b)| a <= line && line <= b)
    }

    /// True when a marker for `rule` covers `line` (same line or the
    /// line above).
    pub fn allowed(&self, line: u32, rule: &str) -> bool {
        self.markers
            .iter()
            .any(|m| m.rule == rule && (m.line == line || m.line + 1 == line))
    }

    /// True when the file contains `ident` anywhere as a code token.
    pub fn mentions(&self, ident: &str) -> bool {
        self.tokens.iter().any(|t| t.is_ident(ident))
    }
}

enum MarkerParse {
    None,
    Ok(String),
    Malformed(String),
}

/// Parses one comment body for the marker grammar.
fn parse_marker(comment: &str) -> MarkerParse {
    let Some(pos) = comment.find("mcs-lint:") else {
        return MarkerParse::None;
    };
    let rest = comment[pos + "mcs-lint:".len()..].trim_start();
    let Some(args) = rest.strip_prefix("allow(") else {
        return MarkerParse::Malformed(format!(
            "marker must be `mcs-lint: allow(<rule>) -- <reason>`, got `{}`",
            comment.trim()
        ));
    };
    let Some(close) = args.find(')') else {
        return MarkerParse::Malformed("unclosed `allow(` in marker".to_string());
    };
    let rule = args[..close].trim().to_string();
    if !RULES.contains(&rule.as_str()) {
        return MarkerParse::Malformed(format!("unknown rule `{rule}` in marker"));
    }
    let tail = args[close + 1..].trim_start();
    let reason = tail.strip_prefix("--").map(str::trim).unwrap_or("");
    if reason.is_empty() {
        return MarkerParse::Malformed(format!("marker for `{rule}` is missing its `-- <reason>`"));
    }
    MarkerParse::Ok(rule)
}

/// Computes line ranges covered by test-gated items: any attribute whose
/// argument tokens mention `test` (`#[test]`, `#[cfg(test)]`,
/// `#[cfg(all(test, …))]`) extends over the item that follows — up to the
/// matching close of its first `{`, or to a `;` for block-less items.
fn test_ranges(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            // Find the matching `]` of the attribute.
            let mut depth = 0usize;
            let mut j = i + 1;
            let mut saw_test = false;
            while j < tokens.len() {
                if tokens[j].is_punct('[') {
                    depth += 1;
                } else if tokens[j].is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if tokens[j].is_ident("test") {
                    saw_test = true;
                }
                j += 1;
            }
            if saw_test && j < tokens.len() {
                let start = tokens[i].line;
                // Scan past further attributes / the item signature to its
                // body `{` (brace-matched) or terminating `;`.
                let mut k = j + 1;
                let mut brace = 0usize;
                let mut end = tokens[j].line;
                while k < tokens.len() {
                    let t = &tokens[k];
                    if brace == 0 && t.is_punct(';') {
                        end = t.line;
                        break;
                    }
                    if t.is_punct('{') {
                        brace += 1;
                    } else if t.is_punct('}') {
                        brace -= 1;
                        if brace == 0 {
                            end = t.line;
                            break;
                        }
                    }
                    end = t.line;
                    k += 1;
                }
                ranges.push((start, end));
                i = k + 1;
                continue;
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    ranges
}

/// Per-rule path scoping. Paths are workspace-relative, `/`-separated;
/// "prefix" means string-prefix on that form.
#[derive(Debug)]
pub struct Config {
    /// Files/dirs (prefixes) where wall-clock reads are permitted.
    pub wall_clock_allow: Vec<String>,
    /// Dir prefixes whose non-test library code forbids panicking.
    pub panic_guard: Vec<String>,
}

impl Config {
    /// The workspace policy (see README "Static analysis").
    pub fn workspace_default() -> Self {
        Config {
            wall_clock_allow: vec![
                // The serving layer: deadlines, backoff, elapsed accounting.
                "crates/opt/src/serve.rs".into(),
                // The Budget wall-clock axis.
                "crates/opt/src/synthesis.rs".into(),
                // Bench timing (tables record wall-clock by design).
                "crates/bench/".into(),
                // The criterion shim IS a timer.
                "shims/criterion/".into(),
                // Demos may report elapsed time.
                "examples/".into(),
            ],
            panic_guard: vec!["crates/core/src/".into(), "crates/sim/src/".into()],
        }
    }

    fn wall_clock_allowed(&self, path: &str) -> bool {
        self.wall_clock_allow.iter().any(|p| path.starts_with(p))
            || path.contains("/tests/")
            || path.contains("/benches/")
            || path.starts_with("tests/")
            || path.starts_with("benches/")
    }

    fn panic_guarded(&self, path: &str) -> bool {
        self.panic_guard.iter().any(|p| path.starts_with(p)) && !path.contains("/bin/")
    }
}

/// Runs every rule over one file. `path` must be workspace-relative.
pub fn check_file(config: &Config, path: &str, src: &str) -> Vec<Violation> {
    let ctx = FileCtx::new(path, src);
    let mut out = Vec::new();
    for &(line, ref why) in &ctx.bad_markers {
        out.push(Violation {
            file: ctx.path.clone(),
            line,
            rule: "marker",
            message: why.clone(),
        });
    }
    if !config.wall_clock_allowed(path) {
        rules::wall_clock(&ctx, &mut out);
    }
    rules::rng_discipline(&ctx, &mut out);
    rules::hash_order(&ctx, &mut out);
    if config.panic_guarded(path) {
        rules::panic_policy(&ctx, &mut out);
    }
    rules::float_reduction(&ctx, &mut out);
    out.sort();
    out
}

/// Walks the workspace from `root` and checks every tracked `.rs` file.
/// Scanned roots: `src/`, `crates/`, `shims/`, `tests/`, `examples/`,
/// `benches/`. The lint's own crate is skipped — its sources and test
/// fixtures spell out forbidden constructs by name.
pub fn check_workspace(config: &Config, root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut files = Vec::new();
    for top in ["src", "crates", "shims", "tests", "examples", "benches"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs(&dir, &mut files)?;
        }
    }
    files.sort();
    let mut out = Vec::new();
    for file in files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        if rel.starts_with("crates/lint/") {
            continue;
        }
        let src = std::fs::read_to_string(&file)?;
        out.extend(check_file(config, &rel, &src));
    }
    out.sort();
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Helper shared by rules: index of the matching close for the open
/// delimiter at `open` (any of `(`/`[`/`{` matched against all three
/// closers), or `tokens.len()` when unterminated.
pub(crate) fn matching_close(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return k;
                    }
                }
                _ => {}
            }
        }
    }
    tokens.len()
}
