//! The `mcs-lint` binary. See the library docs (`mcs_lint`) for the
//! rules and the suppression model.
//!
//! ```text
//! mcs-lint [--root PATH] [--baseline PATH] [--deny] [--stale-check] [--write-baseline]
//! ```
//!
//! * default: report unsuppressed violations and stale baseline entries,
//!   exit 0 (informational).
//! * `--deny`: exit 1 when any unsuppressed violation exists (the CI
//!   gate).
//! * `--stale-check`: exit 1 when the baseline holds entries whose site
//!   no longer violates (the CI freshness gate).
//! * `--write-baseline`: grandfather every current unsuppressed
//!   violation into the baseline file (reasons left as TODO for review).

use mcs_lint::{Baseline, Config};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut baseline_path: Option<PathBuf> = None;
    let mut deny = false;
    let mut stale_check = false;
    let mut write_baseline = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => return usage("--root needs a path"),
            },
            "--baseline" => match args.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => return usage("--baseline needs a path"),
            },
            "--deny" => deny = true,
            "--stale-check" => stale_check = true,
            "--write-baseline" => write_baseline = true,
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("lint.toml"));

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!(
                    "mcs-lint: invalid baseline {}: {e}",
                    baseline_path.display()
                );
                return ExitCode::FAILURE;
            }
        },
        Err(_) => Baseline::default(),
    };

    let config = Config::workspace_default();
    let violations = match mcs_lint::check_workspace(&config, &root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("mcs-lint: cannot walk {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };

    let fresh: Vec<_> = violations.iter().filter(|v| !baseline.covers(v)).collect();
    let stale = baseline.stale(&violations);

    if write_baseline {
        let mut b = baseline.clone();
        for v in &fresh {
            b.entries.push(mcs_lint::baseline::Entry {
                file: v.file.clone(),
                line: v.line,
                rule: v.rule.to_string(),
                reason: "TODO: justify or fix".to_string(),
            });
        }
        if let Err(e) = std::fs::write(&baseline_path, b.render()) {
            eprintln!("mcs-lint: cannot write {}: {e}", baseline_path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "mcs-lint: wrote {} entries to {}",
            b.entries.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    for v in &fresh {
        println!("{v}");
    }
    for e in &stale {
        println!(
            "{}:{}: [stale-baseline] entry for `{}` no longer matches a violation — remove it",
            e.file, e.line, e.rule
        );
    }
    let grandfathered = violations.len() - fresh.len();
    println!(
        "mcs-lint: {} violation(s), {} grandfathered by baseline, {} stale baseline entr(ies)",
        fresh.len(),
        grandfathered,
        stale.len()
    );

    if deny && !fresh.is_empty() {
        return ExitCode::FAILURE;
    }
    if stale_check && !stale.is_empty() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("mcs-lint: {err}");
    }
    eprintln!(
        "usage: mcs-lint [--root PATH] [--baseline PATH] [--deny] [--stale-check] [--write-baseline]"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
