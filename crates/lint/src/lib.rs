//! `mcs-lint` — the workspace's custom static-analysis pass.
//!
//! Every layer of this repository hangs off one contract: **seeded runs
//! are bit-identical and replayable**. The release-mode equivalence
//! suites enforce that *dynamically*, but a nondeterminism bug only
//! trips them when a seed happens to exercise it. This crate is the
//! *static* guard rail: a registry-free, token-level analyzer (no
//! `syn`, no rustc internals — the build environment has no registry
//! access, and token-level is all these rules need) that walks the
//! workspace and rejects determinism- and soundness-breaking constructs
//! at CI time, the same way `clippy -D warnings` already gates style.
//!
//! # The rules
//!
//! | rule | invariant |
//! |------|-----------|
//! | `wall-clock` | `Instant::now`/`SystemTime`/`.elapsed()` only in the serve/bench allowlist — analysis, simulation and search never read the host clock |
//! | `rng-discipline` | every RNG takes an explicit seed; no entropy constructors; no literal-only seeds inside rayon closures (each lane must derive its own) |
//! | `hash-order` | modules feeding reports/`json_line`/digests never iterate `HashMap`/`HashSet` unsorted |
//! | `panic-policy` | non-test library code in `crates/core` + `crates/sim` returns structured errors instead of `unwrap`/`expect`/`panic!`/`unreachable!` |
//! | `float-reduction` | no `.sum()`/`.product()` inside parallel regions — reduction order breaks float bit-identity |
//!
//! # Suppression is explicit and auditable
//!
//! Two mechanisms, both reviewed in:
//!
//! * an inline marker on (or directly above) the offending line:
//!   `// mcs-lint: allow(<rule>) -- <reason>` — the reason is mandatory,
//!   a reasonless marker is itself a violation;
//! * a checked-in [`baseline`] (`lint.toml`) for bulk grandfathering,
//!   kept honest by `--stale-check` (an entry whose site no longer
//!   violates fails the build).
//!
//! # CI
//!
//! `cargo run -p mcs-lint -- --deny` gates every push ahead of the
//! equivalence suites; `--stale-check` keeps `lint.toml` shrinking. The
//! `selfcheck` integration test asserts the workspace is clean at
//! `--deny`, so plain `cargo test` catches violations before CI does.

pub mod baseline;
pub mod engine;
pub mod lexer;
pub mod rules;

pub use baseline::Baseline;
pub use engine::{check_file, check_workspace, Config, FileCtx, Violation, RULES};
