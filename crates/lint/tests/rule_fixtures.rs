//! Fixture tests: one inline source snippet per rule behavior. Each
//! fixture runs through the real [`mcs_lint::check_file`] entry point
//! with the workspace config, under the path that scopes the rule on,
//! so these tests pin the end-to-end matching — lexing, test-region
//! mapping, marker parsing and the rule itself.

use mcs_lint::{check_file, Config};

fn lint(path: &str, src: &str) -> Vec<(u32, String)> {
    check_file(&Config::workspace_default(), path, src)
        .into_iter()
        .map(|v| (v.line, v.rule.to_string()))
        .collect()
}

fn rules_fired(path: &str, src: &str) -> Vec<String> {
    let mut rules: Vec<String> = lint(path, src).into_iter().map(|(_, r)| r).collect();
    rules.dedup();
    rules
}

// ---------------------------------------------------------------------------
// wall-clock
// ---------------------------------------------------------------------------

#[test]
fn wall_clock_flags_instant_now_outside_allowlist() {
    let src = "fn f() -> u64 { let t = Instant::now(); t.elapsed().as_nanos() as u64 }\n";
    let hits = lint("crates/core/src/holistic.rs", src);
    assert_eq!(
        hits,
        vec![(1, "wall-clock".into()), (1, "wall-clock".into())],
        "Instant::now and .elapsed must both fire"
    );
}

#[test]
fn wall_clock_silent_on_the_serve_allowlist() {
    let src = "fn f() -> std::time::Instant { Instant::now() }\n";
    assert!(lint("crates/opt/src/serve.rs", src).is_empty());
    assert!(lint("crates/bench/src/tables.rs", src).is_empty());
}

#[test]
fn wall_clock_flags_system_time() {
    let src = "fn f() { let _ = SystemTime::UNIX_EPOCH; }\n";
    assert_eq!(rules_fired("crates/sim/src/engine.rs", src), ["wall-clock"]);
}

#[test]
fn wall_clock_exempts_test_regions() {
    let src = "\
#[cfg(test)]
mod tests {
    fn timer() { let _ = Instant::now(); }
}
";
    assert!(lint("crates/core/src/holistic.rs", src).is_empty());
}

#[test]
fn wall_clock_honors_allow_marker() {
    let src = "\
// mcs-lint: allow(wall-clock) -- coarse progress logging only, not fed to results
let t0 = Instant::now();
";
    assert!(lint("crates/core/src/holistic.rs", src).is_empty());
}

#[test]
fn wall_clock_ignores_strings_and_comments() {
    let src = "\
// Instant::now() would be wrong here.
fn f() -> &'static str { \"Instant::now() and SystemTime and .elapsed()\" }
";
    assert!(lint("crates/core/src/holistic.rs", src).is_empty());
}

// ---------------------------------------------------------------------------
// rng-discipline
// ---------------------------------------------------------------------------

#[test]
fn rng_flags_entropy_constructors_everywhere() {
    let src = "fn f() { let mut rng = SmallRng::from_entropy(); }\n";
    assert_eq!(
        rules_fired("crates/opt/src/annealing.rs", src),
        ["rng-discipline"]
    );
    let src = "fn f() { let v: u64 = rand::random(); }\n";
    assert_eq!(
        rules_fired("crates/gen/src/lib.rs", src),
        ["rng-discipline"]
    );
}

#[test]
fn rng_allows_explicit_seeds() {
    let src = "fn f(seed: u64) { let mut rng = SmallRng::seed_from_u64(seed); }\n";
    assert!(lint("crates/opt/src/annealing.rs", src).is_empty());
}

#[test]
fn rng_flags_literal_seed_inside_parallel_region() {
    let src = "\
fn f(items: &[u64]) -> Vec<u64> {
    items
        .par_iter()
        .map(|x| {
            let mut rng = SmallRng::seed_from_u64(42);
            x + rng.next_u64()
        })
        .collect()
}
";
    let hits = lint("crates/opt/src/annealing.rs", src);
    assert_eq!(hits, vec![(5, "rng-discipline".into())]);
}

#[test]
fn rng_allows_per_lane_derived_seed_inside_parallel_region() {
    let src = "\
fn f(items: &[u64], seed: u64) -> Vec<u64> {
    items
        .par_iter()
        .enumerate()
        .map(|(i, x)| {
            let mut rng = SmallRng::seed_from_u64(seed ^ i as u64);
            x + rng.next_u64()
        })
        .collect()
}
";
    assert!(lint("crates/opt/src/annealing.rs", src).is_empty());
}

#[test]
fn rng_allows_literal_seed_outside_parallel_regions() {
    let src = "fn f() { let mut rng = SmallRng::seed_from_u64(42); }\n";
    assert!(lint("crates/opt/src/annealing.rs", src).is_empty());
}

// ---------------------------------------------------------------------------
// hash-order
// ---------------------------------------------------------------------------

#[test]
fn hash_order_flags_unsorted_iteration_in_report_modules() {
    let src = "\
fn report(m: &HashMap<u32, u32>) -> Vec<String> {
    let mut out = Vec::new();
    for (k, v) in m {
        out.push(json_line(*k, *v));
    }
    out
}
";
    let hits = lint("crates/sim/src/report.rs", src);
    assert_eq!(hits, vec![(3, "hash-order".into())]);
}

#[test]
fn hash_order_flags_values_iteration() {
    let src = "\
fn digest(m: &HashMap<u32, u32>) -> u64 {
    let mut acc = 0u64;
    for v in m.values() {
        acc = acc.wrapping_mul(31).wrapping_add(*v as u64);
    }
    acc
}
";
    let hits = lint("crates/sim/src/report.rs", src);
    assert!(
        hits.iter().any(|(_, r)| r == "hash-order"),
        "values() feeding a digest fold must fire: {hits:?}"
    );
}

#[test]
fn hash_order_exonerated_by_collect_then_sort() {
    let src = "\
fn report(m: &HashMap<u32, u32>) -> Vec<(u32, u32)> {
    let mut rows: Vec<(u32, u32)> = m.iter().map(|(k, v)| (*k, *v)).collect();
    rows.sort();
    rows.iter().map(|r| json_line(r.0, r.1)).collect()
}
";
    assert!(lint("crates/sim/src/report.rs", src).is_empty());
}

#[test]
fn hash_order_silent_in_modules_without_output_surface() {
    // No json_line/digest/SearchEvent mention and not a report.rs — the
    // rule does not police internal bookkeeping.
    let src = "\
fn count(m: &HashMap<u32, u32>) -> usize {
    let mut n = 0;
    for _ in m.values() {
        n += 1;
    }
    n
}
";
    assert!(lint("crates/opt/src/moves.rs", src).is_empty());
}

#[test]
fn hash_order_honors_allow_marker() {
    let src = "\
fn worst(m: &HashMap<u32, u32>) -> Option<u32> {
    // mcs-lint: allow(hash-order) -- max() is an order-independent fold
    m.values().copied().max().map(|v| v + json_line(0, 0).len() as u32)
}
";
    assert!(lint("crates/sim/src/report.rs", src).is_empty());
}

// ---------------------------------------------------------------------------
// panic-policy
// ---------------------------------------------------------------------------

#[test]
fn panic_policy_flags_unwrap_expect_and_macros_in_guarded_crates() {
    let src = "\
fn f(v: Option<u32>) -> u32 {
    match v {
        Some(x) => x.checked_mul(2).unwrap(),
        None => panic!(\"empty\"),
    }
}
";
    let hits = lint("crates/core/src/holistic.rs", src);
    assert_eq!(
        hits,
        vec![(3, "panic-policy".into()), (4, "panic-policy".into())]
    );
}

#[test]
fn panic_policy_only_guards_core_and_sim_library_code() {
    let src = "fn f(v: Option<u32>) -> u32 { v.unwrap() }\n";
    assert!(lint("crates/opt/src/annealing.rs", src).is_empty());
    assert!(lint("crates/sim/src/bin/faultsim.rs", src).is_empty());
    assert_eq!(
        rules_fired("crates/sim/src/engine.rs", src),
        ["panic-policy"]
    );
}

#[test]
fn panic_policy_does_not_match_unwrap_or() {
    let src = "fn f(v: Option<u32>) -> u32 { v.unwrap_or(0).max(v.unwrap_or_default()) }\n";
    assert!(lint("crates/core/src/holistic.rs", src).is_empty());
}

#[test]
fn panic_policy_exempts_tests_and_honors_markers() {
    let src = "\
fn f(v: &[u32]) -> u32 {
    // mcs-lint: allow(panic-policy) -- callers guarantee v is non-empty
    *v.first().expect(\"non-empty\")
}

#[cfg(test)]
mod tests {
    #[test]
    fn check() {
        assert_eq!(super::f(&[1]), 1);
        Option::<u32>::None.unwrap_or(0);
        let _ = std::panic::catch_unwind(|| super::f(&[]).to_string().parse::<u32>().unwrap());
    }
}
";
    assert!(lint("crates/core/src/holistic.rs", src).is_empty());
}

// ---------------------------------------------------------------------------
// float-reduction
// ---------------------------------------------------------------------------

#[test]
fn float_reduction_flags_sum_inside_parallel_region() {
    let src = "\
fn f(xs: &[f64]) -> f64 {
    xs.par_iter().map(|x| x * 2.0).sum()
}
";
    let hits = lint("crates/opt/src/annealing.rs", src);
    assert_eq!(hits, vec![(2, "float-reduction".into())]);
}

#[test]
fn float_reduction_allows_sequential_sum() {
    let src = "\
fn f(xs: &[f64]) -> f64 {
    xs.iter().map(|x| x * 2.0).sum()
}
";
    assert!(lint("crates/opt/src/annealing.rs", src).is_empty());
}

#[test]
fn float_reduction_honors_allow_marker() {
    let src = "\
fn f(xs: &[u64]) -> u64 {
    xs.par_iter()
        .map(|x| x * 2)
        // mcs-lint: allow(float-reduction) -- integer addition is order-independent
        .sum()
}
";
    assert!(lint("crates/opt/src/annealing.rs", src).is_empty());
}

// ---------------------------------------------------------------------------
// the `marker` pseudo-rule
// ---------------------------------------------------------------------------

#[test]
fn reasonless_marker_is_itself_a_violation() {
    let src = "\
// mcs-lint: allow(wall-clock)
let t = Instant::now();
";
    let hits = lint("crates/core/src/holistic.rs", src);
    // The malformed marker does NOT suppress, so both the marker
    // diagnostic and the wall-clock diagnostic fire.
    assert_eq!(hits, vec![(1, "marker".into()), (2, "wall-clock".into())]);
}

#[test]
fn unknown_rule_in_marker_is_a_violation() {
    let src = "// mcs-lint: allow(no-such-rule) -- because\nfn f() {}\n";
    let hits = lint("crates/opt/src/moves.rs", src);
    assert_eq!(hits, vec![(1, "marker".into())]);
}

#[test]
fn marker_reaches_only_its_own_and_the_next_line() {
    let src = "\
// mcs-lint: allow(wall-clock) -- only covers the next line
let a = Instant::now();
let b = Instant::now();
";
    let hits = lint("crates/core/src/holistic.rs", src);
    assert_eq!(hits, vec![(3, "wall-clock".into())]);
}

// ---------------------------------------------------------------------------
// lexer robustness (via the rules): raw strings and nested comments
// ---------------------------------------------------------------------------

#[test]
fn raw_strings_and_nested_comments_do_not_fire() {
    let src = "\
/* outer /* nested Instant::now() */ still comment .unwrap() */
fn f() -> &'static str {
    r#\"SystemTime::now().unwrap() and panic!(\"x\") in a raw string\"#
}
";
    assert!(lint("crates/core/src/holistic.rs", src).is_empty());
}
