//! Baseline (`lint.toml`) behavior: render/parse round-trip stability,
//! coverage matching, staleness detection, and strict rejection of
//! baselines the parser does not fully understand.

use mcs_lint::baseline::Entry;
use mcs_lint::{Baseline, Violation};

fn entry(file: &str, line: u32, rule: &str) -> Entry {
    Entry {
        file: file.to_string(),
        line,
        rule: rule.to_string(),
        reason: "reviewed: pre-existing site".to_string(),
    }
}

fn violation(file: &str, line: u32, rule: &'static str) -> Violation {
    Violation {
        file: file.to_string(),
        line,
        rule,
        message: String::new(),
    }
}

#[test]
fn render_parse_round_trip_is_stable() {
    let b = Baseline {
        entries: vec![
            entry("crates/core/src/holistic.rs", 10, "panic-policy"),
            entry("crates/sim/src/report.rs", 42, "hash-order"),
        ],
    };
    let text = b.render();
    let reparsed = Baseline::parse(&text).expect("rendered baseline must parse");
    assert_eq!(reparsed, b);
    // A second render of the reparse is byte-identical — the file never
    // churns under --write-baseline with no new violations.
    assert_eq!(reparsed.render(), text);
}

#[test]
fn empty_baseline_round_trips() {
    let b = Baseline::default();
    let reparsed = Baseline::parse(&b.render()).expect("header-only file parses");
    assert_eq!(reparsed, b);
}

#[test]
fn covers_matches_on_file_line_and_rule() {
    let b = Baseline {
        entries: vec![entry("crates/core/src/holistic.rs", 10, "panic-policy")],
    };
    assert!(b.covers(&violation(
        "crates/core/src/holistic.rs",
        10,
        "panic-policy"
    )));
    assert!(!b.covers(&violation(
        "crates/core/src/holistic.rs",
        11,
        "panic-policy"
    )));
    assert!(!b.covers(&violation("crates/core/src/holistic.rs", 10, "hash-order")));
    assert!(!b.covers(&violation("crates/core/src/delta.rs", 10, "panic-policy")));
}

#[test]
fn stale_lists_entries_with_no_matching_violation() {
    let b = Baseline {
        entries: vec![
            entry("crates/core/src/holistic.rs", 10, "panic-policy"),
            entry("crates/sim/src/report.rs", 42, "hash-order"),
        ],
    };
    let live = [violation("crates/core/src/holistic.rs", 10, "panic-policy")];
    let stale = b.stale(&live);
    assert_eq!(stale.len(), 1);
    assert_eq!(stale[0].file, "crates/sim/src/report.rs");
}

#[test]
fn parse_rejects_unknown_keys() {
    let text = "[[allow]]\nfile = \"a.rs\"\nline = 1\nrule = \"hash-order\"\nreason = \"x\"\nseverity = \"low\"\n";
    let err = Baseline::parse(text).unwrap_err();
    assert!(err.contains("unknown key"), "{err}");
}

#[test]
fn parse_rejects_missing_reason() {
    let text = "[[allow]]\nfile = \"a.rs\"\nline = 1\nrule = \"hash-order\"\n";
    let err = Baseline::parse(text).unwrap_err();
    assert!(err.contains("no reason"), "{err}");
}

#[test]
fn parse_rejects_incomplete_entries_and_stray_keys() {
    let err = Baseline::parse("[[allow]]\nfile = \"a.rs\"\nreason = \"x\"\n").unwrap_err();
    assert!(err.contains("incomplete"), "{err}");
    let err = Baseline::parse("file = \"a.rs\"\n").unwrap_err();
    assert!(err.contains("outside"), "{err}");
    let err =
        Baseline::parse("[[allow]]\nfile = unquoted\nline = 1\nrule = \"r\"\nreason = \"x\"\n")
            .unwrap_err();
    assert!(err.contains("double-quoted"), "{err}");
}
