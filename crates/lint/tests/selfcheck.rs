//! The self-check: the workspace itself must be lint-clean at `--deny`
//! strictness, and the checked-in baseline must hold no stale entries.
//! This is the same predicate CI enforces via the binary, run in-process
//! so a plain `cargo test` catches violations before a push does.

use mcs_lint::{check_workspace, Baseline, Config};
use std::path::Path;

#[test]
fn workspace_is_clean_and_baseline_is_fresh() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let baseline = match std::fs::read_to_string(root.join("lint.toml")) {
        Ok(text) => Baseline::parse(&text).expect("lint.toml must parse"),
        Err(_) => Baseline::default(),
    };
    let violations =
        check_workspace(&Config::workspace_default(), &root).expect("workspace walk succeeds");

    let fresh: Vec<_> = violations.iter().filter(|v| !baseline.covers(v)).collect();
    assert!(
        fresh.is_empty(),
        "unsuppressed lint violations (fix, add a `// mcs-lint: allow(..) -- ..` marker, \
         or baseline them):\n{}",
        fresh
            .iter()
            .map(|v| format!("  {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    );

    let stale = baseline.stale(&violations);
    assert!(
        stale.is_empty(),
        "stale lint.toml entries (their sites no longer violate — remove them):\n{}",
        stale
            .iter()
            .map(|e| format!("  {}:{} [{}]", e.file, e.line, e.rule))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn every_rule_is_exercised_by_the_fixture_suite() {
    // Guards against adding a rule to RULES without fixture coverage:
    // the fixture file must mention each rule name at least once.
    let fixtures = std::fs::read_to_string(
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/rule_fixtures.rs"),
    )
    .expect("fixture suite exists");
    for rule in mcs_lint::RULES {
        assert!(
            fixtures.contains(rule),
            "rule `{rule}` has no fixture coverage in tests/rule_fixtures.rs"
        );
    }
}
