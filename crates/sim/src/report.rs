//! Simulation results and their comparison against analytic bounds.

use std::collections::HashMap;

use mcs_core::AnalysisOutcome;
use mcs_model::{GraphId, NodeId, ProcessId, System, Time};

use crate::trace::TraceEvent;

/// Observations from one simulation run.
#[derive(Clone, Debug, Default)]
pub struct SimReport {
    /// Worst observed completion of each process, relative to its graph's
    /// activation instant (comparable to the analytic `O + r`).
    pub process_completion: HashMap<ProcessId, Time>,
    /// Worst observed end-to-end response of each graph.
    pub graph_response: HashMap<GraphId, Time>,
    /// Peak byte occupancy of the gateway's `Out_CAN` queue.
    pub max_out_can: u64,
    /// Peak byte occupancy of the gateway's `Out_TTP` FIFO.
    pub max_out_ttp: u64,
    /// Peak byte occupancy of each node's CAN output queue.
    pub max_out_node: HashMap<NodeId, u64>,
    /// Times a TT process reached its schedule-table start before all its
    /// input messages had arrived — zero for any sound schedule.
    pub table_violations: u64,
    /// Number of graph activations simulated.
    pub activations: u64,
    /// Chronological event trace (completions, frames, CAN transmissions,
    /// gateway queue operations); render with [`crate::render_trace`].
    pub trace: Vec<TraceEvent>,
}

impl SimReport {
    /// Checks every observation against the analytic worst-case bounds.
    ///
    /// Returns the list of violations (empty when the analysis soundly
    /// over-approximates the simulated behaviour, as it must for a
    /// schedulable system).
    pub fn soundness_violations(&self, system: &System, outcome: &AnalysisOutcome) -> Vec<String> {
        let mut violations = Vec::new();
        for (&p, &observed) in &self.process_completion {
            let bound = outcome.process_timing(p).worst_completion();
            if observed > bound {
                violations.push(format!(
                    "process {} completed at {observed} past its bound {bound}",
                    system.application.process(p).name()
                ));
            }
        }
        for (&g, &observed) in &self.graph_response {
            let bound = outcome.graph_response(g);
            if observed > bound {
                violations.push(format!(
                    "graph {} responded in {observed} past its bound {bound}",
                    system.application.graph(g).name()
                ));
            }
        }
        if self.max_out_can > outcome.queues.out_can {
            violations.push(format!(
                "Out_CAN peaked at {} B past its bound {} B",
                self.max_out_can, outcome.queues.out_can
            ));
        }
        if self.max_out_ttp > outcome.queues.out_ttp {
            violations.push(format!(
                "Out_TTP peaked at {} B past its bound {} B",
                self.max_out_ttp, outcome.queues.out_ttp
            ));
        }
        for (&node, &observed) in &self.max_out_node {
            let bound = outcome.queues.out_node.get(&node).copied().unwrap_or(0);
            if observed > bound {
                violations.push(format!(
                    "Out_{} peaked at {observed} B past its bound {bound} B",
                    system.architecture.node(node).name()
                ));
            }
        }
        if self.table_violations > 0 {
            violations.push(format!(
                "{} schedule-table starts fired before their inputs arrived",
                self.table_violations
            ));
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_report_is_empty() {
        let r = SimReport::default();
        assert_eq!(r.max_out_can, 0);
        assert!(r.process_completion.is_empty());
        assert_eq!(r.table_violations, 0);
    }
}
