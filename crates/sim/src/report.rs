//! Simulation results and their comparison against analytic bounds.

use std::collections::HashMap;

use mcs_core::{json_line, AnalysisOutcome, JsonField};
use mcs_model::{GraphId, NodeId, ProcessId, System, Time};

use crate::fault::FaultStats;
use crate::trace::TraceEvent;

/// Observations from one simulation run.
#[derive(Clone, Debug, Default)]
pub struct SimReport {
    /// Worst observed completion of each process, relative to its graph's
    /// activation instant (comparable to the analytic `O + r`).
    pub process_completion: HashMap<ProcessId, Time>,
    /// Worst observed end-to-end response of each graph.
    pub graph_response: HashMap<GraphId, Time>,
    /// Peak byte occupancy of the gateway's `Out_CAN` queue.
    pub max_out_can: u64,
    /// Peak byte occupancy of the gateway's `Out_TTP` FIFO.
    pub max_out_ttp: u64,
    /// Peak byte occupancy of each node's CAN output queue.
    pub max_out_node: HashMap<NodeId, u64>,
    /// Times a TT process reached its schedule-table start before all its
    /// input messages had arrived — zero for any sound schedule.
    pub table_violations: u64,
    /// Number of graph activations simulated.
    pub activations: u64,
    /// Chronological event trace (completions, frames, CAN transmissions,
    /// gateway queue operations); render with [`crate::render_trace`].
    pub trace: Vec<TraceEvent>,
    /// Fault-injection accounting — all zero on the nominal path.
    pub faults: FaultStats,
}

/// A classified outcome of comparing one run against the analytic bounds.
///
/// Produced by [`SimReport::classify_findings`]. Only a
/// [`SoundnessFinding::NominalViolation`] indicts the analysis: it means an
/// *unperturbed* run escaped its worst-case bounds. Findings on perturbed
/// runs are degradation metrics — the analysis never claimed to cover
/// faulty hardware.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SoundnessFinding {
    /// An unperturbed run exceeded an analytic bound — a hard finding
    /// (reproducible analysis bug), never acceptable.
    NominalViolation(String),
    /// A perturbed run exceeded an analytic bound; expected under faults,
    /// reported so campaigns can quantify degradation.
    FaultMaskedViolation(String),
    /// A perturbed run pushed a graph past its *deadline* (not merely past
    /// the analytic bound) — the user-visible degradation metric.
    DegradedDeadlineMiss(String),
}

impl SoundnessFinding {
    /// Stable machine-readable tag of the finding class.
    pub fn kind(&self) -> &'static str {
        match self {
            SoundnessFinding::NominalViolation(_) => "nominal_violation",
            SoundnessFinding::FaultMaskedViolation(_) => "fault_masked_violation",
            SoundnessFinding::DegradedDeadlineMiss(_) => "degraded_deadline_miss",
        }
    }

    /// Human-readable description of the finding.
    pub fn detail(&self) -> &str {
        match self {
            SoundnessFinding::NominalViolation(d)
            | SoundnessFinding::FaultMaskedViolation(d)
            | SoundnessFinding::DegradedDeadlineMiss(d) => d,
        }
    }

    /// Whether this finding indicts the analysis (only nominal violations
    /// do).
    pub fn is_hard(&self) -> bool {
        matches!(self, SoundnessFinding::NominalViolation(_))
    }
}

impl SimReport {
    /// Checks every observation against the analytic worst-case bounds.
    ///
    /// Returns the list of violations (empty when the analysis soundly
    /// over-approximates the simulated behaviour, as it must for a
    /// schedulable system). The order is deterministic: processes, graphs,
    /// gateway queues, node queues, table violations, each sorted by id.
    pub fn soundness_violations(&self, system: &System, outcome: &AnalysisOutcome) -> Vec<String> {
        let mut violations = Vec::new();
        for (p, observed) in sorted(&self.process_completion) {
            let bound = outcome.process_timing(p).worst_completion();
            if observed > bound {
                violations.push(format!(
                    "process {} completed at {observed} past its bound {bound}",
                    system.application.process(p).name()
                ));
            }
        }
        for (g, observed) in sorted(&self.graph_response) {
            let bound = outcome.graph_response(g);
            if observed > bound {
                violations.push(format!(
                    "graph {} responded in {observed} past its bound {bound}",
                    system.application.graph(g).name()
                ));
            }
        }
        if self.max_out_can > outcome.queues.out_can {
            violations.push(format!(
                "Out_CAN peaked at {} B past its bound {} B",
                self.max_out_can, outcome.queues.out_can
            ));
        }
        if self.max_out_ttp > outcome.queues.out_ttp {
            violations.push(format!(
                "Out_TTP peaked at {} B past its bound {} B",
                self.max_out_ttp, outcome.queues.out_ttp
            ));
        }
        for (node, observed) in sorted(&self.max_out_node) {
            let bound = outcome.queues.out_node.get(&node).copied().unwrap_or(0);
            if observed > bound {
                violations.push(format!(
                    "Out_{} peaked at {observed} B past its bound {bound} B",
                    system.architecture.node(node).name()
                ));
            }
        }
        if self.table_violations > 0 {
            violations.push(format!(
                "{} schedule-table starts fired before their inputs arrived",
                self.table_violations
            ));
        }
        violations
    }

    /// Classifies this run's deviations from the analytic bounds.
    ///
    /// On an unperturbed run (no faults injected, no drift applied — see
    /// [`FaultStats::perturbed`]) every bound violation is a
    /// [`SoundnessFinding::NominalViolation`]: a hard, reproducible
    /// analysis bug. On a perturbed run, bound violations become
    /// [`SoundnessFinding::FaultMaskedViolation`]s and graphs pushed past
    /// their deadline are additionally reported as
    /// [`SoundnessFinding::DegradedDeadlineMiss`]es.
    pub fn classify_findings(
        &self,
        system: &System,
        outcome: &AnalysisOutcome,
    ) -> Vec<SoundnessFinding> {
        let perturbed = self.faults.perturbed();
        let mut findings: Vec<SoundnessFinding> = self
            .soundness_violations(system, outcome)
            .into_iter()
            .map(|detail| {
                if perturbed {
                    SoundnessFinding::FaultMaskedViolation(detail)
                } else {
                    SoundnessFinding::NominalViolation(detail)
                }
            })
            .collect();
        if perturbed {
            for (g, observed) in sorted(&self.graph_response) {
                let deadline = system.application.graph(g).deadline();
                if observed > deadline {
                    findings.push(SoundnessFinding::DegradedDeadlineMiss(format!(
                        "graph {} responded in {observed} past its deadline {deadline}",
                        system.application.graph(g).name()
                    )));
                }
            }
        }
        findings
    }

    /// Signed margin `bound − observed` (in ticks) of every process, sorted
    /// by id. Negative means the observation exceeded its analytic bound.
    pub fn process_margins(&self, outcome: &AnalysisOutcome) -> Vec<(ProcessId, i128)> {
        sorted(&self.process_completion)
            .into_iter()
            .map(|(p, observed)| {
                let bound = outcome.process_timing(p).worst_completion();
                (p, i128::from(bound.ticks()) - i128::from(observed.ticks()))
            })
            .collect()
    }

    /// A 64-bit FNV-1a digest over every observation of the run — worst
    /// completions and responses (sorted by id), queue peaks, the full
    /// chronological trace, and the fault accounting. Two runs with equal
    /// digests made byte-identical observations.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv::new();
        h.word(self.activations);
        h.word(self.table_violations);
        h.word(self.max_out_can);
        h.word(self.max_out_ttp);
        for (p, t) in sorted(&self.process_completion) {
            h.word(u64::from(p.raw()));
            h.word(t.ticks());
        }
        for (g, t) in sorted(&self.graph_response) {
            h.word(u64::from(g.raw()));
            h.word(t.ticks());
        }
        for (n, b) in sorted(&self.max_out_node) {
            h.word(u64::from(n.raw()));
            h.word(b);
        }
        for event in &self.trace {
            let (tag, id, k, t) = event.digest_parts();
            h.word(u64::from(tag));
            h.word(id);
            h.word(k);
            h.word(t.ticks());
        }
        h.word(self.faults.can_injected);
        h.word(self.faults.can_retransmitted);
        h.word(self.faults.can_dropped);
        h.word(self.faults.overload_episodes);
        h.word(self.faults.overload_inflated);
        h.word(self.faults.max_drift.ticks());
        for loss in &self.faults.loss_log {
            h.word(u64::from(loss.message.raw()));
            h.word(loss.activation);
            h.word(loss.at.ticks());
            h.word(u64::from(loss.retry));
            h.word(u64::from(loss.dropped));
        }
        h.finish()
    }

    /// Renders the run as one flat JSON line: summary observations, fault
    /// accounting and the [`Self::digest`]. Deterministic — equal runs
    /// produce byte-identical lines.
    pub fn json_line(&self) -> String {
        let worst_completion = self
            .process_completion
            // mcs-lint: allow(hash-order) -- max() is an order-independent fold
            .values()
            .max()
            .copied()
            .unwrap_or(Time::ZERO);
        let worst_response = self
            .graph_response
            // mcs-lint: allow(hash-order) -- max() is an order-independent fold
            .values()
            .max()
            .copied()
            .unwrap_or(Time::ZERO);
        let digest = format!("{:016x}", self.digest());
        json_line(&[
            ("activations", JsonField::UInt(self.activations)),
            (
                "processes",
                JsonField::UInt(self.process_completion.len() as u64),
            ),
            (
                "worst_completion",
                JsonField::UInt(worst_completion.ticks()),
            ),
            ("worst_response", JsonField::UInt(worst_response.ticks())),
            ("max_out_can", JsonField::UInt(self.max_out_can)),
            ("max_out_ttp", JsonField::UInt(self.max_out_ttp)),
            ("table_violations", JsonField::UInt(self.table_violations)),
            ("trace_events", JsonField::UInt(self.trace.len() as u64)),
            ("can_injected", JsonField::UInt(self.faults.can_injected)),
            (
                "can_retransmitted",
                JsonField::UInt(self.faults.can_retransmitted),
            ),
            ("can_dropped", JsonField::UInt(self.faults.can_dropped)),
            (
                "overload_episodes",
                JsonField::UInt(self.faults.overload_episodes),
            ),
            (
                "max_drift_ticks",
                JsonField::UInt(self.faults.max_drift.ticks()),
            ),
            ("digest", JsonField::Str(&digest)),
        ])
    }
}

/// Key-sorted snapshot of a map — the determinism primitive of this module.
fn sorted<K: Copy + Ord, V: Copy>(map: &HashMap<K, V>) -> Vec<(K, V)> {
    let mut entries: Vec<(K, V)> = map.iter().map(|(&k, &v)| (k, v)).collect();
    entries.sort_unstable_by_key(|&(k, _)| k);
    entries
}

/// Minimal FNV-1a over 64-bit words.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn word(&mut self, w: u64) {
        for byte in w.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_report_is_empty() {
        let r = SimReport::default();
        assert_eq!(r.max_out_can, 0);
        assert!(r.process_completion.is_empty());
        assert_eq!(r.table_violations, 0);
        assert!(!r.faults.perturbed());
    }

    #[test]
    fn digest_and_json_line_are_stable() {
        let mut r = SimReport {
            activations: 2,
            ..SimReport::default()
        };
        r.process_completion
            .insert(ProcessId::new(1), Time::from_millis(3));
        r.process_completion
            .insert(ProcessId::new(0), Time::from_millis(7));
        let a = r.json_line();
        let b = r.clone().json_line();
        assert_eq!(a, b);
        assert!(a.contains("\"digest\""));
        r.table_violations = 1;
        assert_ne!(r.json_line(), a, "digest must react to observations");
    }

    #[test]
    fn findings_expose_kind_and_hardness() {
        let hard = SoundnessFinding::NominalViolation("x".into());
        assert!(hard.is_hard());
        assert_eq!(hard.kind(), "nominal_violation");
        assert_eq!(hard.detail(), "x");
        let soft = SoundnessFinding::DegradedDeadlineMiss("y".into());
        assert!(!soft.is_hard());
        assert_eq!(soft.kind(), "degraded_deadline_miss");
    }
}
