//! Simulation event traces: a chronological record of completions, frame
//! arrivals, CAN transmissions and gateway queue operations, with a text
//! renderer for debugging synthesized systems.

use std::fmt::Write as _;

use mcs_model::{MessageId, ProcessId, System, Time};

/// One observable event of a simulation run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// Process instance `(process, activation)` completed.
    Completed(ProcessId, u64, Time),
    /// A TTP frame carrying `(message, activation)` landed (MBI arrival).
    FrameArrived(MessageId, u64, Time),
    /// A CAN transmission of `(message, activation)` finished.
    CanTransmitted(MessageId, u64, Time),
    /// `(message, activation)` entered the gateway's `Out_TTP` FIFO.
    FifoEnqueued(MessageId, u64, Time),
    /// `(message, activation)` was delivered out of the gateway slot.
    FifoDelivered(MessageId, u64, Time),
    /// A transmission of `(message, activation)` was corrupted on the wire
    /// and re-enters arbitration (fault injection).
    CanCorrupted(MessageId, u64, Time),
    /// `(message, activation)` was dropped after exhausting its CAN retry
    /// budget (fault injection).
    CanDropped(MessageId, u64, Time),
    /// `(process, activation)` entered an overload episode (fault
    /// injection).
    OverloadBurst(ProcessId, u64, Time),
}

impl TraceEvent {
    /// The instant the event occurred.
    pub fn at(&self) -> Time {
        match *self {
            TraceEvent::Completed(_, _, t)
            | TraceEvent::FrameArrived(_, _, t)
            | TraceEvent::CanTransmitted(_, _, t)
            | TraceEvent::FifoEnqueued(_, _, t)
            | TraceEvent::FifoDelivered(_, _, t)
            | TraceEvent::CanCorrupted(_, _, t)
            | TraceEvent::CanDropped(_, _, t)
            | TraceEvent::OverloadBurst(_, _, t) => t,
        }
    }

    /// Flattens the event to `(variant tag, entity id, activation, time)`
    /// for digesting.
    pub(crate) fn digest_parts(&self) -> (u8, u64, u64, Time) {
        match *self {
            TraceEvent::Completed(p, k, t) => (0, u64::from(p.raw()), k, t),
            TraceEvent::FrameArrived(m, k, t) => (1, u64::from(m.raw()), k, t),
            TraceEvent::CanTransmitted(m, k, t) => (2, u64::from(m.raw()), k, t),
            TraceEvent::FifoEnqueued(m, k, t) => (3, u64::from(m.raw()), k, t),
            TraceEvent::FifoDelivered(m, k, t) => (4, u64::from(m.raw()), k, t),
            TraceEvent::CanCorrupted(m, k, t) => (5, u64::from(m.raw()), k, t),
            TraceEvent::CanDropped(m, k, t) => (6, u64::from(m.raw()), k, t),
            TraceEvent::OverloadBurst(p, k, t) => (7, u64::from(p.raw()), k, t),
        }
    }
}

/// Renders a trace chronologically, one line per event.
pub fn render_trace(system: &System, events: &[TraceEvent]) -> String {
    let mut sorted: Vec<&TraceEvent> = events.iter().collect();
    sorted.sort_by_key(|e| e.at());
    let app = &system.application;
    let mut out = String::new();
    for event in sorted {
        let _ = match *event {
            TraceEvent::Completed(p, k, t) => writeln!(
                out,
                "{:>10}  process  {}#{k} completed",
                t.to_string(),
                app.process(p).name()
            ),
            TraceEvent::FrameArrived(m, k, t) => writeln!(
                out,
                "{:>10}  ttp      {}#{k} frame arrived",
                t.to_string(),
                app.message(m).name()
            ),
            TraceEvent::CanTransmitted(m, k, t) => writeln!(
                out,
                "{:>10}  can      {}#{k} transmitted",
                t.to_string(),
                app.message(m).name()
            ),
            TraceEvent::FifoEnqueued(m, k, t) => writeln!(
                out,
                "{:>10}  gateway  {}#{k} -> Out_TTP",
                t.to_string(),
                app.message(m).name()
            ),
            TraceEvent::FifoDelivered(m, k, t) => writeln!(
                out,
                "{:>10}  gateway  {}#{k} delivered via S_G",
                t.to_string(),
                app.message(m).name()
            ),
            TraceEvent::CanCorrupted(m, k, t) => writeln!(
                out,
                "{:>10}  fault    {}#{k} corrupted on CAN, retransmitting",
                t.to_string(),
                app.message(m).name()
            ),
            TraceEvent::CanDropped(m, k, t) => writeln!(
                out,
                "{:>10}  fault    {}#{k} dropped after CAN retry budget",
                t.to_string(),
                app.message(m).name()
            ),
            TraceEvent::OverloadBurst(p, k, t) => writeln!(
                out,
                "{:>10}  fault    {}#{k} entered overload burst",
                t.to_string(),
                app.process(p).name()
            ),
        };
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_expose_their_instants() {
        let e = TraceEvent::Completed(ProcessId::new(0), 1, Time::from_millis(30));
        assert_eq!(e.at(), Time::from_millis(30));
        let f = TraceEvent::FifoEnqueued(MessageId::new(2), 0, Time::from_millis(7));
        assert_eq!(f.at(), Time::from_millis(7));
    }
}
