//! The discrete-event simulator of the two-cluster system.
//!
//! The simulator executes the system's actual runtime behaviour — schedule
//! tables on TT CPUs, fixed-priority preemptive dispatch on ET CPUs, TDMA
//! frame transmission on the TTP bus, priority arbitration on CAN, and the
//! gateway's `Out_CAN`/`Out_TTP` queues — and records observed response
//! times and queue occupancies. Its purpose is to validate that the
//! worst-case analysis of `mcs-core` soundly over-approximates every
//! observable behaviour (see [`crate::SimReport::soundness_violations`]).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mcs_can::Arbiter;
use mcs_core::AnalysisOutcome;
use mcs_model::{
    GraphId, MessageId, MessageRoute, NodeId, Priority, ProcessId, SlotId, System, SystemConfig,
    Time,
};
use mcs_ttp::RoundSchedule;

use crate::fault::{CanLoss, CanVerdict, FaultPlan, FaultState, OverloadEffect};
use crate::report::SimReport;
use crate::trace::TraceEvent;

/// Duration of a CAN error frame plus interframe space, in bit times
/// (flag + delimiter + intermission, rounded up to the protocol maximum).
const ERROR_FRAME_BITS: u64 = 31;

/// How process execution times are drawn.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExecutionModel {
    /// Every instance runs for exactly its WCET.
    #[default]
    WorstCase,
    /// Uniformly random in `[BCET, WCET]` (seeded, reproducible).
    RandomUniform,
}

/// Simulation parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimParams {
    /// Number of activations of each graph to simulate.
    pub activations: u64,
    /// Execution-time model.
    pub execution: ExecutionModel,
    /// RNG seed for [`ExecutionModel::RandomUniform`].
    pub seed: u64,
}

impl Default for SimParams {
    fn default() -> Self {
        SimParams {
            activations: 4,
            execution: ExecutionModel::WorstCase,
            seed: 0,
        }
    }
}

/// A degenerate input the simulator rejects up front instead of panicking
/// mid-run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The application has no process graphs (or only empty ones).
    EmptyApplication,
    /// [`SimParams::activations`] is zero — nothing to observe.
    ZeroHorizon,
    /// The TDMA round has zero duration (no slots, or all zero-capacity).
    EmptyTdmaRound,
    /// The TDMA configuration has no slot owned by the gateway node.
    MissingGatewaySlot,
    /// A TT process has no entry in the schedule table of the outcome.
    UnscheduledTtProcess(ProcessId),
    /// A CAN-routed message has no priority in the configuration.
    UnprioritizedMessage(MessageId),
    /// A TTC-sourced message's sender node owns no TDMA slot, so its
    /// frame could never depart.
    MissingSenderSlot(NodeId),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::EmptyApplication => {
                write!(f, "the application has no process graphs to simulate")
            }
            SimError::ZeroHorizon => {
                write!(f, "SimParams::activations is zero — nothing to observe")
            }
            SimError::EmptyTdmaRound => write!(f, "the TDMA round has zero duration"),
            SimError::MissingGatewaySlot => {
                write!(f, "the TDMA configuration has no slot for the gateway node")
            }
            SimError::UnscheduledTtProcess(p) => {
                write!(f, "TT process {p} has no entry in the schedule table")
            }
            SimError::UnprioritizedMessage(m) => {
                write!(
                    f,
                    "CAN-routed message {m} has no priority in the configuration"
                )
            }
            SimError::MissingSenderSlot(n) => {
                write!(f, "TTP sender node {n} owns no TDMA slot")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// A process-graph activation instance.
type Instance = (ProcessId, u64);
type MsgInstance = (MessageId, u64);

#[derive(Clone, Debug, PartialEq, Eq)]
enum Event {
    /// A graph activates: its source processes become ready.
    Activate(GraphId, u64),
    /// A TT process starts per its schedule table.
    TtStart(ProcessId, u64),
    /// A running process finishes (guarded by the node's dispatch
    /// generation — stale events are ignored after a preemption).
    Finish(NodeId, u64),
    /// A TTP frame lands: the message is in every receiver's MBI.
    TtpArrival(MsgInstance),
    /// The gateway transfer process has copied a TTC→ETC message into
    /// `Out_CAN`.
    IntoOutCan(MsgInstance),
    /// The gateway transfer process has appended an ETC→TTC message to
    /// `Out_TTP`.
    IntoOutTtp(MsgInstance),
    /// A CAN transmission completes.
    CanFinish(MsgInstance),
    /// A CAN error frame has been signalled; the bus becomes idle again
    /// (fault injection only — never scheduled on the nominal path).
    CanBusIdle,
    /// The gateway slot occurrence at this round drains `Out_TTP`.
    SgDrain(u64),
    /// An `Out_TTP` frame lands at its TT destination's input buffer.
    TtpDeliver(Instance),
}

#[derive(Clone, Debug)]
struct Running {
    instance: Instance,
    remaining: Time,
    since: Time,
    rank: u64,
}

#[derive(Clone, Debug, Default)]
struct EtNode {
    ready: Vec<(u64, Instance)>, // (rank, instance), linear scan dispatch
    running: Option<Running>,
    generation: u64,
}

/// Runs the simulation on the fault-free nominal path.
///
/// The TT schedule tables and frame placements are taken from `outcome`
/// (the analysis is the system synthesis; the simulator is the "hardware").
/// Frames are placed on the TDMA grid dynamically — each TT sender
/// transmits in the first occurrence of its slot with spare capacity after
/// completion — which is exactly the rule the static scheduler encoded in
/// the MEDL for activation 0 and generalizes it to every activation.
///
/// # Errors
///
/// Returns a [`SimError`] when the inputs are degenerate: an empty
/// application, a zero-activation horizon, an empty TDMA round, a missing
/// gateway slot, an unscheduled TT process, or an unprioritized CAN
/// message.
pub fn simulate(
    system: &System,
    config: &SystemConfig,
    outcome: &AnalysisOutcome,
    params: &SimParams,
) -> Result<SimReport, SimError> {
    simulate_with_faults(system, config, outcome, params, None)
}

/// Runs the simulation, optionally injecting faults from a seeded plan.
///
/// With `faults: None` (or a plan whose parameters are
/// [`crate::FaultParams::NOMINAL`]) this is bit-identical to [`simulate`]:
/// the fault layer draws from its own RNG stream, so the execution-time
/// stream is untouched. See [`crate::fault`] for the fault model and its
/// determinism contract.
///
/// # Errors
///
/// Same input validation as [`simulate`].
pub fn simulate_with_faults(
    system: &System,
    config: &SystemConfig,
    outcome: &AnalysisOutcome,
    params: &SimParams,
    faults: Option<&FaultPlan>,
) -> Result<SimReport, SimError> {
    Ok(Simulator::try_new(system, config, outcome, params, faults)?.run())
}

struct Simulator<'a> {
    system: &'a System,
    config: &'a SystemConfig,
    outcome: &'a AnalysisOutcome,
    params: &'a SimParams,
    rng: StdRng,
    faults: Option<FaultState>,

    rounds: RoundSchedule<'a>,
    gw_slot: SlotId,
    gw_capacity: u32,
    /// TDMA round duration — the clock-drift resynchronization period.
    resync: Time,
    /// Bus occupation of one CAN error frame.
    error_frame: Time,

    queue: BinaryHeap<Reverse<(Time, u8, EventKey)>>,
    events: HashMap<u64, Event>,
    seq: u64,

    pending: HashMap<Instance, usize>,
    exec_remaining: HashMap<Instance, Time>,
    et_nodes: HashMap<NodeId, EtNode>,
    /// Bytes already packed per (slot, round) occurrence.
    frame_usage: HashMap<(u32, u64), u32>,

    can: Arbiter<MsgInstance>,
    can_busy: bool,
    out_can_bytes: u64,
    out_node_bytes: HashMap<NodeId, u64>,
    /// Which queue each in-flight CAN message drains when it starts.
    can_source: HashMap<MsgInstance, Option<NodeId>>,
    out_ttp: VecDeque<MsgInstance>,
    out_ttp_bytes: u64,
    sg_scheduled: HashMap<u64, ()>,

    report: SimReport,
    now: Time,
}

/// Ordering key so the heap is deterministic without comparing `Event`.
type EventKey = u64;

impl<'a> Simulator<'a> {
    fn try_new(
        system: &'a System,
        config: &'a SystemConfig,
        outcome: &'a AnalysisOutcome,
        params: &'a SimParams,
        faults: Option<&FaultPlan>,
    ) -> Result<Self, SimError> {
        let app = &system.application;
        if app.graphs().iter().all(|g| g.is_empty()) {
            return Err(SimError::EmptyApplication);
        }
        if params.activations == 0 {
            return Err(SimError::ZeroHorizon);
        }
        let rounds = RoundSchedule::new(&config.tdma, system.architecture.ttp_params());
        if rounds.round_duration().is_zero() {
            return Err(SimError::EmptyTdmaRound);
        }
        let gw_slot = rounds
            .slot_of_node(system.architecture.gateway())
            .ok_or(SimError::MissingGatewaySlot)?;
        for proc in app.processes() {
            if system.architecture.is_tt_cpu(proc.node())
                && outcome.schedule.start(proc.id()).is_none()
            {
                return Err(SimError::UnscheduledTtProcess(proc.id()));
            }
        }
        for message in app.messages() {
            if system.route(message.id()) != MessageRoute::TtcToTtc
                && config.priorities.message(message.id()).is_none()
            {
                return Err(SimError::UnprioritizedMessage(message.id()));
            }
            // TTC-sourced frames depart in their sender's own TDMA slot
            // (the EtcToTtc direction rides the gateway slot, checked
            // above) — reject a slotless sender here instead of panicking
            // at its first departure.
            if matches!(
                system.route(message.id()),
                MessageRoute::TtcToTtc | MessageRoute::TtcToEtc
            ) {
                let node = app.process(message.source()).node();
                if rounds.slot_of_node(node).is_none() {
                    return Err(SimError::MissingSenderSlot(node));
                }
            }
        }
        let gw_capacity = rounds.slot_capacity(gw_slot);
        let can_params = system.architecture.can_params();
        let mut sim = Simulator {
            system,
            config,
            outcome,
            params,
            rng: StdRng::seed_from_u64(params.seed),
            faults: faults.map(FaultState::new),
            rounds,
            gw_slot,
            gw_capacity,
            resync: rounds.round_duration(),
            error_frame: can_params.bit_time.saturating_mul(ERROR_FRAME_BITS),
            queue: BinaryHeap::new(),
            events: HashMap::new(),
            seq: 0,
            pending: HashMap::new(),
            exec_remaining: HashMap::new(),
            et_nodes: HashMap::new(),
            frame_usage: HashMap::new(),
            can: Arbiter::new(),
            can_busy: false,
            out_can_bytes: 0,
            out_node_bytes: HashMap::new(),
            can_source: HashMap::new(),
            out_ttp: VecDeque::new(),
            out_ttp_bytes: 0,
            sg_scheduled: HashMap::new(),
            report: SimReport {
                activations: params.activations,
                ..SimReport::default()
            },
            now: Time::ZERO,
        };
        sim.seed_events();
        Ok(sim)
    }

    /// Maps a nominal TTC-table instant onto the (possibly drifted) global
    /// timeline. Identity on the nominal path; with drift enabled the
    /// result is clamped to never fall before the current instant.
    fn ttc_time(&mut self, t: Time) -> Time {
        let Some(faults) = &self.faults else {
            return t;
        };
        if faults.params().ttc_drift_ppm == 0 {
            return t;
        }
        let (drifted, offset) = faults.drift(t, self.resync);
        if offset > self.report.faults.max_drift {
            self.report.faults.max_drift = offset;
        }
        drifted.max(self.now)
    }

    fn schedule(&mut self, at: Time, event: Event) {
        // Deliveries and completions fire before schedule-table starts at
        // the same instant: a table entry placed exactly at a worst-case
        // arrival bound is sound.
        let class = match event {
            Event::TtStart(_, _) => 1,
            _ => 0,
        };
        let key = self.seq;
        self.seq += 1;
        self.events.insert(key, event);
        self.queue.push(Reverse((at, class, key)));
    }

    fn seed_events(&mut self) {
        let app = &self.system.application;
        for graph in app.graphs() {
            for k in 0..self.params.activations {
                let at = graph.period().saturating_mul(k);
                self.schedule(at, Event::Activate(graph.id(), k));
            }
        }
    }

    fn run(mut self) -> SimReport {
        while let Some(Reverse((at, _, key))) = self.queue.pop() {
            self.now = at;
            // mcs-lint: allow(panic-policy) -- queue keys are pushed in lockstep with the event map; a miss is heap corruption, not input
            let event = self.events.remove(&key).expect("event registered");
            self.dispatch_event(event);
        }
        self.report
    }

    fn dispatch_event(&mut self, event: Event) {
        match event {
            Event::Activate(g, k) => self.activate(g, k),
            Event::TtStart(p, k) => self.tt_start(p, k),
            Event::Finish(node, generation) => self.finish(node, generation),
            Event::TtpArrival(mi) => self.ttp_arrival(mi),
            Event::IntoOutCan(mi) => self.copy_into_out_can(mi),
            Event::IntoOutTtp(mi) => self.append_to_out_ttp(mi),
            Event::CanFinish(mi) => self.can_finish(mi),
            Event::CanBusIdle => self.can_bus_idle(),
            Event::SgDrain(round) => self.sg_drain(round),
            Event::TtpDeliver(inst) => self.satisfy(inst),
        }
    }

    fn activation_time(&self, p: ProcessId, k: u64) -> Time {
        let graph = self.system.application.process(p).graph();
        self.system
            .application
            .graph(graph)
            .period()
            .saturating_mul(k)
    }

    fn activate(&mut self, g: GraphId, k: u64) {
        let app = &self.system.application;
        let procs: Vec<ProcessId> = app.graph(g).processes().to_vec();
        for p in procs {
            let preds = app.predecessors(p).len();
            self.pending.insert((p, k), preds);
            let exec = self.draw_exec(p, k);
            self.exec_remaining.insert((p, k), exec);
            if self.system.architecture.is_tt_cpu(app.process(p).node()) {
                let start = self
                    .outcome
                    .schedule
                    .start(p)
                    // mcs-lint: allow(panic-policy) -- the constructor rejects UnscheduledTtProcess before the run starts
                    .expect("validated: TT process scheduled");
                let at = self.ttc_time(start + self.activation_time(p, k));
                self.schedule(at, Event::TtStart(p, k));
            } else if preds == 0 {
                self.make_ready((p, k));
            }
        }
    }

    fn draw_exec(&mut self, p: ProcessId, k: u64) -> Time {
        let proc = self.system.application.process(p);
        let base = match self.params.execution {
            ExecutionModel::WorstCase => proc.wcet(),
            ExecutionModel::RandomUniform => {
                let lo = proc.bcet().ticks();
                let hi = proc.wcet().ticks();
                Time::from_ticks(self.rng.gen_range(lo..=hi))
            }
        };
        let Some(faults) = &mut self.faults else {
            return base;
        };
        let (exec, effect) = faults.inflate(p, k, base);
        match effect {
            OverloadEffect::Untouched => {}
            OverloadEffect::Started => {
                self.report.faults.overload_episodes += 1;
                self.report.faults.overload_inflated += 1;
                self.report
                    .trace
                    .push(TraceEvent::OverloadBurst(p, k, self.now));
            }
            OverloadEffect::Continued => self.report.faults.overload_inflated += 1,
        }
        exec
    }

    fn satisfy(&mut self, inst: Instance) {
        let count = self
            .pending
            .get_mut(&inst)
            // mcs-lint: allow(panic-policy) -- Activate(g, k) registers every instance before any of its data can be scheduled
            .expect("instance activated before data arrives");
        *count = count.saturating_sub(1);
        if *count == 0 {
            let node = self.system.application.process(inst.0).node();
            if self.system.architecture.is_et_cpu(node) {
                self.make_ready(inst);
            }
            // TT processes start at their table time regardless; the table
            // time is checked against readiness in `tt_start`.
        }
    }

    // ----- ET CPU dispatch ------------------------------------------------

    fn rank_of(&self, p: ProcessId) -> u64 {
        let prio = self
            .config
            .priorities
            .process(p)
            .unwrap_or(Priority::new(u32::MAX));
        u64::from(prio.level())
    }

    fn make_ready(&mut self, inst: Instance) {
        let node = self.system.application.process(inst.0).node();
        let rank = self.rank_of(inst.0);
        self.et_nodes
            .entry(node)
            .or_default()
            .ready
            .push((rank, inst));
        self.dispatch_cpu(node);
    }

    fn dispatch_cpu(&mut self, node: NodeId) {
        let now = self.now;
        let state = self.et_nodes.entry(node).or_default();
        // Find the highest-priority ready instance.
        let best = state
            .ready
            .iter()
            .enumerate()
            .min_by_key(|(_, &(rank, inst))| (rank, inst))
            .map(|(i, _)| i);
        let preempt = match (&state.running, best) {
            (Some(run), Some(i)) => state.ready[i].0 < run.rank,
            (None, Some(_)) => true,
            _ => false,
        };
        if !preempt {
            return;
        }
        // mcs-lint: allow(panic-policy) -- guarded by the non-empty ready check directly above
        let (rank, inst) = state.ready.remove(best.expect("checked"));
        // Suspend the current process, keeping its remaining time.
        if let Some(run) = state.running.take() {
            let consumed = now.saturating_sub(run.since);
            let left = run.remaining.saturating_sub(consumed);
            self.exec_remaining.insert(run.instance, left);
            state.ready.push((run.rank, run.instance));
        }
        let remaining = self.exec_remaining[&inst];
        state.generation += 1;
        let generation = state.generation;
        state.running = Some(Running {
            instance: inst,
            remaining,
            since: now,
            rank,
        });
        self.schedule(now + remaining, Event::Finish(node, generation));
    }

    fn finish(&mut self, node: NodeId, generation: u64) {
        let state = self.et_nodes.entry(node).or_default();
        if state.generation != generation {
            return; // preempted; stale completion
        }
        // mcs-lint: allow(panic-policy) -- Finish events carry the generation of the runner that scheduled them
        let run = state.running.take().expect("generation matches a runner");
        let inst = run.instance;
        self.complete(inst);
        self.dispatch_cpu(node);
    }

    // ----- TT CPUs --------------------------------------------------------

    fn tt_start(&mut self, p: ProcessId, k: u64) {
        if self.pending.get(&(p, k)).copied().unwrap_or(0) > 0 {
            self.report.table_violations += 1;
        }
        // Consecutive activations of an unschedulable table can overlap on
        // the CPU; a sound schedule never double-books a TT node.
        if self
            .et_nodes
            .get(&self.system.application.process(p).node())
            .is_some_and(|s| s.running.is_some())
        {
            self.report.table_violations += 1;
        }
        let exec = self.exec_remaining[&(p, k)];
        let finish = self.now + exec;
        // TT CPUs are exclusive by table construction; run to completion.
        let inst = (p, k);
        let node = self.system.application.process(p).node();
        let generation = {
            let state = self.et_nodes.entry(node).or_default();
            state.generation += 1;
            state.running = Some(Running {
                instance: inst,
                remaining: exec,
                since: self.now,
                rank: 0,
            });
            state.generation
        };
        self.schedule(finish, Event::Finish(node, generation));
    }

    // ----- completion and message emission ---------------------------------

    fn complete(&mut self, inst: Instance) {
        let (p, k) = inst;
        self.report
            .trace
            .push(TraceEvent::Completed(p, k, self.now));
        let app = &self.system.application;
        let rel = self.now.saturating_sub(self.activation_time(p, k));
        let entry = self
            .report
            .process_completion
            .entry(p)
            .or_insert(Time::ZERO);
        *entry = (*entry).max(rel);
        let graph = app.process(p).graph();
        if app.successors(p).is_empty() {
            let gr = self
                .report
                .graph_response
                .entry(graph)
                .or_insert(Time::ZERO);
            *gr = (*gr).max(rel);
        }

        let succs: Vec<(ProcessId, Option<MessageId>)> = app
            .successors(p)
            .iter()
            .map(|e| (e.dest, e.message))
            .collect();
        for (dest, message) in succs {
            match message {
                None => self.satisfy((dest, k)),
                Some(m) => self.emit(m, k),
            }
        }
    }

    fn emit(&mut self, m: MessageId, k: u64) {
        let route = self.system.route(m);
        match route {
            MessageRoute::TtcToTtc | MessageRoute::TtcToEtc => {
                self.send_ttp_frame((m, k));
            }
            MessageRoute::EtcToEtc | MessageRoute::EtcToTtc => {
                self.enqueue_can((m, k));
            }
        }
    }

    // ----- TTP bus ----------------------------------------------------------

    fn send_ttp_frame(&mut self, mi: MsgInstance) {
        let app = &self.system.application;
        let message = app.message(mi.0);
        // Replay the synthesized MEDL: the frame of activation k leaves at
        // its placement shifted by k periods (the per-cycle MEDL the
        // synthesis would emit). Fall back to dynamic placement only when
        // the sender finished past its slot (unschedulable tables).
        if let Some(placement) = self.outcome.schedule.frame(mi.0) {
            let shift = self.activation_time(message.source(), mi.1);
            let depart = self.ttc_time(placement.slot_start + shift);
            if self.now <= depart {
                let arrival = self.ttc_time(placement.arrival + shift);
                self.schedule(arrival, Event::TtpArrival(mi));
                return;
            }
        }
        let node = app.process(message.source()).node();
        let slot = self
            .rounds
            .slot_of_node(node)
            // mcs-lint: allow(panic-policy) -- the constructor rejects MissingSenderSlot before the run starts
            .expect("validated: TTP sender has a slot");
        let capacity = self.rounds.slot_capacity(slot);
        let size = message.size_bytes();
        let mut occ = self.rounds.next_occurrence(slot, self.now);
        loop {
            let used = self.frame_usage.entry((slot.raw(), occ.round)).or_insert(0);
            if *used + size <= capacity {
                *used += size;
                let at = self.ttc_time(occ.end);
                self.schedule(at, Event::TtpArrival(mi));
                return;
            }
            occ = self.rounds.advance(occ, 1);
        }
    }

    fn ttp_arrival(&mut self, mi: MsgInstance) {
        let (m, k) = mi;
        self.report
            .trace
            .push(TraceEvent::FrameArrived(m, k, self.now));
        let route = self.system.route(m);
        let r_t = self.system.gateway.transfer_response();
        match route {
            MessageRoute::TtcToTtc => {
                let dest = self.system.application.message(m).dest();
                self.satisfy((dest, k));
            }
            MessageRoute::TtcToEtc => {
                // The gateway transfer process copies the frame into
                // Out_CAN within its response time.
                self.schedule(self.now + r_t, Event::IntoOutCan(mi));
            }
            // mcs-lint: allow(panic-policy) -- TtpArrival events are scheduled only for TTC-sourced routes
            _ => unreachable!("only TTC-sent frames arrive via the MEDL"),
        }
    }

    // ----- CAN bus ----------------------------------------------------------

    fn message_priority(&self, m: MessageId) -> Priority {
        self.config
            .priorities
            .message(m)
            // mcs-lint: allow(panic-policy) -- the constructor rejects UnprioritizedMessage before the run starts
            .expect("validated: CAN messages have priorities")
    }

    fn copy_into_out_can(&mut self, mi: MsgInstance) {
        let size = u64::from(self.system.application.message(mi.0).size_bytes());
        self.out_can_bytes += size;
        self.report.max_out_can = self.report.max_out_can.max(self.out_can_bytes);
        self.can_source.insert(mi, None);
        self.can.enqueue(self.message_priority(mi.0), mi);
        self.try_start_can();
    }

    fn enqueue_can(&mut self, mi: MsgInstance) {
        let app = &self.system.application;
        let node = app.process(app.message(mi.0).source()).node();
        let size = u64::from(app.message(mi.0).size_bytes());
        let bytes = self.out_node_bytes.entry(node).or_insert(0);
        *bytes += size;
        let peak = self.report.max_out_node.entry(node).or_insert(0);
        *peak = (*peak).max(*bytes);
        self.can_source.insert(mi, Some(node));
        self.can.enqueue(self.message_priority(mi.0), mi);
        self.try_start_can();
    }

    fn try_start_can(&mut self) {
        if self.can_busy {
            return;
        }
        let params = self.system.architecture.can_params();
        let app = &self.system.application;
        if let Some(tx) = self.can.try_start(self.now, |mi| {
            mcs_can::message_time(app.message(mi.0).size_bytes(), &params)
        }) {
            self.can_busy = true;
            // The frame leaves its output queue when transmission starts.
            let size = u64::from(app.message(tx.payload.0).size_bytes());
            match self.can_source.remove(&tx.payload) {
                Some(Some(node)) => {
                    let bytes = self.out_node_bytes.entry(node).or_insert(0);
                    *bytes = bytes.saturating_sub(size);
                }
                Some(None) => {
                    self.out_can_bytes = self.out_can_bytes.saturating_sub(size);
                }
                None => {}
            }
            self.schedule(tx.finish, Event::CanFinish(tx.payload));
        }
    }

    fn can_finish(&mut self, mi: MsgInstance) {
        let verdict = match &mut self.faults {
            Some(faults) => faults.judge_can(mi),
            None => CanVerdict::Deliver,
        };
        match verdict {
            CanVerdict::Deliver => {}
            CanVerdict::Retransmit { retry } => {
                // The receivers flag the corruption with an error frame; the
                // bus stays busy while it is signalled, then the sender
                // automatically re-enters arbitration.
                self.report.faults.can_injected += 1;
                self.report.faults.can_retransmitted += 1;
                self.report.faults.loss_log.push(CanLoss {
                    message: mi.0,
                    activation: mi.1,
                    at: self.now,
                    retry,
                    dropped: false,
                });
                self.report
                    .trace
                    .push(TraceEvent::CanCorrupted(mi.0, mi.1, self.now));
                self.can.enqueue(self.message_priority(mi.0), mi);
                self.schedule(self.now + self.error_frame, Event::CanBusIdle);
                return;
            }
            CanVerdict::Drop { retry } => {
                // Retry budget exhausted: the frame is lost for good. Its
                // destination never fires — a degradation the report
                // accounts for rather than a soundness finding.
                self.report.faults.can_injected += 1;
                self.report.faults.can_dropped += 1;
                self.report.faults.loss_log.push(CanLoss {
                    message: mi.0,
                    activation: mi.1,
                    at: self.now,
                    retry,
                    dropped: true,
                });
                self.report
                    .trace
                    .push(TraceEvent::CanDropped(mi.0, mi.1, self.now));
                self.schedule(self.now + self.error_frame, Event::CanBusIdle);
                return;
            }
        }
        self.can_busy = false;
        let (m, k) = mi;
        self.report
            .trace
            .push(TraceEvent::CanTransmitted(m, k, self.now));
        let route = self.system.route(m);
        let r_t = self.system.gateway.transfer_response();
        match route {
            // Intra-ETC traffic and the CAN leg of TTC→ETC traffic both end
            // at an ET destination.
            MessageRoute::EtcToEtc | MessageRoute::TtcToEtc => {
                let dest = self.system.application.message(m).dest();
                self.satisfy((dest, k));
            }
            MessageRoute::EtcToTtc => {
                self.schedule(self.now + r_t, Event::IntoOutTtp(mi));
            }
            // mcs-lint: allow(panic-policy) -- CAN enqueue sites are reached only by CAN-legged routes
            MessageRoute::TtcToTtc => unreachable!("TTC→TTC frames never touch CAN"),
        }
        self.try_start_can();
    }

    /// The error frame after a corrupted transmission has been signalled;
    /// arbitration restarts (retransmissions compete with fresh frames).
    fn can_bus_idle(&mut self) {
        self.can_busy = false;
        self.try_start_can();
    }

    // ----- gateway Out_TTP FIFO ----------------------------------------------

    fn append_to_out_ttp(&mut self, mi: MsgInstance) {
        self.report
            .trace
            .push(TraceEvent::FifoEnqueued(mi.0, mi.1, self.now));
        let size = u64::from(self.system.application.message(mi.0).size_bytes());
        self.out_ttp.push_back(mi);
        self.out_ttp_bytes += size;
        self.report.max_out_ttp = self.report.max_out_ttp.max(self.out_ttp_bytes);
        self.schedule_sg_drain();
    }

    fn schedule_sg_drain(&mut self) {
        let occ = self.rounds.next_occurrence(self.gw_slot, self.now);
        if self.sg_scheduled.insert(occ.round, ()).is_none() {
            let at = self.ttc_time(occ.start);
            self.schedule(at, Event::SgDrain(occ.round));
        }
    }

    fn sg_drain(&mut self, round: u64) {
        let occ = self.rounds.occurrence(self.gw_slot, round);
        debug_assert!(
            self.faults.is_some() || occ.start == self.now,
            "drain fires at the slot start"
        );
        let mut used = 0u32;
        let mut drained = Vec::new();
        while let Some(&mi) = self.out_ttp.front() {
            let size = self.system.application.message(mi.0).size_bytes();
            if used + size > self.gw_capacity {
                break;
            }
            used += size;
            self.out_ttp.pop_front();
            self.out_ttp_bytes -= u64::from(size);
            drained.push(mi);
        }
        let arrive = self.ttc_time(occ.end);
        for mi in drained {
            self.report
                .trace
                .push(TraceEvent::FifoDelivered(mi.0, mi.1, arrive));
            let dest = self.system.application.message(mi.0).dest();
            let inst = (dest, mi.1);
            // Deliver at the slot end.
            self.schedule(arrive, Event::TtpDeliver(inst));
        }
        if !self.out_ttp.is_empty() {
            let next = self.rounds.advance(occ, 1);
            if self.sg_scheduled.insert(next.round, ()).is_none() {
                let at = self.ttc_time(next.start);
                self.schedule(at, Event::SgDrain(next.round));
            }
        }
    }
}
