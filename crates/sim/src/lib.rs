//! # mcs-sim
//!
//! Discrete-event simulator of the two-cluster system: schedule tables and
//! TDMA frames on the TTC, fixed-priority preemptive dispatch and CAN
//! arbitration on the ETC, and the gateway's `Out_CAN`/`Out_TTP` queues.
//!
//! The simulator is the validation substrate of this reproduction (the
//! authors had a physical testbed): running a synthesized configuration and
//! checking [`SimReport::soundness_violations`] confirms the worst-case
//! analysis of `mcs-core` over-approximates every observable response time
//! and queue occupancy.
//!
//! Beyond the fault-free nominal path, [`simulate_with_faults`] perturbs
//! the simulated hardware with a seeded, fully deterministic [`FaultPlan`]
//! — CAN frame corruption with protocol-faithful retransmission, bounded
//! per-cluster clock drift, and sporadic overload bursts — and
//! [`SimReport::classify_findings`] separates hard analysis bugs
//! ([`SoundnessFinding::NominalViolation`]) from expected degradation under
//! fault. See [`fault`] for the model and its determinism contract.
//!
//! # Examples
//!
//! ```
//! use mcs_core::{multi_cluster_scheduling, AnalysisParams};
//! use mcs_gen::figure4;
//! use mcs_sim::{simulate, SimParams};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let fig = figure4(mcs_model::Time::from_millis(240));
//! let outcome = multi_cluster_scheduling(&fig.system, &fig.config_b, &AnalysisParams::default())?;
//! let report = simulate(&fig.system, &fig.config_b, &outcome, &SimParams::default())?;
//! assert!(report.soundness_violations(&fig.system, &outcome).is_empty());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
pub mod fault;
mod report;
mod trace;

pub use engine::{simulate, simulate_with_faults, ExecutionModel, SimError, SimParams};
pub use fault::{CanLoss, FaultParams, FaultPlan, FaultStats};
pub use report::{SimReport, SoundnessFinding};
pub use trace::{render_trace, TraceEvent};
