//! Deterministic fault injection for the discrete-event simulator.
//!
//! The analysis of `mcs-core` bounds the *fault-free* behaviour of the
//! two-cluster system; this module perturbs the simulated hardware so that
//! soundness can be probed under realistic degradation. A [`FaultPlan`] is a
//! pure value — [`FaultParams`] plus an explicit seed — that the engine
//! consults at three dispatch points:
//!
//! - **CAN frame corruption/loss.** When a transmission completes, a seeded
//!   coin decides whether the frame was corrupted on the wire. The model is
//!   protocol-faithful: the receivers signal an error frame (the bus stays
//!   busy for ~31 bit times), the sender automatically re-enters arbitration,
//!   and after a bounded number of retries the frame is dropped and logged.
//!   Every corrupted frame is accounted — retransmitted or dropped, never
//!   silently vanished (see the `frame_conservation` proptest).
//! - **Per-cluster clock drift.** The TTC's time base (schedule tables, MEDL
//!   slots, the gateway's `S_G` drain) skews by a bounded ppm factor against
//!   the simulator's global (ETC-local) clock. Clocks resynchronize at each
//!   TDMA round boundary — the gateway's sync point — so the drift offset is
//!   bounded by `round_duration × ppm / 10⁶` and never accumulates.
//! - **Sporadic overload bursts.** A seeded coin starts an episode during
//!   which a process's drawn execution times are inflated by a configurable
//!   factor; episode lengths follow a bounded geometric distribution around
//!   a configurable mean.
//!
//! # Determinism
//!
//! The fault layer draws from its **own** RNG stream (seeded from
//! [`FaultPlan::seed`]), never from the execution-time stream, so:
//!
//! - `simulate_with_faults(.., None)` is bit-identical to
//!   [`crate::simulate`], and so is a plan whose parameters are
//!   [`FaultParams::NOMINAL`];
//! - identical `(FaultParams, seed)` pairs reproduce byte-identical
//!   [`crate::SimReport`]s (same trace, same counters, same JSON line) —
//!   any campaign finding replays exactly from its recorded cell.

use std::collections::HashMap;

use rand::distributions::{Bernoulli, Distribution, Geometric};
use rand::rngs::StdRng;
use rand::SeedableRng;

use mcs_model::{MessageId, ProcessId, Time};

/// Upper bound on a single overload episode, in activations. Keeps a
/// pathological geometric sample from pinning a process in overload for the
/// entire campaign cell.
const MAX_BURST: u64 = 10_000;

/// Fault-injection parameters (all rates are deterministic once paired with
/// a seed in a [`FaultPlan`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FaultParams {
    /// Per-transmission CAN corruption probability, in permille (0–1000).
    pub can_loss_permille: u32,
    /// Automatic retransmissions before a corrupted frame is dropped.
    pub can_max_retries: u32,
    /// Signed TTC clock skew against the ETC clock, in parts per million.
    pub ttc_drift_ppm: i32,
    /// Per-activation probability that a process enters an overload
    /// episode, in permille (0–1000).
    pub overload_permille: u32,
    /// Execution-time inflation during an overload episode, in percent
    /// (100 = no inflation, 200 = doubled).
    pub overload_factor_percent: u32,
    /// Mean length of an overload episode, in activations (≥ 1).
    pub overload_mean_burst: u32,
}

impl FaultParams {
    /// No faults at all; `Some(&FaultPlan::new(NOMINAL, s))` is
    /// bit-identical to the `None` path.
    pub const NOMINAL: FaultParams = FaultParams {
        can_loss_permille: 0,
        can_max_retries: 0,
        ttc_drift_ppm: 0,
        overload_permille: 0,
        overload_factor_percent: 100,
        overload_mean_burst: 1,
    };

    /// A noisy CAN bus: 5% frame corruption, 3 automatic retries.
    pub const LOSSY_CAN: FaultParams = FaultParams {
        can_loss_permille: 50,
        can_max_retries: 3,
        ..FaultParams::NOMINAL
    };

    /// Drifting TTC oscillator: +250 ppm against the ETC clock.
    pub const DRIFTING_CLOCKS: FaultParams = FaultParams {
        ttc_drift_ppm: 250,
        ..FaultParams::NOMINAL
    };

    /// Sporadic CPU overload: 4% of activations start an episode that
    /// doubles execution times for ~3 activations.
    pub const OVERLOAD_BURSTS: FaultParams = FaultParams {
        overload_permille: 40,
        overload_factor_percent: 200,
        overload_mean_burst: 3,
        ..FaultParams::NOMINAL
    };

    /// Everything at once: lossy bus, drifting clocks, overload bursts.
    pub const HARSH: FaultParams = FaultParams {
        can_loss_permille: 50,
        can_max_retries: 3,
        ttc_drift_ppm: 250,
        overload_permille: 40,
        overload_factor_percent: 200,
        overload_mean_burst: 3,
    };

    /// Whether this parameter set can perturb a run at all.
    pub fn is_nominal(&self) -> bool {
        self.can_loss_permille == 0
            && self.ttc_drift_ppm == 0
            && (self.overload_permille == 0 || self.overload_factor_percent <= 100)
    }
}

impl Default for FaultParams {
    fn default() -> Self {
        FaultParams::NOMINAL
    }
}

/// A seeded, immutable fault-injection specification.
///
/// The plan itself carries no mutable state: the engine derives its own
/// internal fault state (RNG stream, retry counters, burst deadlines) from
/// it at the start of a run, so one plan can drive any number of
/// (identical) simulations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    params: FaultParams,
    seed: u64,
}

impl FaultPlan {
    /// Builds a plan from parameters and an explicit seed.
    pub fn new(params: FaultParams, seed: u64) -> Self {
        FaultPlan { params, seed }
    }

    /// The fault parameters.
    pub fn params(&self) -> &FaultParams {
        &self.params
    }

    /// The seed of the fault RNG stream.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

/// Verdict on a CAN transmission that just completed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum CanVerdict {
    /// The frame arrived intact.
    Deliver,
    /// The frame was corrupted; the sender retransmits (attempt `retry`).
    Retransmit {
        /// 1-based corruption count for this frame instance.
        retry: u32,
    },
    /// The frame was corrupted past the retry budget and is dropped.
    Drop {
        /// Total corruption count for this frame instance.
        retry: u32,
    },
}

/// Effect of the overload model on one drawn execution time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum OverloadEffect {
    /// The draw was left untouched.
    Untouched,
    /// A new overload episode started with this draw.
    Started,
    /// The draw fell inside an already-running episode.
    Continued,
}

/// Mutable per-run fault state derived from a [`FaultPlan`].
pub(crate) struct FaultState {
    params: FaultParams,
    rng: StdRng,
    loss: Option<Bernoulli>,
    overload: Option<Bernoulli>,
    burst: Option<Geometric>,
    retries: HashMap<(MessageId, u64), u32>,
    overload_until: HashMap<ProcessId, u64>,
}

impl FaultState {
    pub(crate) fn new(plan: &FaultPlan) -> Self {
        let params = *plan.params();
        let ratio = |permille: u32| {
            (permille > 0)
                // mcs-lint: allow(panic-policy) -- the numerator is clamped to the denominator, so the ratio is always valid
                .then(|| Bernoulli::from_ratio(permille.min(1000), 1000).expect("ratio <= 1"))
        };
        let burst = (params.overload_mean_burst > 1).then(|| {
            // mcs-lint: allow(panic-policy) -- gated on overload_mean_burst > 1, so p is always in (0, 0.5]
            Geometric::new(1.0 / f64::from(params.overload_mean_burst)).expect("p in (0,1]")
        });
        FaultState {
            params,
            rng: StdRng::seed_from_u64(plan.seed()),
            loss: ratio(params.can_loss_permille),
            overload: ratio(params.overload_permille),
            burst,
            retries: HashMap::new(),
            overload_until: HashMap::new(),
        }
    }

    pub(crate) fn params(&self) -> &FaultParams {
        &self.params
    }

    /// Judges a completed CAN transmission of frame instance `frame`.
    pub(crate) fn judge_can(&mut self, frame: (MessageId, u64)) -> CanVerdict {
        let Some(loss) = &self.loss else {
            return CanVerdict::Deliver;
        };
        if !loss.sample(&mut self.rng) {
            self.retries.remove(&frame);
            return CanVerdict::Deliver;
        }
        let count = self.retries.entry(frame).or_insert(0);
        *count += 1;
        let count = *count;
        if count <= self.params.can_max_retries {
            CanVerdict::Retransmit { retry: count }
        } else {
            self.retries.remove(&frame);
            CanVerdict::Drop { retry: count }
        }
    }

    /// Applies the overload model to one drawn execution time of
    /// `(process, activation)`.
    pub(crate) fn inflate(
        &mut self,
        process: ProcessId,
        activation: u64,
        exec: Time,
    ) -> (Time, OverloadEffect) {
        let Some(overload) = &self.overload else {
            return (exec, OverloadEffect::Untouched);
        };
        let factor = u128::from(self.params.overload_factor_percent.max(100));
        let apply = |t: Time| {
            let inflated = (u128::from(t.ticks()) * factor / 100).min(u128::from(u64::MAX));
            Time::from_ticks(inflated as u64)
        };
        if activation < self.overload_until.get(&process).copied().unwrap_or(0) {
            return (apply(exec), OverloadEffect::Continued);
        }
        if overload.sample(&mut self.rng) {
            let extra = self
                .burst
                .as_ref()
                .map(|g| g.sample(&mut self.rng))
                .unwrap_or(0)
                .min(MAX_BURST);
            self.overload_until
                .insert(process, activation.saturating_add(1 + extra));
            (apply(exec), OverloadEffect::Started)
        } else {
            (exec, OverloadEffect::Untouched)
        }
    }

    /// Maps a nominal TTC-table instant onto the drifted global timeline.
    ///
    /// Returns the drifted instant and the absolute drift offset applied.
    /// The skew resets at every TDMA round boundary (`resync`), modelling
    /// the gateway's clock-synchronization point, so the offset is bounded
    /// by `resync × |ppm| / 10⁶`.
    pub(crate) fn drift(&self, t: Time, resync: Time) -> (Time, Time) {
        let ppm = self.params.ttc_drift_ppm;
        if ppm == 0 || resync.is_zero() {
            return (t, Time::ZERO);
        }
        let phase = i128::from(t.ticks() % resync.ticks());
        let delta = phase * i128::from(ppm) / 1_000_000;
        let drifted = (i128::from(t.ticks()) + delta).max(0);
        (
            Time::from_ticks(drifted.min(i128::from(u64::MAX)) as u64),
            Time::from_ticks(delta.unsigned_abs().min(u128::from(u64::MAX)) as u64),
        )
    }
}

/// One dropped-or-retransmitted CAN frame, for the per-frame loss log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CanLoss {
    /// The corrupted message.
    pub message: MessageId,
    /// Its activation index.
    pub activation: u64,
    /// When the corrupted transmission completed.
    pub at: Time,
    /// 1-based corruption count for this frame instance.
    pub retry: u32,
    /// `true` when the frame was dropped (retry budget exhausted) rather
    /// than retransmitted.
    pub dropped: bool,
}

/// Fault accounting of one simulation run — all zero on the nominal path.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// CAN transmissions judged corrupted.
    pub can_injected: u64,
    /// Corrupted frames that re-entered arbitration.
    pub can_retransmitted: u64,
    /// Corrupted frames dropped after exhausting the retry budget.
    pub can_dropped: u64,
    /// Overload episodes started.
    pub overload_episodes: u64,
    /// Execution-time draws inflated by an overload episode.
    pub overload_inflated: u64,
    /// Largest clock-drift offset applied to a TTC event.
    pub max_drift: Time,
    /// Per-frame log of every corruption (retransmissions and drops).
    pub loss_log: Vec<CanLoss>,
}

impl FaultStats {
    /// Total faults injected (CAN corruptions + overload episodes).
    pub fn injected_total(&self) -> u64 {
        self.can_injected + self.overload_episodes
    }

    /// Whether the run was perturbed at all (faults injected or clocks
    /// drifted). An unperturbed run must satisfy the analytic bounds
    /// exactly like the nominal path.
    pub fn perturbed(&self) -> bool {
        self.injected_total() > 0 || !self.max_drift.is_zero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_classify_as_expected() {
        assert!(FaultParams::NOMINAL.is_nominal());
        assert!(FaultParams::default().is_nominal());
        for preset in [
            FaultParams::LOSSY_CAN,
            FaultParams::DRIFTING_CLOCKS,
            FaultParams::OVERLOAD_BURSTS,
            FaultParams::HARSH,
        ] {
            assert!(!preset.is_nominal(), "{preset:?}");
        }
    }

    #[test]
    fn nominal_state_never_draws() {
        let plan = FaultPlan::new(FaultParams::NOMINAL, 99);
        let mut state = FaultState::new(&plan);
        let m = (MessageId::new(0), 0);
        assert_eq!(state.judge_can(m), CanVerdict::Deliver);
        let t = Time::from_millis(5);
        assert_eq!(
            state.inflate(ProcessId::new(0), 0, t),
            (t, OverloadEffect::Untouched)
        );
        assert_eq!(state.drift(t, Time::from_millis(40)), (t, Time::ZERO));
    }

    #[test]
    fn full_loss_retransmits_then_drops() {
        let params = FaultParams {
            can_loss_permille: 1000,
            can_max_retries: 2,
            ..FaultParams::NOMINAL
        };
        let mut state = FaultState::new(&FaultPlan::new(params, 0));
        let m = (MessageId::new(3), 1);
        assert_eq!(state.judge_can(m), CanVerdict::Retransmit { retry: 1 });
        assert_eq!(state.judge_can(m), CanVerdict::Retransmit { retry: 2 });
        assert_eq!(state.judge_can(m), CanVerdict::Drop { retry: 3 });
        // The retry counter resets after a drop.
        assert_eq!(state.judge_can(m), CanVerdict::Retransmit { retry: 1 });
    }

    #[test]
    fn drift_is_bounded_and_resyncs() {
        let params = FaultParams {
            ttc_drift_ppm: 500,
            ..FaultParams::NOMINAL
        };
        let state = FaultState::new(&FaultPlan::new(params, 0));
        let resync = Time::from_millis(40);
        let bound = Time::from_ticks(resync.ticks() * 500 / 1_000_000);
        for t in (0..500).map(|i| Time::from_micros(i * 317)) {
            let (_, offset) = state.drift(t, resync);
            assert!(offset <= bound, "offset {offset} past bound {bound} at {t}");
        }
        // At a round boundary the clocks are back in sync.
        assert_eq!(state.drift(resync, resync), (resync, Time::ZERO));
        // Negative drift pulls events earlier.
        let neg = FaultState::new(&FaultPlan::new(
            FaultParams {
                ttc_drift_ppm: -500,
                ..FaultParams::NOMINAL
            },
            0,
        ));
        let t = Time::from_millis(20);
        let (drifted, offset) = neg.drift(t, resync);
        assert!(drifted < t);
        assert_eq!(t, drifted + offset);
    }

    #[test]
    fn overload_episode_spans_consecutive_activations() {
        let params = FaultParams {
            overload_permille: 1000,
            overload_factor_percent: 300,
            overload_mean_burst: 4,
            ..FaultParams::NOMINAL
        };
        let mut state = FaultState::new(&FaultPlan::new(params, 7));
        let p = ProcessId::new(0);
        let t = Time::from_millis(10);
        let (inflated, effect) = state.inflate(p, 0, t);
        assert_eq!(effect, OverloadEffect::Started);
        assert_eq!(inflated, Time::from_millis(30));
        // The next activation continues the episode (minimum length 1 means
        // at least the starting activation is covered; with permille 1000 a
        // non-covered activation immediately starts a fresh episode).
        let (_, effect) = state.inflate(p, 1, t);
        assert!(matches!(
            effect,
            OverloadEffect::Started | OverloadEffect::Continued
        ));
    }
}
