//! Behavioural tests of the simulator itself: CAN arbitration order, FIFO
//! drain discipline, determinism, and multi-activation steady state.

use mcs_core::{multi_cluster_scheduling, AnalysisParams};
use mcs_gen::{figure4, generate, GeneratorParams};
use mcs_model::Time;
use mcs_opt::{hopa_priorities, straightforward_config};
use mcs_sim::{simulate, ExecutionModel, SimParams};

#[test]
fn simulation_is_deterministic() {
    let fig = figure4(Time::from_millis(240));
    let outcome = multi_cluster_scheduling(&fig.system, &fig.config_b, &AnalysisParams::default())
        .expect("analyzable");
    let run = |seed| {
        simulate(
            &fig.system,
            &fig.config_b,
            &outcome,
            &SimParams {
                activations: 3,
                execution: ExecutionModel::RandomUniform,
                seed,
            },
        )
        .expect("simulable")
    };
    let a = run(7);
    let b = run(7);
    assert_eq!(a.graph_response, b.graph_response);
    assert_eq!(a.process_completion, b.process_completion);
    assert_eq!(a.max_out_can, b.max_out_can);
    let c = run(8);
    // A different seed is allowed to differ (and usually does in starts),
    // but must still be bounded — checked elsewhere; here we only ensure it
    // runs.
    assert_eq!(c.activations, 3);
}

#[test]
fn worst_case_execution_reaches_the_figure4_trace() {
    // With WCET execution and configuration (b), the simulated response
    // must land exactly on the deterministic trace value: P1 (30) -> frame
    // at 60 -> CAN -> P2/P3 -> m3 -> gateway slot -> P4.
    let fig = figure4(Time::from_millis(240));
    let outcome = multi_cluster_scheduling(&fig.system, &fig.config_b, &AnalysisParams::default())
        .expect("analyzable");
    let report =
        simulate(&fig.system, &fig.config_b, &outcome, &SimParams::default()).expect("simulable");
    let g = mcs_model::GraphId::new(0);
    let observed = report.graph_response[&g];
    // The analysis bound is 230 ms; the actual trace completes earlier but
    // within one TDMA round of the bound on this contention-free example.
    assert!(observed <= Time::from_millis(230));
    assert!(observed >= Time::from_millis(150));
    assert_eq!(report.table_violations, 0);
}

#[test]
fn queue_occupancy_tracks_gateway_traffic() {
    let fig = figure4(Time::from_millis(240));
    let outcome = multi_cluster_scheduling(&fig.system, &fig.config_b, &AnalysisParams::default())
        .expect("analyzable");
    let report =
        simulate(&fig.system, &fig.config_b, &outcome, &SimParams::default()).expect("simulable");
    // m1 and m2 (4 B each) transit Out_CAN; m3 transits Out_TTP.
    assert!(report.max_out_can >= 4);
    assert!(report.max_out_can <= 8);
    assert!(report.max_out_ttp >= 4);
    // N2's output queue held m3 at some point.
    assert_eq!(
        report.max_out_node.get(&mcs_model::NodeId::new(1)),
        Some(&4)
    );
}

#[test]
fn longer_runs_do_not_grow_observed_responses_unboundedly() {
    // A schedulable system in steady state: the worst observation over 8
    // activations equals the worst over 2 (no drift / backlog build-up).
    let system = generate(&GeneratorParams::paper_sized(2, 5));
    let mut config = straightforward_config(&system);
    config.priorities = hopa_priorities(&system, &config.tdma);
    let analysis = AnalysisParams::default();
    let outcome = multi_cluster_scheduling(&system, &config, &analysis).expect("analyzable");
    let short = simulate(
        &system,
        &config,
        &outcome,
        &SimParams {
            activations: 2,
            ..SimParams::default()
        },
    )
    .expect("simulable");
    let long = simulate(
        &system,
        &config,
        &outcome,
        &SimParams {
            activations: 8,
            ..SimParams::default()
        },
    )
    .expect("simulable");
    for (g, &r_long) in &long.graph_response {
        let r_short = short.graph_response[g];
        assert_eq!(
            r_long, r_short,
            "steady-state drift on graph {g} ({r_short} -> {r_long})"
        );
    }
}

#[test]
fn trace_captures_the_gateway_path_in_order() {
    let fig = figure4(Time::from_millis(240));
    let outcome = multi_cluster_scheduling(&fig.system, &fig.config_b, &AnalysisParams::default())
        .expect("analyzable");
    let report = simulate(
        &fig.system,
        &fig.config_b,
        &outcome,
        &SimParams {
            activations: 1,
            ..SimParams::default()
        },
    )
    .expect("simulable");
    use mcs_sim::TraceEvent;
    let m3 = mcs_model::MessageId::new(2);
    let find = |pred: &dyn Fn(&TraceEvent) -> bool| {
        report
            .trace
            .iter()
            .find(|e| pred(e))
            .copied()
            .expect("event present")
    };
    // m3's journey: CAN transmission -> Out_TTP -> gateway slot delivery.
    let can = find(&|e| matches!(e, TraceEvent::CanTransmitted(m, 0, _) if *m == m3));
    let fifo_in = find(&|e| matches!(e, TraceEvent::FifoEnqueued(m, 0, _) if *m == m3));
    let fifo_out = find(&|e| matches!(e, TraceEvent::FifoDelivered(m, 0, _) if *m == m3));
    assert!(can.at() <= fifo_in.at());
    assert!(fifo_in.at() < fifo_out.at());
    // Rendering mentions the chain.
    let text = mcs_sim::render_trace(&fig.system, &report.trace);
    assert!(text.contains("m2#0 -> Out_TTP"));
    assert!(text.contains("delivered via S_G"));
    assert!(text.contains("P4#0 completed"));
}
