//! Properties of the fault-injection layer: the `None` path is
//! bit-identical to the plain simulator, identical `(FaultParams, seed)`
//! pairs reproduce byte-identical reports, and every corrupted CAN frame is
//! conserved — retransmitted or accounted dropped, never silently vanished.

use proptest::prelude::*;

use mcs_core::{multi_cluster_scheduling, AnalysisOutcome, AnalysisParams};
use mcs_gen::{figure4, generate, GeneratorParams};
use mcs_model::{System, SystemConfig, Time};
use mcs_opt::{hopa_priorities, straightforward_config};
use mcs_sim::{
    simulate, simulate_with_faults, ExecutionModel, FaultParams, FaultPlan, SimParams, SimReport,
    TraceEvent,
};

fn instance(seed: u64) -> (System, SystemConfig, AnalysisOutcome) {
    let mut p = GeneratorParams::paper_sized(2, seed);
    p.processes_per_node = 5 + (seed % 4) as usize;
    p.graphs = 2 + (seed % 3) as usize;
    p.inter_cluster_messages = Some(1 + (seed % 4) as usize);
    let system = generate(&p);
    let mut config = straightforward_config(&system);
    config.priorities = hopa_priorities(&system, &config.tdma);
    let outcome =
        multi_cluster_scheduling(&system, &config, &AnalysisParams::default()).expect("analyzable");
    (system, config, outcome)
}

fn sim_params(sim_seed: u64) -> SimParams {
    SimParams {
        activations: 3,
        execution: ExecutionModel::RandomUniform,
        seed: sim_seed,
    }
}

fn assert_reports_identical(a: &SimReport, b: &SimReport) {
    assert_eq!(a.process_completion, b.process_completion);
    assert_eq!(a.graph_response, b.graph_response);
    assert_eq!(a.max_out_can, b.max_out_can);
    assert_eq!(a.max_out_ttp, b.max_out_ttp);
    assert_eq!(a.max_out_node, b.max_out_node);
    assert_eq!(a.table_violations, b.table_violations);
    assert_eq!(a.trace, b.trace);
    assert_eq!(a.faults, b.faults);
    assert_eq!(a.digest(), b.digest());
    assert_eq!(a.json_line(), b.json_line());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `simulate_with_faults(.., None)` is bit-identical to `simulate`.
    #[test]
    fn none_path_is_bit_identical(seed in 0u64..200, sim_seed in 0u64..8) {
        let (system, config, outcome) = instance(seed);
        let params = sim_params(sim_seed);
        let plain = simulate(&system, &config, &outcome, &params).expect("simulable");
        let none = simulate_with_faults(&system, &config, &outcome, &params, None)
            .expect("simulable");
        assert_reports_identical(&plain, &none);
    }

    /// A plan with `FaultParams::NOMINAL` never perturbs: still
    /// bit-identical to the plain path, regardless of the fault seed.
    #[test]
    fn nominal_plan_is_bit_identical(seed in 0u64..200, fault_seed in 0u64..1_000_000) {
        let (system, config, outcome) = instance(seed);
        let params = sim_params(1);
        let plain = simulate(&system, &config, &outcome, &params).expect("simulable");
        let plan = FaultPlan::new(FaultParams::NOMINAL, fault_seed);
        let faulty = simulate_with_faults(&system, &config, &outcome, &params, Some(&plan))
            .expect("simulable");
        assert_reports_identical(&plain, &faulty);
        assert!(!faulty.faults.perturbed());
    }

    /// Identical `(FaultParams, seed)` reproduce byte-identical reports.
    #[test]
    fn identical_plan_reproduces_byte_identical_report(
        seed in 0u64..200, sim_seed in 0u64..4, fault_seed in 0u64..1_000_000
    ) {
        let (system, config, outcome) = instance(seed);
        let params = sim_params(sim_seed);
        let plan = FaultPlan::new(FaultParams::HARSH, fault_seed);
        let a = simulate_with_faults(&system, &config, &outcome, &params, Some(&plan))
            .expect("simulable");
        let b = simulate_with_faults(&system, &config, &outcome, &params, Some(&plan))
            .expect("simulable");
        assert_reports_identical(&a, &b);
    }

    /// Frame conservation: every injected CAN corruption is either
    /// retransmitted or accounted as dropped, and the loss log carries one
    /// entry per corruption.
    #[test]
    fn frame_conservation(seed in 0u64..200, fault_seed in 0u64..1_000_000) {
        let (system, config, outcome) = instance(seed);
        let plan = FaultPlan::new(
            FaultParams {
                can_loss_permille: 300,
                can_max_retries: 2,
                ..FaultParams::NOMINAL
            },
            fault_seed,
        );
        let report = simulate_with_faults(&system, &config, &outcome, &sim_params(2), Some(&plan))
            .expect("simulable");
        let f = &report.faults;
        prop_assert_eq!(f.can_injected, f.can_retransmitted + f.can_dropped);
        prop_assert_eq!(f.loss_log.len() as u64, f.can_injected);
        let dropped = f.loss_log.iter().filter(|l| l.dropped).count() as u64;
        prop_assert_eq!(dropped, f.can_dropped);
        // The trace mirrors the log.
        let corrupted = report.trace.iter()
            .filter(|e| matches!(e, TraceEvent::CanCorrupted(..)))
            .count() as u64;
        let trace_dropped = report.trace.iter()
            .filter(|e| matches!(e, TraceEvent::CanDropped(..)))
            .count() as u64;
        prop_assert_eq!(corrupted, f.can_retransmitted);
        prop_assert_eq!(trace_dropped, f.can_dropped);
    }
}

#[test]
fn drift_envelope_is_bounded_by_the_round() {
    let fig = figure4(Time::from_millis(240));
    let outcome = multi_cluster_scheduling(&fig.system, &fig.config_b, &AnalysisParams::default())
        .expect("analyzable");
    let ppm = 500u64;
    let plan = FaultPlan::new(
        FaultParams {
            ttc_drift_ppm: ppm as i32,
            ..FaultParams::NOMINAL
        },
        0,
    );
    let report = simulate_with_faults(
        &fig.system,
        &fig.config_b,
        &outcome,
        &SimParams::default(),
        Some(&plan),
    )
    .expect("simulable");
    // Figure 4's TDMA round is 40 ms; the drift resyncs every round.
    let bound = Time::from_ticks(Time::from_millis(40).ticks() * ppm / 1_000_000);
    assert!(!report.faults.max_drift.is_zero(), "drift must be observed");
    assert!(
        report.faults.max_drift <= bound,
        "drift {} past the resync bound {}",
        report.faults.max_drift,
        bound
    );
    // Drift alone marks the run perturbed: bound violations (if any) must
    // not be classified as nominal findings.
    assert!(report.faults.perturbed());
    for finding in report.classify_findings(&fig.system, &outcome) {
        assert!(!finding.is_hard(), "{}", finding.detail());
    }
}

#[test]
fn overload_bursts_inflate_execution_and_slow_responses() {
    let fig = figure4(Time::from_millis(240));
    let outcome = multi_cluster_scheduling(&fig.system, &fig.config_b, &AnalysisParams::default())
        .expect("analyzable");
    let params = SimParams::default();
    let nominal = simulate(&fig.system, &fig.config_b, &outcome, &params).expect("simulable");
    let plan = FaultPlan::new(
        FaultParams {
            overload_permille: 1000,
            overload_factor_percent: 200,
            overload_mean_burst: 2,
            ..FaultParams::NOMINAL
        },
        3,
    );
    let overloaded =
        simulate_with_faults(&fig.system, &fig.config_b, &outcome, &params, Some(&plan))
            .expect("simulable");
    assert!(overloaded.faults.overload_episodes > 0);
    assert!(overloaded.faults.overload_inflated >= overloaded.faults.overload_episodes);
    let g = mcs_model::GraphId::new(0);
    assert!(
        overloaded.graph_response[&g] > nominal.graph_response[&g],
        "doubling every execution time must slow the end-to-end response"
    );
    assert!(overloaded
        .trace
        .iter()
        .any(|e| matches!(e, TraceEvent::OverloadBurst(..))));
}

#[test]
fn total_loss_drops_frames_and_starves_destinations() {
    let fig = figure4(Time::from_millis(240));
    let outcome = multi_cluster_scheduling(&fig.system, &fig.config_b, &AnalysisParams::default())
        .expect("analyzable");
    let plan = FaultPlan::new(
        FaultParams {
            can_loss_permille: 1000,
            can_max_retries: 2,
            ..FaultParams::NOMINAL
        },
        0,
    );
    let report = simulate_with_faults(
        &fig.system,
        &fig.config_b,
        &outcome,
        &SimParams {
            activations: 1,
            ..SimParams::default()
        },
        Some(&plan),
    )
    .expect("simulable");
    let f = &report.faults;
    // Every transmission is corrupted: each frame retries twice, then drops.
    assert!(f.can_dropped > 0);
    assert_eq!(f.can_injected, f.can_retransmitted + f.can_dropped);
    assert_eq!(f.can_retransmitted, 2 * f.can_dropped);
    // No CAN frame ever got through: P2/P3 (ET, fed via the CAN leg) never
    // ran, and P4's table start fired without its inputs — a table
    // violation on this perturbed run.
    assert!(!report
        .trace
        .iter()
        .any(|e| matches!(e, TraceEvent::CanTransmitted(..))));
    let p2 = mcs_model::ProcessId::new(1);
    assert!(!report.process_completion.contains_key(&p2));
    assert!(report.table_violations > 0);
    // Perturbed run: whatever deviates is degradation, not a hard finding.
    for finding in report.classify_findings(&fig.system, &outcome) {
        assert!(!finding.is_hard(), "{}", finding.detail());
    }
}
