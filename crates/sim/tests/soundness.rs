//! Soundness of the worst-case analysis against the simulator: for
//! schedulable synthesized configurations, no observed response time or
//! queue occupancy may exceed its analytic bound, under worst-case and
//! randomized execution times alike.

use mcs_core::{multi_cluster_scheduling, AnalysisParams};
use mcs_gen::{cruise_controller, figure4, generate, GeneratorParams};
use mcs_model::{System, SystemConfig, Time};
use mcs_opt::{Os, OsParams, Synthesis};

fn synthesize(system: &System) -> mcs_opt::SynthesisReport {
    Synthesis::builder(system)
        .strategy(Os::new(OsParams::default()))
        .run()
        .expect("the straightforward configuration is analyzable")
}
use mcs_sim::{simulate, ExecutionModel, SimParams};

fn assert_sound(system: &System, config: &SystemConfig, label: &str) {
    let analysis = AnalysisParams::default();
    let outcome = multi_cluster_scheduling(system, config, &analysis).expect("analyzable");
    for (execution, seed) in [
        (ExecutionModel::WorstCase, 0),
        (ExecutionModel::RandomUniform, 1),
        (ExecutionModel::RandomUniform, 2),
    ] {
        let report = simulate(
            system,
            config,
            &outcome,
            &SimParams {
                activations: 3,
                execution,
                seed,
            },
        )
        .expect("simulable");
        let violations = report.soundness_violations(system, &outcome);
        assert!(
            violations.is_empty(),
            "{label} ({execution:?}, seed {seed}): {violations:?}"
        );
    }
}

#[test]
fn figure4_schedulable_configurations_are_soundly_bounded() {
    let fig = figure4(Time::from_millis(240));
    assert_sound(&fig.system, &fig.config_b, "figure4 (b)");
    assert_sound(&fig.system, &fig.config_c, "figure4 (c)");
}

#[test]
fn figure4_unschedulable_configuration_collides_across_activations() {
    // (a)'s response (250 ms) exceeds the period (240 ms): activation k+1's
    // P1 overlaps activation k's P4 on N1, and the simulator must flag it.
    let fig = figure4(Time::from_millis(240));
    let outcome = multi_cluster_scheduling(&fig.system, &fig.config_a, &AnalysisParams::default())
        .expect("analyzable");
    let report =
        simulate(&fig.system, &fig.config_a, &outcome, &SimParams::default()).expect("simulable");
    assert!(report.table_violations > 0);
}

#[test]
fn observed_figure4_response_is_close_to_but_below_the_bound() {
    let fig = figure4(Time::from_millis(240));
    let outcome = multi_cluster_scheduling(&fig.system, &fig.config_b, &AnalysisParams::default())
        .expect("analyzable");
    let report =
        simulate(&fig.system, &fig.config_b, &outcome, &SimParams::default()).expect("simulable");
    let g = mcs_model::GraphId::new(0);
    let observed = report.graph_response[&g];
    let bound = outcome.graph_response(g);
    assert!(observed <= bound);
    // The bound must not be absurdly loose either: within 2x on this
    // contention-free example.
    assert!(
        bound.ticks() <= observed.ticks() * 2,
        "bound {bound} looser than 2x the observation {observed}"
    );
}

#[test]
fn optimized_random_systems_are_soundly_bounded() {
    for seed in 0..3 {
        let system = generate(&GeneratorParams::paper_sized(2, seed));
        let os = synthesize(&system);
        if !os.best.is_schedulable() {
            continue;
        }
        assert_sound(&system, &os.best.config, &format!("random seed {seed}"));
    }
}

#[test]
fn cruise_controller_is_soundly_bounded() {
    let cc = cruise_controller();
    let os = synthesize(&cc.system);
    assert_sound(&cc.system, &os.best.config, "cruise controller");
}

#[test]
fn random_execution_never_beats_worst_case_bounds_but_may_beat_wcet_runs() {
    let fig = figure4(Time::from_millis(240));
    let outcome = multi_cluster_scheduling(&fig.system, &fig.config_c, &AnalysisParams::default())
        .expect("analyzable");
    let worst =
        simulate(&fig.system, &fig.config_c, &outcome, &SimParams::default()).expect("simulable");
    let g = mcs_model::GraphId::new(0);
    let mut saw_not_worse = false;
    for seed in 0..5 {
        let random = simulate(
            &fig.system,
            &fig.config_c,
            &outcome,
            &SimParams {
                activations: 3,
                execution: ExecutionModel::RandomUniform,
                seed,
            },
        )
        .expect("simulable");
        assert!(random.graph_response[&g] <= outcome.graph_response(g));
        if random.graph_response[&g] <= worst.graph_response[&g] {
            saw_not_worse = true;
        }
    }
    assert!(saw_not_worse);
}
