//! Regression tests for degenerate simulator inputs: each must surface as a
//! structured [`SimError`] instead of a panic mid-run.

use mcs_core::{multi_cluster_scheduling, AnalysisParams};
use mcs_gen::figure4;
use mcs_model::{
    Application, Architecture, CanBusParams, GatewayParams, NodeRole, PriorityAssignment, System,
    SystemConfig, TdmaConfig, TdmaSlot, Time, TtpBusParams,
};
use mcs_sim::{simulate, SimError, SimParams};

fn figure4_ready() -> (mcs_gen::Figure4, mcs_core::AnalysisOutcome) {
    let fig = figure4(Time::from_millis(240));
    let outcome = multi_cluster_scheduling(&fig.system, &fig.config_b, &AnalysisParams::default())
        .expect("analyzable");
    (fig, outcome)
}

#[test]
fn zero_activation_horizon_is_rejected() {
    let (fig, outcome) = figure4_ready();
    let params = SimParams {
        activations: 0,
        ..SimParams::default()
    };
    assert_eq!(
        simulate(&fig.system, &fig.config_b, &outcome, &params).unwrap_err(),
        SimError::ZeroHorizon
    );
}

#[test]
fn empty_application_is_rejected() {
    // An application with no process graphs at all (the builder already
    // rejects graphs without processes, so zero graphs is the only way to
    // reach the simulator with nothing to activate).
    let mut b = Architecture::builder();
    let n1 = b.add_node("N1", NodeRole::TimeTriggered);
    let ng = b.add_node("NG", NodeRole::Gateway);
    b.ttp_params(TtpBusParams::new(Time::from_micros(2_500), Time::ZERO));
    b.can_params(CanBusParams::with_fixed_frame_time(Time::from_millis(10)));
    let arch = b.build().expect("valid architecture");
    let app = Application::builder()
        .build(&arch)
        .expect("zero graphs is a valid model");
    let system = System::with_gateway(
        app,
        arch,
        GatewayParams::new(Time::from_millis(5), Time::from_millis(40)),
    );
    let config = SystemConfig::new(
        TdmaConfig::new(vec![
            TdmaSlot {
                node: ng,
                capacity_bytes: 8,
            },
            TdmaSlot {
                node: n1,
                capacity_bytes: 8,
            },
        ]),
        PriorityAssignment::new(),
    );
    let outcome = multi_cluster_scheduling(&system, &config, &AnalysisParams::default())
        .expect("trivially analyzable");
    assert_eq!(
        simulate(&system, &config, &outcome, &SimParams::default()).unwrap_err(),
        SimError::EmptyApplication
    );
}

#[test]
fn missing_gateway_slot_is_rejected() {
    let (fig, outcome) = figure4_ready();
    // A TDMA round that never grants the gateway a slot.
    let n1 = fig.system.architecture.nodes()[0].id();
    let config = SystemConfig::new(
        TdmaConfig::new(vec![TdmaSlot {
            node: n1,
            capacity_bytes: 8,
        }]),
        fig.config_b.priorities.clone(),
    );
    assert_eq!(
        simulate(&fig.system, &config, &outcome, &SimParams::default()).unwrap_err(),
        SimError::MissingGatewaySlot
    );
}

#[test]
fn empty_tdma_round_is_rejected() {
    let (fig, outcome) = figure4_ready();
    let config = SystemConfig::new(TdmaConfig::new(Vec::new()), fig.config_b.priorities.clone());
    assert_eq!(
        simulate(&fig.system, &config, &outcome, &SimParams::default()).unwrap_err(),
        SimError::EmptyTdmaRound
    );
}

#[test]
fn unprioritized_can_messages_are_rejected() {
    let (fig, outcome) = figure4_ready();
    // Clear every priority: the first CAN-routed message must be flagged
    // (a config "referencing no ET processes" degenerates the same way).
    let config = SystemConfig::new(fig.config_b.tdma.clone(), PriorityAssignment::new());
    let err = simulate(&fig.system, &config, &outcome, &SimParams::default()).unwrap_err();
    assert!(
        matches!(err, SimError::UnprioritizedMessage(_)),
        "unexpected error: {err}"
    );
}

#[test]
fn unscheduled_tt_process_is_rejected() {
    let (fig, _) = figure4_ready();
    // An outcome whose schedule table lost its entries (e.g. built against
    // a different system revision).
    let mut outcome =
        multi_cluster_scheduling(&fig.system, &fig.config_b, &AnalysisParams::default())
            .expect("analyzable");
    outcome.schedule.clear();
    let err = simulate(&fig.system, &fig.config_b, &outcome, &SimParams::default()).unwrap_err();
    assert!(
        matches!(err, SimError::UnscheduledTtProcess(_)),
        "unexpected error: {err}"
    );
}

#[test]
fn errors_render_actionable_messages() {
    let messages = [
        SimError::EmptyApplication.to_string(),
        SimError::ZeroHorizon.to_string(),
        SimError::EmptyTdmaRound.to_string(),
        SimError::MissingGatewaySlot.to_string(),
    ];
    for m in &messages {
        assert!(!m.is_empty());
    }
    let err: Box<dyn std::error::Error> = Box::new(SimError::ZeroHorizon);
    assert!(err.to_string().contains("activations"));
}
