//! Hand-built scenarios from the paper: the Figure 4 worked example.

use mcs_model::{
    Application, Architecture, CanBusParams, GatewayParams, MessageId, NodeRole, Priority,
    PriorityAssignment, ProcessId, System, SystemConfig, TdmaConfig, TdmaSlot, Time, TtpBusParams,
};

/// The Figure 4 example system plus its three configurations.
#[derive(Clone, Debug)]
pub struct Figure4 {
    /// G1 (P1..P4, m1..m3) mapped on N1 (TT), N2 (ET) and the gateway.
    pub system: System,
    /// Configuration (a): gateway slot first, `priority(P3) > priority(P2)`.
    pub config_a: SystemConfig,
    /// Configuration (b): N1's slot first.
    pub config_b: SystemConfig,
    /// Configuration (c): slots as (a), `priority(P2) > priority(P3)`.
    pub config_c: SystemConfig,
}

/// Builds the paper's Figure 4 example: the process graph G1 of Figure 1
/// mapped as in Figure 3, with a 40 ms TDMA round of two 20 ms slots, 10 ms
/// CAN frames and a 5 ms gateway transfer process.
///
/// # Examples
///
/// ```
/// use mcs_gen::figure4;
///
/// let fig = figure4(mcs_model::Time::from_millis(200));
/// assert_eq!(fig.system.application.processes().len(), 4);
/// assert_eq!(fig.system.inter_cluster_message_count(), 3);
/// ```
pub fn figure4(deadline: Time) -> Figure4 {
    let ms = Time::from_millis;
    let mut b = Architecture::builder();
    let n1 = b.add_node("N1", NodeRole::TimeTriggered);
    let n2 = b.add_node("N2", NodeRole::EventTriggered);
    let ng = b.add_node("NG", NodeRole::Gateway);
    b.ttp_params(TtpBusParams::new(Time::from_micros(2_500), Time::ZERO));
    b.can_params(CanBusParams::with_fixed_frame_time(ms(10)));
    let arch = b.build().expect("figure 4 architecture is valid");

    let mut ab = Application::builder();
    let g1 = ab.add_graph("G1", ms(240), deadline);
    let p1 = ab.add_process(g1, "P1", n1, ms(30));
    let p2 = ab.add_process(g1, "P2", n2, ms(20));
    let p3 = ab.add_process(g1, "P3", n2, ms(20));
    let p4 = ab.add_process(g1, "P4", n1, ms(30));
    ab.link(p1, p2, 4); // m1
    ab.link(p1, p3, 4); // m2
    ab.link(p2, p4, 4); // m3
    let app = ab.build(&arch).expect("figure 4 application is valid");
    let system = System::with_gateway(app, arch, GatewayParams::new(ms(5), ms(40)));

    let priorities = |p2_first: bool| {
        let mut pri = PriorityAssignment::new();
        if p2_first {
            pri.set_process(p2, Priority::new(0));
            pri.set_process(p3, Priority::new(1));
        } else {
            pri.set_process(p3, Priority::new(0));
            pri.set_process(p2, Priority::new(1));
        }
        pri.set_message(MessageId::new(0), Priority::new(0));
        pri.set_message(MessageId::new(1), Priority::new(1));
        pri.set_message(MessageId::new(2), Priority::new(2));
        pri
    };
    let slot = |node| TdmaSlot {
        node,
        capacity_bytes: 8,
    };

    let config_a = SystemConfig::new(TdmaConfig::new(vec![slot(ng), slot(n1)]), priorities(false));
    let config_b = SystemConfig::new(TdmaConfig::new(vec![slot(n1), slot(ng)]), priorities(false));
    let config_c = SystemConfig::new(TdmaConfig::new(vec![slot(ng), slot(n1)]), priorities(true));

    Figure4 {
        system,
        config_a,
        config_b,
        config_c,
    }
}

/// The Figure 4 example extended with a second, half-rate process graph —
/// the smallest hand-built *multi-rate* scenario (paper §2.1: an
/// application model with graphs of different periods).
///
/// G2 runs at 480 ms (2 × G1's 240 ms): P5 on the TT node feeds P6 on the
/// ET node through a fourth gateway-crossing message, so the instance has
/// two phase groups, a hyper-period of 480 ms, and cross-rate interference
/// on both the CAN bus and the ET CPU — exactly the structure the
/// value-driven worklist prunes inside priority bands.
///
/// # Examples
///
/// ```
/// use mcs_gen::figure4_multirate;
///
/// let fig = figure4_multirate(mcs_model::Time::from_millis(200));
/// assert_eq!(fig.system.application.graphs().len(), 2);
/// assert_eq!(
///     fig.system.application.hyperperiod(),
///     mcs_model::Time::from_millis(480)
/// );
/// ```
pub fn figure4_multirate(deadline: Time) -> Figure4 {
    let ms = Time::from_millis;
    let mut b = Architecture::builder();
    let n1 = b.add_node("N1", NodeRole::TimeTriggered);
    let n2 = b.add_node("N2", NodeRole::EventTriggered);
    let ng = b.add_node("NG", NodeRole::Gateway);
    b.ttp_params(TtpBusParams::new(Time::from_micros(2_500), Time::ZERO));
    b.can_params(CanBusParams::with_fixed_frame_time(ms(10)));
    let arch = b.build().expect("multirate architecture is valid");

    let mut ab = Application::builder();
    let g1 = ab.add_graph("G1", ms(240), deadline);
    let p1 = ab.add_process(g1, "P1", n1, ms(30));
    let p2 = ab.add_process(g1, "P2", n2, ms(20));
    let p3 = ab.add_process(g1, "P3", n2, ms(20));
    let p4 = ab.add_process(g1, "P4", n1, ms(30));
    ab.link(p1, p2, 4); // m1
    ab.link(p1, p3, 4); // m2
    ab.link(p2, p4, 4); // m3
    let g2 = ab.add_graph("G2", ms(480), deadline.saturating_mul(2));
    let p5 = ab.add_process(g2, "P5", n1, ms(30));
    let p6 = ab.add_process(g2, "P6", n2, ms(20));
    ab.link(p5, p6, 4); // m4 (TTC→ETC, half rate)
    let app = ab.build(&arch).expect("multirate application is valid");
    let system = System::with_gateway(app, arch, GatewayParams::new(ms(5), ms(40)));

    let priorities = |p2_first: bool| {
        let mut pri = PriorityAssignment::new();
        if p2_first {
            pri.set_process(p2, Priority::new(0));
            pri.set_process(p3, Priority::new(1));
        } else {
            pri.set_process(p3, Priority::new(0));
            pri.set_process(p2, Priority::new(1));
        }
        pri.set_process(p6, Priority::new(2));
        pri.set_message(MessageId::new(0), Priority::new(0));
        pri.set_message(MessageId::new(1), Priority::new(1));
        pri.set_message(MessageId::new(2), Priority::new(2));
        pri.set_message(MessageId::new(3), Priority::new(3));
        pri
    };
    let slot = |node| TdmaSlot {
        node,
        capacity_bytes: 8,
    };

    let config_a = SystemConfig::new(TdmaConfig::new(vec![slot(ng), slot(n1)]), priorities(false));
    let config_b = SystemConfig::new(TdmaConfig::new(vec![slot(n1), slot(ng)]), priorities(false));
    let config_c = SystemConfig::new(TdmaConfig::new(vec![slot(ng), slot(n1)]), priorities(true));

    Figure4 {
        system,
        config_a,
        config_b,
        config_c,
    }
}

/// Convenience handles to the entities of the Figure 4 example.
pub mod figure4_ids {
    use super::*;

    /// Process P1 (TT sender).
    pub const P1: ProcessId = ProcessId::new(0);
    /// Process P2 (ET, receives m1).
    pub const P2: ProcessId = ProcessId::new(1);
    /// Process P3 (ET, receives m2).
    pub const P3: ProcessId = ProcessId::new(2);
    /// Process P4 (TT, receives m3).
    pub const P4: ProcessId = ProcessId::new(3);
    /// Message m1 (P1 → P2).
    pub const M1: MessageId = MessageId::new(0);
    /// Message m2 (P1 → P3).
    pub const M2: MessageId = MessageId::new(1);
    /// Message m3 (P2 → P4).
    pub const M3: MessageId = MessageId::new(2);
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_model::MessageRoute;

    #[test]
    fn figure4_routes_match_figure3() {
        let fig = figure4(Time::from_millis(200));
        assert_eq!(fig.system.route(figure4_ids::M1), MessageRoute::TtcToEtc);
        assert_eq!(fig.system.route(figure4_ids::M2), MessageRoute::TtcToEtc);
        assert_eq!(fig.system.route(figure4_ids::M3), MessageRoute::EtcToTtc);
    }

    #[test]
    fn multirate_scenario_has_two_phase_groups() {
        let fig = figure4_multirate(Time::from_millis(200));
        let app = &fig.system.application;
        assert_eq!(app.graphs().len(), 2);
        assert_eq!(app.graphs()[0].period(), Time::from_millis(240));
        assert_eq!(app.graphs()[1].period(), Time::from_millis(480));
        assert_eq!(app.hyperperiod(), Time::from_millis(480));
        // The half-rate graph crosses the gateway too.
        assert_eq!(fig.system.route(MessageId::new(3)), MessageRoute::TtcToEtc);
        assert_eq!(fig.system.inter_cluster_message_count(), 4);
    }

    #[test]
    fn configurations_differ_as_described() {
        let fig = figure4(Time::from_millis(200));
        assert_eq!(
            fig.config_a.tdma.slots()[0].node,
            fig.system.architecture.gateway()
        );
        assert_ne!(
            fig.config_b.tdma.slots()[0].node,
            fig.system.architecture.gateway()
        );
        // (c) differs from (a) only in process priorities.
        assert_eq!(fig.config_a.tdma, fig.config_c.tdma);
        assert!(fig
            .config_c
            .priorities
            .process(figure4_ids::P2)
            .expect("assigned")
            .is_higher_than(
                fig.config_c
                    .priorities
                    .process(figure4_ids::P3)
                    .expect("assigned")
            ));
    }
}
