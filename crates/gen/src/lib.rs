//! # mcs-gen
//!
//! Workload generation for the multi-cluster synthesis experiments:
//!
//! * [`generate`] — seeded random systems following the paper's §6 setup
//!   (2–10 nodes split between the clusters, 40 processes per node, message
//!   sizes 8–32 bytes, uniform or exponential WCETs, an exact
//!   inter-cluster-traffic knob for Figure 9c, and a per-graph
//!   [`PeriodMultipliers`] set for multi-rate instances);
//! * [`figure4`] — the hand-built worked example of Figure 4;
//! * [`figure4_multirate`] — the same example with a second, half-rate
//!   graph (the smallest multi-rate scenario);
//! * [`cruise_controller`] — the reconstructed vehicle cruise controller
//!   real-life example.
//!
//! # Examples
//!
//! ```
//! use mcs_gen::{generate, GeneratorParams};
//!
//! let system = generate(&GeneratorParams::paper_sized(2, 42));
//! assert_eq!(system.application.processes().len(), 80);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cruise;
mod generate;
mod params;
mod scenario;

pub use cruise::{cruise_controller, CruiseController, CruiseNodes};
pub use generate::generate;
pub use params::{Distribution, GeneratorParams, PeriodMultipliers};
pub use scenario::{figure4, figure4_ids, figure4_multirate, Figure4};
