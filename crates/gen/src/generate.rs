//! Random multi-cluster system generation (the paper's §6 setup).
//!
//! Systems are a pure function of [`GeneratorParams`] (including the seed),
//! so every experiment is reproducible. Each process graph is a random
//! connected DAG: process `i` depends on a uniformly chosen earlier process,
//! plus extra edges with configurable probability.
//!
//! Mapping is *cluster-steered*: every graph has a home cluster (alternating
//! TTC/ETC) over whose nodes its core processes are spread uniformly, plus a
//! controlled number of "remote" leaf processes on the opposite cluster —
//! each contributing exactly one gateway-crossing message. The default
//! inter-cluster traffic is one message per eight processes (the middle of
//! the paper's Figure 9c range of 10–50 messages for 160 processes);
//! [`GeneratorParams::inter_cluster_messages`] pins the exact count.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mcs_model::{Application, Architecture, NodeId, NodeRole, System, Time};

use crate::params::{Distribution, GeneratorParams};

/// Generates a random system from the parameters.
///
/// # Panics
///
/// Panics if the parameters are degenerate (no nodes, no processes, or an
/// inter-cluster message count larger than the processes available to carry
/// it). The generated model itself always validates.
pub fn generate(params: &GeneratorParams) -> System {
    assert!(params.tt_nodes > 0, "need at least one TT node");
    assert!(params.et_nodes > 0, "need at least one ET node");
    assert!(params.processes_per_node > 0, "need processes");
    assert!(params.graphs > 0, "need at least one graph");
    let mut rng = StdRng::seed_from_u64(params.seed);

    let mut ab = Architecture::builder();
    let tt: Vec<NodeId> = (0..params.tt_nodes)
        .map(|i| ab.add_node(format!("TT{i}"), NodeRole::TimeTriggered))
        .collect();
    let et: Vec<NodeId> = (0..params.et_nodes)
        .map(|i| ab.add_node(format!("ET{i}"), NodeRole::EventTriggered))
        .collect();
    ab.add_node("NG", NodeRole::Gateway);
    let arch = ab.build().expect("generator architecture is valid");

    let total = params.total_processes();
    // Mean WCET so that each node lands near the target utilization (scaled
    // per graph by its period multiplier, keeping utilization on target for
    // multi-rate sets).
    let mean_wcet_ticks = (params.period.ticks() as f64 * f64::from(params.utilization_permille)
        / 1_000.0
        / params.processes_per_node as f64)
        .max(1.0);

    let mut app = Application::builder();
    // Distribute processes over graphs as evenly as possible.
    let base = total / params.graphs;
    let extra = total % params.graphs;
    let inter_cluster = params
        .inter_cluster_messages
        .unwrap_or_else(|| (total / 8).max(1));
    let mut cross_quota = split_quota(Some(inter_cluster), params.graphs);

    for gi in 0..params.graphs {
        let n = base + usize::from(gi < extra);
        if n == 0 {
            continue;
        }
        // Multi-rate assignment (paper §2.1): the graph's period is the
        // base period scaled by its multiplier; deadlines and WCETs scale
        // with it, so per-graph laxity and per-node utilization match the
        // single-period setup.
        let mult = params.period_multipliers.for_graph(gi);
        let period = Time::from_ticks(params.period.ticks().saturating_mul(mult));
        let deadline = scale_permille(period, params.deadline_permille);
        let graph_mean_wcet = mean_wcet_ticks * mult as f64;
        let graph = app.add_graph(format!("G{gi}"), period, deadline);
        let cross = cross_quota.pop().unwrap_or(0).min(n.saturating_sub(1));
        let core = n - cross;

        // Home cluster alternates graph by graph.
        let home_is_tt = gi % 2 == 0;

        let mut procs = Vec::with_capacity(n);
        for pi in 0..core {
            let node = pick(&mut rng, if home_is_tt { &tt } else { &et });
            let wcet = draw_wcet(&mut rng, graph_mean_wcet, params.wcet_distribution);
            let p = app.add_process(graph, format!("G{gi}P{pi}"), node, wcet);
            if pi > 0 {
                let pred = procs[rng.gen_range(0..procs.len())];
                app.link(pred, p, draw_size(&mut rng, params.message_size));
            }
            if pi > 1 && rng.gen_range(0..1_000) < params.extra_edge_permille {
                let pred = procs[rng.gen_range(0..procs.len() - 1)];
                app.link(pred, p, draw_size(&mut rng, params.message_size));
            }
            procs.push(p);
        }
        // Remote leaves: exactly one predecessor in the core, mapped on the
        // opposite cluster — each contributes exactly one gateway-crossing
        // message.
        for pi in 0..cross {
            let node = pick(&mut rng, if home_is_tt { &et } else { &tt });
            let wcet = draw_wcet(&mut rng, graph_mean_wcet, params.wcet_distribution);
            let p = app.add_process(graph, format!("G{gi}X{pi}"), node, wcet);
            let pred = procs[rng.gen_range(0..procs.len())];
            app.link(pred, p, draw_size(&mut rng, params.message_size));
        }
    }

    let app = app.build(&arch).expect("generated application is valid");
    System::new(app, arch)
}

fn scale_permille(t: Time, permille: u32) -> Time {
    Time::from_ticks((t.ticks() as u128 * u128::from(permille) / 1_000) as u64)
}

/// Splits a requested total into per-graph quotas (last graphs first).
fn split_quota(total: Option<usize>, graphs: usize) -> Vec<usize> {
    let Some(total) = total else {
        return vec![0; graphs];
    };
    let base = total / graphs;
    let extra = total % graphs;
    (0..graphs)
        .map(|gi| base + usize::from(gi < extra))
        .collect()
}

fn pick(rng: &mut StdRng, nodes: &[NodeId]) -> NodeId {
    nodes[rng.gen_range(0..nodes.len())]
}

fn draw_wcet(rng: &mut StdRng, mean_ticks: f64, dist: Distribution) -> Time {
    let ticks = match dist {
        Distribution::Uniform => rng.gen_range(mean_ticks * 0.5..=mean_ticks * 1.5),
        Distribution::Exponential => {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            (-mean_ticks * (1.0 - u).ln()).clamp(mean_ticks * 0.1, mean_ticks * 5.0)
        }
    };
    Time::from_ticks(ticks.round().max(1.0) as u64)
}

fn draw_size(rng: &mut StdRng, (lo, hi): (u32, u32)) -> u32 {
    rng.gen_range(lo..=hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::GeneratorParams;

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let params = GeneratorParams::paper_sized(2, 42);
        let a = generate(&params);
        let b = generate(&params);
        assert_eq!(
            a.application.processes().len(),
            b.application.processes().len()
        );
        assert_eq!(
            a.application.messages().len(),
            b.application.messages().len()
        );
        for (x, y) in a
            .application
            .processes()
            .iter()
            .zip(b.application.processes())
        {
            assert_eq!(x.wcet(), y.wcet());
            assert_eq!(x.node(), y.node());
        }
        let c = generate(&GeneratorParams::paper_sized(2, 43));
        let same = a
            .application
            .processes()
            .iter()
            .zip(c.application.processes())
            .all(|(x, y)| x.wcet() == y.wcet() && x.node() == y.node());
        assert!(!same, "different seeds must differ");
    }

    #[test]
    fn paper_sizes_produce_the_right_process_counts() {
        for nodes in [2usize, 4, 6, 8, 10] {
            let system = generate(&GeneratorParams::paper_sized(nodes, 7));
            assert_eq!(system.application.processes().len(), nodes * 40);
            // Architecture: nodes + gateway.
            assert_eq!(system.architecture.node_count(), nodes + 1);
        }
    }

    #[test]
    fn steered_generation_hits_the_exact_inter_cluster_count() {
        for k in [10usize, 20, 30, 40, 50] {
            let mut params = GeneratorParams::paper_sized(4, 99);
            params.inter_cluster_messages = Some(k);
            let system = generate(&params);
            assert_eq!(system.inter_cluster_message_count(), k, "k={k}");
            assert_eq!(system.application.processes().len(), 160);
        }
    }

    #[test]
    fn message_sizes_respect_the_configured_range() {
        let system = generate(&GeneratorParams::paper_sized(4, 3));
        assert!(!system.application.messages().is_empty());
        for m in system.application.messages() {
            assert!((8..=32).contains(&m.size_bytes()));
        }
    }

    #[test]
    fn utilization_lands_near_the_target() {
        let params = GeneratorParams::paper_sized(4, 11);
        let system = generate(&params);
        for node in system.architecture.nodes() {
            if node.role() == NodeRole::Gateway {
                continue;
            }
            let u = system.application.node_utilization(node.id());
            // Cluster-steered mapping spreads ~40 processes per node.
            assert!(u > 0.1 && u < 0.7, "node {} utilization {u}", node.id());
        }
    }

    #[test]
    fn exponential_wcets_generate_valid_models() {
        let mut params = GeneratorParams::paper_sized(2, 5);
        params.wcet_distribution = Distribution::Exponential;
        let system = generate(&params);
        assert_eq!(system.application.processes().len(), 80);
        for p in system.application.processes() {
            assert!(!p.wcet().is_zero());
        }
    }

    #[test]
    fn multi_rate_generation_spreads_periods_and_keeps_utilization() {
        let params = GeneratorParams::multi_rate(4, 11);
        let system = generate(&params);
        let app = &system.application;
        // Three distinct periods, hyper-period 4× the base.
        let mut periods: Vec<_> = app.graphs().iter().map(|g| g.period()).collect();
        periods.sort();
        periods.dedup();
        assert_eq!(
            periods,
            vec![
                params.period,
                Time::from_ticks(params.period.ticks() * 2),
                Time::from_ticks(params.period.ticks() * 4),
            ]
        );
        assert_eq!(
            app.hyperperiod(),
            Time::from_ticks(params.period.ticks() * 4)
        );
        // Deadlines scale with the graph period.
        for g in app.graphs() {
            assert_eq!(
                g.deadline(),
                scale_permille(g.period(), params.deadline_permille)
            );
        }
        // WCET scaling keeps per-node utilization in the single-period band.
        for node in system.architecture.nodes() {
            if node.role() == NodeRole::Gateway {
                continue;
            }
            let u = system.application.node_utilization(node.id());
            assert!(u > 0.1 && u < 0.7, "node {} utilization {u}", node.id());
        }
    }

    #[test]
    fn single_period_multipliers_reproduce_the_default_stream() {
        // The default `{1}` set must leave the generated instance untouched
        // (same RNG draw sequence, same WCETs, same mapping).
        let baseline = generate(&GeneratorParams::paper_sized(2, 42));
        let mut params = GeneratorParams::paper_sized(2, 42);
        params.period_multipliers = crate::PeriodMultipliers::new(&[1, 1, 1]);
        let explicit = generate(&params);
        for (x, y) in baseline
            .application
            .processes()
            .iter()
            .zip(explicit.application.processes())
        {
            assert_eq!(x.wcet(), y.wcet());
            assert_eq!(x.node(), y.node());
        }
    }

    #[test]
    fn graphs_are_connected_enough_to_have_messages() {
        let system = generate(&GeneratorParams::paper_sized(2, 21));
        assert!(!system.application.messages().is_empty());
        // Default inter-cluster traffic: one message per eight processes.
        assert_eq!(system.inter_cluster_message_count(), 10);
    }
}
