//! Parameters of the synthetic benchmark generator, defaulting to the
//! experimental setup of paper §6.

use mcs_model::Time;

/// Distribution used for worst-case execution times and message sizes
/// (paper §6: "assigned randomly using both uniform and exponential
/// distribution").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Distribution {
    /// Uniform over the configured range.
    #[default]
    Uniform,
    /// Exponential with the range midpoint as mean, clamped to the range.
    Exponential,
}

/// Generator parameters.
///
/// The defaults reproduce the paper's setup: `n` nodes half on the TTC and
/// half on the ETC plus a gateway, 40 processes per node, message sizes of
/// 8–32 bytes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GeneratorParams {
    /// Number of time-triggered nodes (excluding the gateway).
    pub tt_nodes: usize,
    /// Number of event-triggered nodes (excluding the gateway).
    pub et_nodes: usize,
    /// Processes generated per node.
    pub processes_per_node: usize,
    /// Number of process graphs the processes are partitioned into.
    pub graphs: usize,
    /// Common graph period (the hyper-graph assumption: one period).
    pub period: Time,
    /// Deadline as a per-mille fraction of the period (1000 = deadline
    /// equals period).
    pub deadline_permille: u32,
    /// Target per-node CPU utilization in per-mille (drives the WCET scale).
    pub utilization_permille: u32,
    /// WCET distribution.
    pub wcet_distribution: Distribution,
    /// Message payload size range in bytes, inclusive.
    pub message_size: (u32, u32),
    /// Probability (per-mille) of an extra dependency edge between two
    /// processes of the same graph, beyond the spanning connectivity.
    pub extra_edge_permille: u32,
    /// If set, force exactly this many inter-cluster (gateway-crossing)
    /// messages by steering the mapping (the Figure 9c knob); otherwise the
    /// mapping is uniformly random and inter-cluster traffic emerges
    /// naturally.
    pub inter_cluster_messages: Option<usize>,
    /// RNG seed; every generated system is a pure function of the
    /// parameters and this seed.
    pub seed: u64,
}

impl GeneratorParams {
    /// The paper's configuration for a system of `nodes` application nodes
    /// (half TTC, half ETC): 40 processes per node.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero or odd.
    pub fn paper_sized(nodes: usize, seed: u64) -> Self {
        assert!(
            nodes > 0 && nodes.is_multiple_of(2),
            "paper sizes use even node counts"
        );
        GeneratorParams {
            tt_nodes: nodes / 2,
            et_nodes: nodes / 2,
            processes_per_node: 40,
            graphs: 10 * nodes,
            period: Time::from_millis(1_000),
            deadline_permille: 1_000,
            utilization_permille: 250,
            wcet_distribution: Distribution::Uniform,
            message_size: (8, 32),
            extra_edge_permille: 200,
            inter_cluster_messages: None,
            seed,
        }
    }

    /// Total number of application processes.
    pub fn total_processes(&self) -> usize {
        (self.tt_nodes + self.et_nodes) * self.processes_per_node
    }
}

impl Default for GeneratorParams {
    /// The paper's smallest configuration: 2 nodes, 80 processes.
    fn default() -> Self {
        GeneratorParams::paper_sized(2, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sizes_match_section6() {
        for (nodes, procs) in [(2, 80), (4, 160), (6, 240), (8, 320), (10, 400)] {
            let p = GeneratorParams::paper_sized(nodes, 0);
            assert_eq!(p.total_processes(), procs);
            assert_eq!(p.tt_nodes, p.et_nodes);
            assert_eq!(p.message_size, (8, 32));
        }
    }

    #[test]
    #[should_panic(expected = "even node counts")]
    fn odd_node_counts_are_rejected() {
        GeneratorParams::paper_sized(3, 0);
    }
}
