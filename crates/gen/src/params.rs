//! Parameters of the synthetic benchmark generator, defaulting to the
//! experimental setup of paper §6.

use mcs_model::Time;
use mcs_sim::FaultParams;

/// Distribution used for worst-case execution times and message sizes
/// (paper §6: "assigned randomly using both uniform and exponential
/// distribution").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Distribution {
    /// Uniform over the configured range.
    #[default]
    Uniform,
    /// Exponential with the range midpoint as mean, clamped to the range.
    Exponential,
}

/// The per-graph period-multiplier set of the multi-rate application model
/// (paper §2.1): graph `g` runs at `base period × multipliers[g mod len]`.
///
/// The default singleton `{1}` reproduces the single-period setup of the
/// paper's §6 experiments bit-for-bit. A set like `{1, 2, 4}` generates
/// genuinely multi-rate instances: graphs fall into distinct phase groups
/// (one per period), the hyper-period becomes the LCM, and the delta-RTA
/// dirty cones gain real structure to prune (offsets only phase flows of
/// the *same* transaction, so cross-period interference stays
/// critical-instant shaped while same-period bands stay tight).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PeriodMultipliers {
    values: [u64; Self::MAX],
    len: u8,
}

impl PeriodMultipliers {
    /// Maximum number of multipliers in a set.
    pub const MAX: usize = 8;

    /// The single-period default: every graph keeps the base period.
    pub const SINGLE: PeriodMultipliers = PeriodMultipliers {
        values: [1; Self::MAX],
        len: 1,
    };

    /// The deep-rate `{1, 8}` preset: half the graphs at the base period,
    /// half at eight times it. Two phase groups only, but an 8× hyper-period
    /// — the opposite stressor to [`PeriodMultipliers::SINGLE`]: long
    /// horizons with sparse activations of the slow group, exercising the
    /// analysis across a much wider rate ratio than the `{1, 2, 4}` set.
    pub const DEEP: PeriodMultipliers = PeriodMultipliers {
        values: [1, 8, 1, 1, 1, 1, 1, 1],
        len: 2,
    };

    /// Builds a set from a slice of non-zero multipliers.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty, longer than [`Self::MAX`], or contains
    /// a zero multiplier.
    pub fn new(multipliers: &[u64]) -> Self {
        assert!(
            !multipliers.is_empty() && multipliers.len() <= Self::MAX,
            "between 1 and {} period multipliers",
            Self::MAX
        );
        assert!(
            multipliers.iter().all(|&m| m > 0),
            "period multipliers must be non-zero"
        );
        let mut values = [1; Self::MAX];
        values[..multipliers.len()].copy_from_slice(multipliers);
        PeriodMultipliers {
            values,
            len: multipliers.len() as u8,
        }
    }

    /// The multipliers as a slice.
    pub fn as_slice(&self) -> &[u64] {
        &self.values[..usize::from(self.len)]
    }

    /// The multiplier assigned to graph `graph_index` (round-robin).
    pub fn for_graph(&self, graph_index: usize) -> u64 {
        self.values[graph_index % usize::from(self.len)]
    }

    /// `true` when every graph keeps the base period.
    pub fn is_single(&self) -> bool {
        self.as_slice().iter().all(|&m| m == 1)
    }
}

impl Default for PeriodMultipliers {
    fn default() -> Self {
        Self::SINGLE
    }
}

/// Generator parameters.
///
/// The defaults reproduce the paper's setup: `n` nodes half on the TTC and
/// half on the ETC plus a gateway, 40 processes per node, message sizes of
/// 8–32 bytes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GeneratorParams {
    /// Number of time-triggered nodes (excluding the gateway).
    pub tt_nodes: usize,
    /// Number of event-triggered nodes (excluding the gateway).
    pub et_nodes: usize,
    /// Processes generated per node.
    pub processes_per_node: usize,
    /// Number of process graphs the processes are partitioned into.
    pub graphs: usize,
    /// Base graph period; each graph's actual period is this scaled by its
    /// entry of [`GeneratorParams::period_multipliers`].
    pub period: Time,
    /// Per-graph period multipliers (default: the single-period `{1}` of
    /// the paper's experiments). WCETs scale with the multiplier so each
    /// node keeps the target utilization.
    pub period_multipliers: PeriodMultipliers,
    /// Deadline as a per-mille fraction of the period (1000 = deadline
    /// equals period).
    pub deadline_permille: u32,
    /// Target per-node CPU utilization in per-mille (drives the WCET scale).
    pub utilization_permille: u32,
    /// WCET distribution.
    pub wcet_distribution: Distribution,
    /// Message payload size range in bytes, inclusive.
    pub message_size: (u32, u32),
    /// Probability (per-mille) of an extra dependency edge between two
    /// processes of the same graph, beyond the spanning connectivity.
    pub extra_edge_permille: u32,
    /// If set, force exactly this many inter-cluster (gateway-crossing)
    /// messages by steering the mapping (the Figure 9c knob); otherwise the
    /// mapping is uniformly random and inter-cluster traffic emerges
    /// naturally.
    pub inter_cluster_messages: Option<usize>,
    /// RNG seed; every generated system is a pure function of the
    /// parameters and this seed.
    pub seed: u64,
}

impl GeneratorParams {
    /// The paper's configuration for a system of `nodes` application nodes
    /// (half TTC, half ETC): 40 processes per node.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero or odd.
    pub fn paper_sized(nodes: usize, seed: u64) -> Self {
        assert!(
            nodes > 0 && nodes.is_multiple_of(2),
            "paper sizes use even node counts"
        );
        GeneratorParams {
            tt_nodes: nodes / 2,
            et_nodes: nodes / 2,
            processes_per_node: 40,
            graphs: 10 * nodes,
            period: Time::from_millis(1_000),
            period_multipliers: PeriodMultipliers::SINGLE,
            deadline_permille: 1_000,
            utilization_permille: 250,
            wcet_distribution: Distribution::Uniform,
            message_size: (8, 32),
            extra_edge_permille: 200,
            inter_cluster_messages: None,
            seed,
        }
    }

    /// The paper-sized configuration with the `{1, 2, 4}` multi-rate
    /// period set: graphs cycle through the base period, twice and four
    /// times it, giving three phase groups and a 4× hyper-period.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero or odd.
    pub fn multi_rate(nodes: usize, seed: u64) -> Self {
        GeneratorParams {
            period_multipliers: PeriodMultipliers::new(&[1, 2, 4]),
            ..GeneratorParams::paper_sized(nodes, seed)
        }
    }

    /// The paper-sized configuration with the deep-rate
    /// [`PeriodMultipliers::DEEP`] `{1, 8}` set: graphs alternate between
    /// the base period and eight times it (8× hyper-period, two phase
    /// groups).
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero or odd.
    pub fn deep_rate(nodes: usize, seed: u64) -> Self {
        GeneratorParams {
            period_multipliers: PeriodMultipliers::DEEP,
            ..GeneratorParams::paper_sized(nodes, seed)
        }
    }

    /// Total number of application processes.
    pub fn total_processes(&self) -> usize {
        (self.tt_nodes + self.et_nodes) * self.processes_per_node
    }

    /// Named fault-injection scenarios matched to this workload, for
    /// campaign cells (see `mcs_sim::fault`).
    ///
    /// The overload factor scales inversely with the target utilization:
    /// a lightly loaded instance must be hit harder before overload is
    /// observable, while a heavily loaded one degrades with a mild factor.
    pub fn fault_presets(&self) -> Vec<(&'static str, FaultParams)> {
        let overload_factor = (90_000 / self.utilization_permille.max(1)).clamp(110, 300);
        vec![
            ("nominal", FaultParams::NOMINAL),
            ("lossy_can", FaultParams::LOSSY_CAN),
            ("drifting_clocks", FaultParams::DRIFTING_CLOCKS),
            (
                "overload_bursts",
                FaultParams {
                    overload_factor_percent: overload_factor,
                    ..FaultParams::OVERLOAD_BURSTS
                },
            ),
            (
                "harsh",
                FaultParams {
                    overload_factor_percent: overload_factor,
                    ..FaultParams::HARSH
                },
            ),
        ]
    }
}

impl Default for GeneratorParams {
    /// The paper's smallest configuration: 2 nodes, 80 processes.
    fn default() -> Self {
        GeneratorParams::paper_sized(2, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_presets_scale_overload_with_utilization() {
        let light = GeneratorParams {
            utilization_permille: 120,
            ..GeneratorParams::default()
        };
        let heavy = GeneratorParams {
            utilization_permille: 900,
            ..GeneratorParams::default()
        };
        let factor = |p: &GeneratorParams| {
            p.fault_presets()
                .into_iter()
                .find(|(name, _)| *name == "harsh")
                .map(|(_, f)| f.overload_factor_percent)
                .unwrap()
        };
        assert!(factor(&light) > factor(&heavy));
        assert!(light
            .fault_presets()
            .iter()
            .any(|(name, f)| *name == "nominal" && f.is_nominal()));
    }

    #[test]
    fn paper_sizes_match_section6() {
        for (nodes, procs) in [(2, 80), (4, 160), (6, 240), (8, 320), (10, 400)] {
            let p = GeneratorParams::paper_sized(nodes, 0);
            assert_eq!(p.total_processes(), procs);
            assert_eq!(p.tt_nodes, p.et_nodes);
            assert_eq!(p.message_size, (8, 32));
        }
    }

    #[test]
    #[should_panic(expected = "even node counts")]
    fn odd_node_counts_are_rejected() {
        GeneratorParams::paper_sized(3, 0);
    }

    #[test]
    fn period_multipliers_cycle_over_graphs() {
        let set = PeriodMultipliers::new(&[1, 2, 4]);
        assert_eq!(set.as_slice(), &[1, 2, 4]);
        assert_eq!(set.for_graph(0), 1);
        assert_eq!(set.for_graph(1), 2);
        assert_eq!(set.for_graph(2), 4);
        assert_eq!(set.for_graph(3), 1);
        assert!(!set.is_single());
        assert!(PeriodMultipliers::SINGLE.is_single());
        assert!(PeriodMultipliers::new(&[1, 1]).is_single());
        assert_eq!(GeneratorParams::multi_rate(2, 0).period_multipliers, set);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_multipliers_are_rejected() {
        PeriodMultipliers::new(&[1, 0]);
    }

    #[test]
    fn deep_rate_preset_alternates_one_and_eight() {
        assert_eq!(PeriodMultipliers::DEEP, PeriodMultipliers::new(&[1, 8]));
        assert_eq!(PeriodMultipliers::DEEP.as_slice(), &[1, 8]);
        assert_eq!(PeriodMultipliers::DEEP.for_graph(0), 1);
        assert_eq!(PeriodMultipliers::DEEP.for_graph(1), 8);
        assert_eq!(PeriodMultipliers::DEEP.for_graph(2), 1);
        assert!(!PeriodMultipliers::DEEP.is_single());
        assert_eq!(
            GeneratorParams::deep_rate(2, 0).period_multipliers,
            PeriodMultipliers::DEEP
        );
    }
}
