//! The real-life example of paper §6: a vehicle cruise controller with 40
//! processes on a two-cluster architecture (2 TTC nodes + 2 ETC nodes +
//! gateway), one mode of operation, deadline 250 ms.
//!
//! The original Volvo model is proprietary; this reconstruction follows the
//! paper's stated shape — 40 processes, the "speedup" part mapped on the
//! ETC, everything else on the TTC — with a sensor → estimation → speedup →
//! control-law → actuation pipeline that crosses the gateway twice, exactly
//! like the G1 pattern of Figure 3 at scale.

use mcs_model::{
    Application, Architecture, CanBusParams, GatewayParams, NodeId, NodeRole, ProcessId, System,
    Time, TtpBusParams,
};

/// Node handles of the cruise-controller architecture.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CruiseNodes {
    /// Sensor/actuator TT node.
    pub tt_io: NodeId,
    /// Control-law TT node.
    pub tt_ctrl: NodeId,
    /// Speedup ET node.
    pub et_speedup: NodeId,
    /// Human-machine-interface ET node.
    pub et_hmi: NodeId,
    /// The gateway.
    pub gateway: NodeId,
}

/// The cruise-controller system plus its node handles and the identifier of
/// the single mode's process graph.
#[derive(Clone, Debug)]
pub struct CruiseController {
    /// The complete system (40 processes, one graph, deadline 250 ms).
    pub system: System,
    /// Node handles.
    pub nodes: CruiseNodes,
    /// The end-to-end chain sink (`throttle_actuate`), whose completion
    /// defines the controller's response time.
    pub sink: ProcessId,
}

/// Builds the reconstructed cruise controller.
///
/// # Examples
///
/// ```
/// use mcs_gen::cruise_controller;
///
/// let cc = cruise_controller();
/// assert_eq!(cc.system.application.processes().len(), 40);
/// assert_eq!(
///     cc.system.application.graphs()[0].deadline(),
///     mcs_model::Time::from_millis(250),
/// );
/// ```
pub fn cruise_controller() -> CruiseController {
    let ms = Time::from_millis;
    let mut b = Architecture::builder();
    let tt_io = b.add_node("TT-IO", NodeRole::TimeTriggered);
    let tt_ctrl = b.add_node("TT-CTRL", NodeRole::TimeTriggered);
    let et_speedup = b.add_node("ET-SPEEDUP", NodeRole::EventTriggered);
    let et_hmi = b.add_node("ET-HMI", NodeRole::EventTriggered);
    let gateway = b.add_node("NG", NodeRole::Gateway);
    // 32 kB/s TTP payload rate with 0.5 ms slot overhead; ~83 kbit/s CAN
    // (a long, noisy vehicle bus at its lowest standard rate).
    b.ttp_params(TtpBusParams::new(
        Time::from_micros(250),
        Time::from_micros(500),
    ));
    b.can_params(CanBusParams::new(Time::from_micros(12)));
    let arch = b.build().expect("cruise architecture is valid");

    let mut ab = Application::builder();
    let g = ab.add_graph("cruise", ms(500), ms(250));
    let mut add =
        |name: &str, node: NodeId, wcet_ms: u64| ab.add_process(g, name, node, ms(wcet_ms));

    // Sensor/actuator node (TT-IO).
    let read_speed = add("read_speed", tt_io, 8);
    let read_rpm = add("read_rpm", tt_io, 6);
    let read_brake = add("read_brake", tt_io, 4);
    let read_clutch = add("read_clutch", tt_io, 4);
    let read_buttons = add("read_buttons", tt_io, 5);
    let throttle_actuate = add("throttle_actuate", tt_io, 8);
    let actuator_monitor = add("actuator_monitor", tt_io, 5);
    let brake_light = add("brake_light", tt_io, 3);
    let diag_tt_io = add("diag_tt_io", tt_io, 4);
    let watchdog = add("watchdog", tt_io, 3);

    // Control node (TT-CTRL).
    let filter_speed = add("filter_speed", tt_ctrl, 10);
    let filter_rpm = add("filter_rpm", tt_ctrl, 8);
    let speed_estimate = add("speed_estimate", tt_ctrl, 12);
    let mode_logic = add("mode_logic", tt_ctrl, 8);
    let fault_monitor = add("fault_monitor", tt_ctrl, 6);
    let reference_speed = add("reference_speed", tt_ctrl, 8);
    let pi_controller = add("pi_controller", tt_ctrl, 12);
    let feedforward = add("feedforward", tt_ctrl, 4);
    let gain_schedule = add("gain_schedule", tt_ctrl, 5);
    let torque_request = add("torque_request", tt_ctrl, 6);
    let limp_home = add("limp_home", tt_ctrl, 4);
    let diag_tt_ctrl = add("diag_tt_ctrl", tt_ctrl, 4);

    // Speedup node (ET-SPEEDUP) — the part the paper maps on the ETC.
    let speedup_request = add("speedup_request", et_speedup, 7);
    let ramp_generator = add("ramp_generator", et_speedup, 8);
    let accel_limiter = add("accel_limiter", et_speedup, 7);
    let target_speed = add("target_speed", et_speedup, 8);
    let overshoot_guard = add("overshoot_guard", et_speedup, 6);
    let kickdown_detect = add("kickdown_detect", et_speedup, 5);
    let resume_handler = add("resume_handler", et_speedup, 6);
    let diag_et_speedup = add("diag_et_speedup", et_speedup, 4);

    // HMI node (ET-HMI).
    let hmi_decode = add("hmi_decode", et_hmi, 8);
    let hmi_feedback = add("hmi_feedback", et_hmi, 6);
    let display_update = add("display_update", et_hmi, 10);
    let button_logic = add("button_logic", et_hmi, 8);
    let chime_control = add("chime_control", et_hmi, 4);
    let trip_computer = add("trip_computer", et_hmi, 7);
    let lamp_driver = add("lamp_driver", et_hmi, 4);
    let set_speed_store = add("set_speed_store", et_hmi, 5);
    let cancel_handler = add("cancel_handler", et_hmi, 4);
    let diag_et_hmi = add("diag_et_hmi", et_hmi, 4);

    // Main control pipeline: sensors → estimation → speedup (ETC) →
    // control law (TTC) → actuation. Crosses the gateway twice.
    ab.link(read_speed, filter_speed, 8);
    ab.link(read_rpm, filter_rpm, 8);
    ab.link(filter_speed, speed_estimate, 0);
    ab.link(filter_rpm, speed_estimate, 0);
    ab.link(speed_estimate, speedup_request, 8); // TTC → ETC
    ab.link(speedup_request, ramp_generator, 0);
    ab.link(target_speed, ramp_generator, 0);
    ab.link(ramp_generator, accel_limiter, 0);
    ab.link(kickdown_detect, accel_limiter, 0);
    ab.link(accel_limiter, reference_speed, 8); // ETC → TTC
    ab.link(overshoot_guard, reference_speed, 4); // ETC → TTC
    ab.link(mode_logic, reference_speed, 0);
    ab.link(reference_speed, pi_controller, 0);
    ab.link(speed_estimate, pi_controller, 0);
    ab.link(gain_schedule, pi_controller, 0);
    ab.link(speed_estimate, gain_schedule, 0);
    ab.link(pi_controller, feedforward, 0);
    ab.link(pi_controller, torque_request, 0);
    ab.link(feedforward, torque_request, 0);
    ab.link(torque_request, throttle_actuate, 8); // TTC → TTC
    ab.link(torque_request, limp_home, 0);
    ab.link(throttle_actuate, actuator_monitor, 0);

    // HMI interaction: buttons → HMI logic (ETC) → mode logic (TTC).
    ab.link(read_buttons, button_logic, 4); // TTC → ETC
    ab.link(button_logic, hmi_decode, 0);
    ab.link(hmi_decode, mode_logic, 4); // ETC → TTC
    ab.link(hmi_decode, display_update, 0);
    ab.link(display_update, lamp_driver, 0);
    ab.link(button_logic, set_speed_store, 0);
    ab.link(set_speed_store, target_speed, 4); // ETC → ETC over CAN
    ab.link(read_clutch, mode_logic, 4); // TTC → TTC
    ab.link(mode_logic, hmi_feedback, 4); // TTC → ETC
    ab.link(hmi_feedback, chime_control, 0);
    ab.link(filter_speed, trip_computer, 8); // TTC → ETC

    // Cancellation path: brake pedal cancels the speedup.
    ab.link(read_brake, cancel_handler, 4); // TTC → ETC
    ab.link(cancel_handler, resume_handler, 4); // ETC → ETC over CAN
    ab.link(resume_handler, overshoot_guard, 0);
    ab.link(read_brake, kickdown_detect, 4); // TTC → ETC
    ab.link(read_brake, brake_light, 0);

    // Monitoring.
    ab.link(speed_estimate, fault_monitor, 0);
    ab.link(fault_monitor, brake_light, 4); // TTC → TTC

    // Independent diagnostics keep their nodes honest but are off the
    // critical path.
    let _ = (
        diag_tt_io,
        diag_tt_ctrl,
        diag_et_speedup,
        diag_et_hmi,
        watchdog,
    );

    let app = ab.build(&arch).expect("cruise application is valid");
    let system = System::with_gateway(app, arch, GatewayParams::new(ms(1), ms(5)));
    CruiseController {
        system,
        nodes: CruiseNodes {
            tt_io,
            tt_ctrl,
            et_speedup,
            et_hmi,
            gateway,
        },
        sink: throttle_actuate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_model::MessageRoute;

    #[test]
    fn forty_processes_one_graph_deadline_250() {
        let cc = cruise_controller();
        let app = &cc.system.application;
        assert_eq!(app.processes().len(), 40);
        assert_eq!(app.graphs().len(), 1);
        assert_eq!(app.graphs()[0].deadline(), Time::from_millis(250));
    }

    #[test]
    fn speedup_part_is_on_the_etc() {
        let cc = cruise_controller();
        let app = &cc.system.application;
        let speedup: Vec<_> = app
            .processes()
            .iter()
            .filter(|p| p.node() == cc.nodes.et_speedup)
            .collect();
        assert_eq!(speedup.len(), 8);
        assert!(speedup.iter().any(|p| p.name() == "ramp_generator"));
    }

    #[test]
    fn pipeline_crosses_the_gateway_in_both_directions() {
        let cc = cruise_controller();
        let to_etc = cc.system.messages_on_route(MessageRoute::TtcToEtc).len();
        let to_ttc = cc.system.messages_on_route(MessageRoute::EtcToTtc).len();
        assert!(to_etc >= 3, "expected TTC→ETC traffic, got {to_etc}");
        assert!(to_ttc >= 3, "expected ETC→TTC traffic, got {to_ttc}");
    }

    #[test]
    fn sink_is_the_throttle_actuator() {
        let cc = cruise_controller();
        let app = &cc.system.application;
        assert_eq!(app.process(cc.sink).name(), "throttle_actuate");
        // The sink is not a graph source.
        assert!(!app.predecessors(cc.sink).is_empty());
    }

    #[test]
    fn node_utilizations_are_moderate() {
        let cc = cruise_controller();
        for node in cc.system.architecture.nodes() {
            let u = cc.system.application.node_utilization(node.id());
            assert!(u < 0.5, "node {} overloaded: {u}", node.name());
        }
    }
}
