//! Run-time benchmarks of the synthesis heuristics, backing the paper's §6
//! claim that the greedy heuristics run "more than two orders of magnitude"
//! faster than the simulated-annealing references ("a couple of minutes"
//! versus "up to three hours" at paper scale). All runs go through the
//! `Synthesis` front door.

use criterion::{criterion_group, criterion_main, Criterion};

use mcs_gen::{generate, GeneratorParams};
use mcs_opt::{hopa_priorities, Or, OrParams, Os, OsParams, Sa, SaParams, Synthesis};

fn bench_os_vs_sas(c: &mut Criterion) {
    let mut group = c.benchmark_group("os_vs_sas");
    group.sample_size(10);
    let system = generate(&GeneratorParams::paper_sized(2, 7));
    group.bench_function("os_80_processes", |b| {
        b.iter(|| {
            Synthesis::builder(&system)
                .strategy(Os::new(OsParams::default()))
                .run()
                .expect("analyzable")
        })
    });
    // Even a *short* 100-iteration anneal costs an order of magnitude more
    // than the greedy heuristic; the paper's reference runs used far more.
    group.bench_function("sas_100_iterations", |b| {
        b.iter(|| {
            Synthesis::builder(&system)
                .strategy(Sa::schedule(SaParams {
                    iterations: 100,
                    ..SaParams::default()
                }))
                .run()
                .expect("analyzable")
        })
    });
    group.finish();
}

fn bench_or(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimize_resources");
    group.sample_size(10);
    let system = generate(&GeneratorParams::paper_sized(2, 7));
    group.bench_function("or_80_processes", |b| {
        b.iter(|| {
            Synthesis::builder(&system)
                .strategy(Or::new(OrParams::default()))
                .run()
                .expect("analyzable")
        })
    });
    group.finish();
}

fn bench_hopa(c: &mut Criterion) {
    let system = generate(&GeneratorParams::paper_sized(4, 7));
    let tdma = mcs_opt::straightforward_config(&system).tdma;
    c.bench_function("hopa_160_processes", |b| {
        b.iter(|| hopa_priorities(&system, &tdma))
    });
}

criterion_group!(benches, bench_os_vs_sas, bench_or, bench_hopa);
criterion_main!(benches);
