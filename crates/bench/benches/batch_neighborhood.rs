//! Batched vs sequential candidate fan-out (`Evaluator::evaluate_batch` vs
//! one `evaluate_delta` per candidate), on the Fig-9c instance the
//! `delta_rta` section tracks. Two workloads:
//!
//! * **OS resource scan** — the full candidate set of one per-resource
//!   permutation scan position (every unassigned node × every recommended
//!   slot length, HOPA priorities per candidate, structural seeds), exactly
//!   what `Os` submits per position;
//! * **SA proposal stream** — a complete SAS run, sequential vs
//!   `Sa::batch(8)` speculative windows (identical trajectories by the
//!   `batch_equivalence` contract; only the evaluation schedule differs).
//!
//! Emits the `batch_neighborhood` section of `BENCH_core.json`. The batch
//! lanes run data-parallel across rayon workers, so the throughput ratio
//! scales with the recorded `threads` count — on a single-CPU runner the
//! section documents the (near-1×) sequential-hardware floor, not the
//! contract.

use criterion::{criterion_group, criterion_main, Criterion};

use mcs_core::{AnalysisParams, BatchRequest, BatchScratch, DeltaSeeds, Evaluator};
use mcs_gen::{generate, GeneratorParams};
use mcs_model::{NodeId, System, SystemConfig, TdmaConfig, TdmaSlot};
use mcs_opt::{
    hopa_priorities, minimal_slot_capacities, recommended_lengths, Sa, SaParams, Synthesis,
};

fn fig9c() -> System {
    let mut params = GeneratorParams::paper_sized(4, 1_000);
    params.inter_cluster_messages = Some(10);
    generate(&params)
}

/// The candidate set of one OS scan position (position 0, default
/// `max_slot_candidates`): every unassigned node tried in the position,
/// every recommended length, exactly as `Os` builds them.
fn os_scan_requests(system: &System) -> Vec<BatchRequest> {
    let caps = minimal_slot_capacities(system);
    let order: Vec<NodeId> = system.architecture.ttp_nodes().map(|n| n.id()).collect();
    let mut slots: Vec<TdmaSlot> = order
        .iter()
        .map(|&node| TdmaSlot {
            node,
            capacity_bytes: caps[&node],
        })
        .collect();
    let structural = DeltaSeeds::structural();
    let mut requests = Vec::new();
    let position = 0;
    for j in position..slots.len() {
        slots.swap(position, j);
        let node = slots[position].node;
        let lengths = recommended_lengths(system, node);
        let saved = slots[position].capacity_bytes;
        for &len in lengths.iter().take(3) {
            slots[position].capacity_bytes = len.max(caps[&node]);
            let tdma = TdmaConfig::new(slots.clone());
            let priorities = hopa_priorities(system, &tdma);
            requests.push(BatchRequest {
                config: SystemConfig::new(tdma, priorities),
                seeds: structural.clone(),
            });
        }
        slots[position].capacity_bytes = saved;
        slots.swap(position, j);
    }
    requests
}

fn sa_params() -> SaParams {
    SaParams {
        iterations: 300,
        ..SaParams::default()
    }
}

fn run_sas(system: &System, width: usize) -> u64 {
    Synthesis::builder(system)
        .analysis(AnalysisParams::default())
        .strategy(Sa::schedule(sa_params()).batch(width))
        .run()
        .expect("the SA start configuration is analyzable")
        .evaluations
}

fn bench_batch_neighborhood(c: &mut Criterion) {
    let system = fig9c();
    let analysis = AnalysisParams::default();
    let requests = os_scan_requests(&system);

    let mut group = c.benchmark_group("batch_neighborhood");
    group.sample_size(10);

    // OS resource scan: one reused evaluator per path, like the real loop.
    let mut sequential = Evaluator::new(&system, analysis);
    group.bench_function("os_scan_sequential_delta", |b| {
        b.iter(|| {
            for request in &requests {
                let _ = sequential.evaluate_delta(&request.config, &request.seeds);
            }
        })
    });
    let mut batched = Evaluator::new(&system, analysis);
    let mut scratch = BatchScratch::new();
    group.bench_function("os_scan_batched", |b| {
        b.iter(|| batched.evaluate_batch(&mut scratch, &requests))
    });

    // SA proposal stream: whole strategy runs (identical trajectories).
    group.bench_function("sa_sequential", |b| b.iter(|| run_sas(&system, 1)));
    group.bench_function("sa_batched_w8", |b| b.iter(|| run_sas(&system, 8)));
    group.finish();

    // Bit-identity spot check outside the timed loops (the
    // `batch_equivalence` suite does the real work).
    let sequential_results: Vec<_> = requests
        .iter()
        .map(|r| sequential.evaluate_delta(&r.config, &r.seeds))
        .collect();
    let batched_results = batched.evaluate_batch(&mut scratch, &requests);
    assert_eq!(
        sequential_results, batched_results,
        "batched OS scan drifted from the sequential delta path"
    );
    let sa_evaluations = run_sas(&system, 1);
    assert_eq!(
        sa_evaluations,
        run_sas(&system, 8),
        "batched SA drifted from the sequential trajectory"
    );

    let result_of = |criterion: &Criterion, suffix: &str, per_iter: f64| {
        criterion
            .results
            .iter()
            .rev()
            .find(|r| r.id.ends_with(suffix))
            .map(|r| per_iter * 1e9 / r.mean_ns)
            .unwrap_or(0.0)
    };
    let scan = requests.len() as f64;
    let scan_sequential = result_of(c, "os_scan_sequential_delta", scan);
    let scan_batched = result_of(c, "os_scan_batched", scan);
    let sa = sa_evaluations as f64;
    let sa_sequential = result_of(c, "sa_sequential", sa);
    let sa_batched = result_of(c, "sa_batched_w8", sa);
    let body = format!(
        "{{\"instance\": \"fig9c paper_sized(4, 1000) + 10 inter-cluster — 160 processes\", \
         \"threads\": {}, \
         \"os_scan_candidates\": {}, \
         \"os_scan_sequential_evals_per_sec\": {scan_sequential:.2}, \
         \"os_scan_batched_evals_per_sec\": {scan_batched:.2}, \
         \"os_scan_speedup\": {:.2}, \
         \"sa_trace_evaluations\": {sa_evaluations}, \
         \"sa_sequential_evals_per_sec\": {sa_sequential:.2}, \
         \"sa_batched_w8_evals_per_sec\": {sa_batched:.2}, \
         \"sa_speedup\": {:.2}}}",
        rayon::current_num_threads(),
        requests.len(),
        scan_batched / scan_sequential.max(f64::MIN_POSITIVE),
        sa_batched / sa_sequential.max(f64::MIN_POSITIVE),
    );
    mcs_bench::record_bench_section("batch_neighborhood", &body);
    println!(
        "batch_neighborhood: OS scan {scan_sequential:.0}/s -> {scan_batched:.0}/s, \
         SA {sa_sequential:.0}/s -> {sa_batched:.0}/s on {} thread(s)",
        rayon::current_num_threads()
    );
}

criterion_group!(benches, bench_batch_neighborhood);
criterion_main!(benches);
