//! Run-time benchmarks of the analysis kernels: the `MultiClusterScheduling`
//! fixed point at the paper's application sizes, the CAN queuing analysis,
//! the FIFO-bound ablation, and the discrete-event simulator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mcs_core::{multi_cluster_scheduling, AnalysisParams, FifoBound};
use mcs_gen::{cruise_controller, generate, GeneratorParams};
use mcs_model::Time;
use mcs_opt::straightforward_config;
use mcs_sim::{simulate, SimParams};

fn bench_multi_cluster_scheduling(c: &mut Criterion) {
    let mut group = c.benchmark_group("multi_cluster_scheduling");
    group.sample_size(10);
    for nodes in [2usize, 4, 6] {
        let system = generate(&GeneratorParams::paper_sized(nodes, 7));
        let config = straightforward_config(&system);
        let params = AnalysisParams::default();
        group.bench_with_input(
            BenchmarkId::from_parameter(nodes * 40),
            &nodes,
            |b, _| {
                b.iter(|| {
                    multi_cluster_scheduling(&system, &config, &params).expect("analyzable")
                })
            },
        );
    }
    group.finish();
}

fn bench_fifo_bound_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("fifo_bound");
    group.sample_size(10);
    let system = generate(&GeneratorParams::paper_sized(4, 7));
    let config = straightforward_config(&system);
    for (label, bound) in [
        ("paper_closed_form", FifoBound::PaperClosedForm),
        ("slot_occurrence", FifoBound::SlotOccurrence),
    ] {
        let params = AnalysisParams {
            fifo_bound: bound,
            ..AnalysisParams::default()
        };
        group.bench_function(label, |b| {
            b.iter(|| multi_cluster_scheduling(&system, &config, &params).expect("analyzable"))
        });
    }
    group.finish();
}

fn bench_can_rta(c: &mut Criterion) {
    // A synthetic 64-flow CAN bus at moderate utilization.
    let flows: Vec<mcs_can::CanFlow> = (0..64)
        .map(|i| mcs_can::CanFlow {
            priority: mcs_model::Priority::new(i),
            period: Time::from_millis(100 + u64::from(i) * 10),
            jitter: Time::from_micros(u64::from(i) * 50),
            offset: Time::ZERO,
            transaction: None,
            transmission: Time::from_micros(270),
            size_bytes: 8,
            response: Time::ZERO,
        })
        .collect();
    c.bench_function("can_rta_64_flows", |b| {
        b.iter(|| mcs_can::queuing_delays(&flows, Time::from_millis(10_000)))
    });
}

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    let cc = cruise_controller();
    let analysis = AnalysisParams::default();
    let os = mcs_opt::optimize_schedule(&cc.system, &analysis, &mcs_opt::OsParams::default());
    let outcome =
        multi_cluster_scheduling(&cc.system, &os.best.config, &analysis).expect("analyzable");
    group.bench_function("cruise_4_activations", |b| {
        b.iter(|| {
            simulate(
                &cc.system,
                &os.best.config,
                &outcome,
                &SimParams::default(),
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_multi_cluster_scheduling,
    bench_fifo_bound_variants,
    bench_can_rta,
    bench_simulator
);
criterion_main!(benches);
