//! Run-time benchmarks of the analysis kernels: the `MultiClusterScheduling`
//! fixed point at the paper's application sizes, fresh-per-call vs
//! context-reuse evaluation, the CAN queuing analysis, the FIFO-bound
//! ablation, and the discrete-event simulator.
//!
//! The `evaluator_reuse` group additionally writes `BENCH_core.json` (repo
//! root, or `BENCH_CORE_JSON` if set) with evaluations/second for both
//! paths, so the core perf trajectory is tracked from PR 1 onward.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mcs_core::{multi_cluster_scheduling, AnalysisParams, Evaluator, FifoBound};
use mcs_gen::{cruise_controller, generate, GeneratorParams};
use mcs_model::Time;
use mcs_opt::straightforward_config;
use mcs_sim::{simulate, SimParams};

fn bench_multi_cluster_scheduling(c: &mut Criterion) {
    let mut group = c.benchmark_group("multi_cluster_scheduling");
    group.sample_size(10);
    for nodes in [2usize, 4, 6] {
        let system = generate(&GeneratorParams::paper_sized(nodes, 7));
        let config = straightforward_config(&system);
        let params = AnalysisParams::default();
        group.bench_with_input(BenchmarkId::from_parameter(nodes * 40), &nodes, |b, _| {
            b.iter(|| multi_cluster_scheduling(&system, &config, &params).expect("analyzable"))
        });
    }
    group.finish();
}

/// The seed's fresh-per-call evaluation (verbatim in
/// [`mcs_bench::seed_baseline`]: every derived table and fixed-point vector
/// rebuilt per call) vs one reused [`Evaluator`], on a paper-sized instance
/// (160 processes — the size of the paper's Figure 9c sweep). The
/// equivalence of their results is a test in `seed_baseline`. Emits
/// `BENCH_core.json`.
fn bench_evaluator_reuse(c: &mut Criterion) {
    let mut group = c.benchmark_group("evaluator_reuse");
    group.sample_size(20);
    let system = generate(&GeneratorParams::paper_sized(4, 7));
    let config = {
        let mut c = straightforward_config(&system);
        c.priorities = mcs_opt::hopa_priorities(&system, &c.tdma);
        c
    };
    let params = AnalysisParams::default();

    group.bench_function("seed_fresh_per_call", |b| {
        b.iter(|| {
            mcs_bench::seed_baseline::seed_evaluate(&system, config.clone(), &params)
                .expect("analyzable")
        })
    });
    group.bench_function("fresh_per_call", |b| {
        b.iter(|| mcs_opt::evaluate(&system, config.clone(), &params).expect("analyzable"))
    });
    let mut evaluator = Evaluator::new(&system, params);
    group.bench_function("context_reuse", |b| {
        b.iter(|| evaluator.evaluate(&config).expect("analyzable"))
    });
    group.finish();
    drop(group);

    // Persist evaluations/second for the perf trajectory.
    let result_of = |criterion: &Criterion, suffix: &str| {
        criterion
            .results
            .iter()
            .rev()
            .find(|r| r.id.ends_with(suffix))
            .map(|r| 1e9 / r.mean_ns)
            .unwrap_or(0.0)
    };
    let seed = result_of(c, "seed_fresh_per_call");
    let fresh = result_of(c, "fresh_per_call");
    let reused = result_of(c, "context_reuse");
    let body = format!(
        "{{\"instance\": \"paper_sized(4, 7) — 160 processes\", \
         \"seed_evaluations_per_sec\": {seed:.2}, \
         \"fresh_evaluations_per_sec\": {fresh:.2}, \
         \"reused_evaluations_per_sec\": {reused:.2}, \
         \"speedup_vs_seed\": {:.2}, \"speedup_vs_fresh\": {:.2}}}",
        reused / seed.max(f64::MIN_POSITIVE),
        reused / fresh.max(f64::MIN_POSITIVE)
    );
    mcs_bench::record_bench_section("evaluator_reuse", &body);
}

/// The delta-RTA bench: the frozen PR 1 evaluator vs the full and the delta
/// seedings of the worklist engine, replaying one SA move trace (sampled
/// moves with recorded accept/reject decisions) on a 160-process instance.
/// All replays visit identical configurations and — by the delta contract —
/// produce bit-identical results; only the kernel work differs. One bench
/// group and one `BENCH_core.json` section per instance:
///
/// * `delta_rta` — the Fig-9c single-period instance (10 inter-cluster
///   messages), the PR 2 baseline workload;
/// * `delta_rta_multiperiod` — the same instance generated with the
///   `{1, 2, 4}` period-multiplier set, where distinct phase groups give
///   the value gating real structure to prune inside priority bands.
fn bench_delta_rta(c: &mut Criterion) {
    let mut params = GeneratorParams::paper_sized(4, 1_000);
    params.inter_cluster_messages = Some(10);
    bench_delta_rta_on(
        c,
        "delta_rta",
        "fig9c paper_sized(4, 1000) + 10 inter-cluster — 160 processes",
        params,
    );
}

fn bench_delta_rta_multiperiod(c: &mut Criterion) {
    let mut params = GeneratorParams::multi_rate(4, 1_000);
    params.inter_cluster_messages = Some(10);
    bench_delta_rta_on(
        c,
        "delta_rta_multiperiod",
        "fig9c multi_rate(4, 1000) {1,2,4} + 10 inter-cluster — 160 processes",
        params,
    );
}

/// One delta-RTA trace-replay group: records the trace with a scout
/// evaluator, times the three replays, spot-checks their bit-identity and
/// emits the named section of `BENCH_core.json`.
fn bench_delta_rta_on(
    c: &mut Criterion,
    section: &str,
    instance_label: &str,
    params: GeneratorParams,
) {
    use mcs_opt::sa_start;

    let system = generate(&params);
    let analysis = AnalysisParams::default();
    let start = sa_start(&system);

    // Record the trace once with a scout evaluator: the same sampled moves
    // and accept decisions are then replayed through every path.
    let trace = record_sa_trace(&system, &start, &analysis, 300);

    let mut group = c.benchmark_group(section);
    group.sample_size(10);
    group.bench_function("pr1_reused_path", |b| {
        b.iter(|| replay_pr1(&system, &start, &analysis, &trace))
    });
    group.bench_function("full_path", |b| {
        b.iter(|| replay_full(&system, &start, &analysis, &trace))
    });
    group.bench_function("delta_path", |b| {
        b.iter(|| replay_delta(&system, &start, &analysis, &trace))
    });
    group.finish();

    // All replays must land on the same final result (bit-identity spot
    // check outside the timed loops; the property tests do the real work).
    let pr1_final = replay_pr1(&system, &start, &analysis, &trace);
    let full_final = replay_full(&system, &start, &analysis, &trace);
    let delta_final = replay_delta(&system, &start, &analysis, &trace);
    assert_eq!(full_final, delta_final, "delta replay drifted from full");
    assert_eq!(
        (full_final.schedule_cost(), full_final.total_buffers),
        pr1_final,
        "current evaluator drifted from the PR 1 baseline"
    );

    let result_of = |criterion: &Criterion, suffix: &str| {
        criterion
            .results
            .iter()
            .rev()
            .find(|r| r.id.ends_with(suffix))
            .map(|r| trace.len() as f64 * 1e9 / r.mean_ns)
            .unwrap_or(0.0)
    };
    let pr1_reused = result_of(c, "pr1_reused_path");
    let full = result_of(c, "full_path");
    let delta = result_of(c, "delta_path");
    let (delta_passes, full_passes) = {
        let mut evaluator = Evaluator::new(&system, analysis);
        let mut config = start.clone();
        let mut seeds = mcs_core::DeltaSeeds::new();
        evaluator.evaluate(&config).expect("analyzable");
        for &(mv, accepted) in &trace {
            let undo = mv.apply_undoable_seeded(&mut config, &mut seeds);
            match evaluator.evaluate_delta(&config, &seeds) {
                Ok(_) => {
                    seeds.clear();
                    if !accepted {
                        undo.record_seeds(&mut seeds);
                        undo.revert(&mut config);
                    }
                }
                Err(_) => {
                    undo.record_seeds(&mut seeds);
                    undo.revert(&mut config);
                }
            }
        }
        evaluator.delta_stats()
    };
    let body = format!(
        "{{\"instance\": \"{instance_label}\", \
         \"trace_moves\": {}, \
         \"pr1_reused_evaluations_per_sec\": {pr1_reused:.2}, \
         \"full_evaluations_per_sec\": {full:.2}, \
         \"delta_evaluations_per_sec\": {delta:.2}, \
         \"speedup_vs_pr1_reused\": {:.2}, \
         \"speedup_vs_full_path\": {:.2}, \
         \"delta_holistic_passes\": {delta_passes}, \
         \"full_holistic_passes\": {full_passes}}}",
        trace.len(),
        delta / pr1_reused.max(f64::MIN_POSITIVE),
        delta / full.max(f64::MIN_POSITIVE),
    );
    mcs_bench::record_bench_section(section, &body);
    println!("{section}: full {full:.0}/s -> delta {delta:.0}/s");
}

type SaTrace = Vec<(mcs_opt::Move, bool)>;

/// Samples `len` SA moves against a scout evaluator, recording each move
/// and whether the annealing acceptance rule of [`mcs_opt::SaParams`]
/// (default temperature schedule, Metropolis criterion on δΓ — exactly the
/// SAS loop) takes it.
fn record_sa_trace(
    system: &mcs_model::System,
    start: &mcs_model::SystemConfig,
    analysis: &AnalysisParams,
    len: usize,
) -> SaTrace {
    use rand::{Rng, SeedableRng};
    let sa = mcs_opt::SaParams::default();
    let mut rng = rand::rngs::StdRng::seed_from_u64(sa.seed);
    let mut evaluator = Evaluator::new(system, *analysis);
    let mut sampler = mcs_opt::MoveSampler::new(system);
    let mut config = start.clone();
    let mut current = evaluator.evaluate(&config).expect("analyzable");
    let mut temperature = sa.initial_temperature;
    let mut trace = Vec::new();
    while trace.len() < len {
        let Some(mv) = sampler.sample(system, &config, &evaluator, &current, &mut rng) else {
            break;
        };
        let undo = mv.apply_undoable(&mut config);
        temperature *= sa.cooling;
        match evaluator.evaluate(&config) {
            Ok(candidate) => {
                let delta = (candidate.schedule_cost() - current.schedule_cost()) as f64;
                let accept = delta <= 0.0 || {
                    let t = temperature.max(f64::MIN_POSITIVE);
                    rng.gen::<f64>() < (-delta / t).exp()
                };
                if accept {
                    current = candidate;
                } else {
                    undo.revert(&mut config);
                }
                trace.push((mv, accept));
            }
            Err(_) => {
                undo.revert(&mut config);
                trace.push((mv, false));
            }
        }
    }
    trace
}

/// Replays the trace through the frozen PR 1 evaluator — the criterion's
/// baseline: "the PR 1 reused path" on the very same workload.
fn replay_pr1(
    system: &mcs_model::System,
    start: &mcs_model::SystemConfig,
    analysis: &AnalysisParams,
    trace: &SaTrace,
) -> (i128, u64) {
    let mut evaluator = mcs_bench::pr1_baseline::Pr1Evaluator::new(system, *analysis);
    let mut config = start.clone();
    let mut last = evaluator.evaluate(&config).expect("analyzable");
    for &(mv, accepted) in trace {
        let undo = mv.apply_undoable(&mut config);
        match evaluator.evaluate(&config) {
            Ok(summary) => {
                last = summary;
                if !accepted {
                    undo.revert(&mut config);
                }
            }
            Err(_) => undo.revert(&mut config),
        }
    }
    (last.schedule_cost(), last.total_buffers)
}

fn replay_full(
    system: &mcs_model::System,
    start: &mcs_model::SystemConfig,
    analysis: &AnalysisParams,
    trace: &SaTrace,
) -> mcs_core::EvalSummary {
    let mut evaluator = Evaluator::new(system, *analysis);
    let mut config = start.clone();
    let mut last = evaluator.evaluate(&config).expect("analyzable");
    for &(mv, accepted) in trace {
        let undo = mv.apply_undoable(&mut config);
        match evaluator.evaluate(&config) {
            Ok(summary) => {
                last = summary;
                if !accepted {
                    undo.revert(&mut config);
                }
            }
            Err(_) => undo.revert(&mut config),
        }
    }
    last
}

fn replay_delta(
    system: &mcs_model::System,
    start: &mcs_model::SystemConfig,
    analysis: &AnalysisParams,
    trace: &SaTrace,
) -> mcs_core::EvalSummary {
    let mut evaluator = Evaluator::new(system, *analysis);
    let mut config = start.clone();
    let mut seeds = mcs_core::DeltaSeeds::new();
    let mut last = evaluator.evaluate(&config).expect("analyzable");
    for &(mv, accepted) in trace {
        let undo = mv.apply_undoable_seeded(&mut config, &mut seeds);
        match evaluator.evaluate_delta(&config, &seeds) {
            Ok(summary) => {
                seeds.clear();
                last = summary;
                if !accepted {
                    undo.record_seeds(&mut seeds);
                    undo.revert(&mut config);
                }
            }
            Err(_) => {
                undo.record_seeds(&mut seeds);
                undo.revert(&mut config);
            }
        }
    }
    last
}

fn bench_fifo_bound_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("fifo_bound");
    group.sample_size(10);
    let system = generate(&GeneratorParams::paper_sized(4, 7));
    let config = straightforward_config(&system);
    for (label, bound) in [
        ("paper_closed_form", FifoBound::PaperClosedForm),
        ("slot_occurrence", FifoBound::SlotOccurrence),
    ] {
        let params = AnalysisParams {
            fifo_bound: bound,
            ..AnalysisParams::default()
        };
        group.bench_function(label, |b| {
            b.iter(|| multi_cluster_scheduling(&system, &config, &params).expect("analyzable"))
        });
    }
    group.finish();
}

fn bench_can_rta(c: &mut Criterion) {
    // A synthetic 64-flow CAN bus at moderate utilization.
    let flows: Vec<mcs_can::CanFlow> = (0..64)
        .map(|i| mcs_can::CanFlow {
            priority: mcs_model::Priority::new(i),
            period: Time::from_millis(100 + u64::from(i) * 10),
            jitter: Time::from_micros(u64::from(i) * 50),
            offset: Time::ZERO,
            transaction: None,
            transmission: Time::from_micros(270),
            size_bytes: 8,
            response: Time::ZERO,
        })
        .collect();
    c.bench_function("can_rta_64_flows", |b| {
        b.iter(|| mcs_can::queuing_delays(&flows, Time::from_millis(10_000)))
    });
}

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    let cc = cruise_controller();
    let analysis = AnalysisParams::default();
    let os = mcs_opt::Synthesis::builder(&cc.system)
        .analysis(analysis)
        .strategy(mcs_opt::Os::new(mcs_opt::OsParams::default()))
        .run()
        .expect("analyzable");
    let outcome =
        multi_cluster_scheduling(&cc.system, &os.best.config, &analysis).expect("analyzable");
    group.bench_function("cruise_4_activations", |b| {
        b.iter(|| {
            simulate(&cc.system, &os.best.config, &outcome, &SimParams::default())
                .expect("simulable")
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_multi_cluster_scheduling,
    bench_evaluator_reuse,
    bench_delta_rta,
    bench_delta_rta_multiperiod,
    bench_fifo_bound_variants,
    bench_can_rta,
    bench_simulator
);
criterion_main!(benches);
