//! Run-time benchmarks of the analysis kernels: the `MultiClusterScheduling`
//! fixed point at the paper's application sizes, fresh-per-call vs
//! context-reuse evaluation, the CAN queuing analysis, the FIFO-bound
//! ablation, and the discrete-event simulator.
//!
//! The `evaluator_reuse` group additionally writes `BENCH_core.json` (repo
//! root, or `BENCH_CORE_JSON` if set) with evaluations/second for both
//! paths, so the core perf trajectory is tracked from PR 1 onward.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mcs_core::{multi_cluster_scheduling, AnalysisParams, Evaluator, FifoBound};
use mcs_gen::{cruise_controller, generate, GeneratorParams};
use mcs_model::Time;
use mcs_opt::straightforward_config;
use mcs_sim::{simulate, SimParams};

fn bench_multi_cluster_scheduling(c: &mut Criterion) {
    let mut group = c.benchmark_group("multi_cluster_scheduling");
    group.sample_size(10);
    for nodes in [2usize, 4, 6] {
        let system = generate(&GeneratorParams::paper_sized(nodes, 7));
        let config = straightforward_config(&system);
        let params = AnalysisParams::default();
        group.bench_with_input(BenchmarkId::from_parameter(nodes * 40), &nodes, |b, _| {
            b.iter(|| multi_cluster_scheduling(&system, &config, &params).expect("analyzable"))
        });
    }
    group.finish();
}

/// The seed's fresh-per-call evaluation (verbatim in
/// [`mcs_bench::seed_baseline`]: every derived table and fixed-point vector
/// rebuilt per call) vs one reused [`Evaluator`], on a paper-sized instance
/// (160 processes — the size of the paper's Figure 9c sweep). The
/// equivalence of their results is a test in `seed_baseline`. Emits
/// `BENCH_core.json`.
fn bench_evaluator_reuse(c: &mut Criterion) {
    let mut group = c.benchmark_group("evaluator_reuse");
    group.sample_size(20);
    let system = generate(&GeneratorParams::paper_sized(4, 7));
    let config = {
        let mut c = straightforward_config(&system);
        c.priorities = mcs_opt::hopa_priorities(&system, &c.tdma);
        c
    };
    let params = AnalysisParams::default();

    group.bench_function("seed_fresh_per_call", |b| {
        b.iter(|| {
            mcs_bench::seed_baseline::seed_evaluate(&system, config.clone(), &params)
                .expect("analyzable")
        })
    });
    group.bench_function("fresh_per_call", |b| {
        b.iter(|| mcs_opt::evaluate(&system, config.clone(), &params).expect("analyzable"))
    });
    let mut evaluator = Evaluator::new(&system, params);
    group.bench_function("context_reuse", |b| {
        b.iter(|| evaluator.evaluate(&config).expect("analyzable"))
    });
    group.finish();
    drop(group);

    // Persist evaluations/second for the perf trajectory.
    let result_of = |criterion: &Criterion, suffix: &str| {
        criterion
            .results
            .iter()
            .rev()
            .find(|r| r.id.ends_with(suffix))
            .map(|r| 1e9 / r.mean_ns)
            .unwrap_or(0.0)
    };
    let seed = result_of(c, "seed_fresh_per_call");
    let fresh = result_of(c, "fresh_per_call");
    let reused = result_of(c, "context_reuse");
    let json = format!(
        "{{\n  \"bench\": \"evaluator_reuse\",\n  \"instance\": \"paper_sized(4, 7) — 160 \
         processes\",\n  \"seed_evaluations_per_sec\": {seed:.2},\n  \
         \"fresh_evaluations_per_sec\": {fresh:.2},\n  \
         \"reused_evaluations_per_sec\": {reused:.2},\n  \
         \"speedup_vs_seed\": {:.2},\n  \"speedup_vs_fresh\": {:.2}\n}}\n",
        reused / seed.max(f64::MIN_POSITIVE),
        reused / fresh.max(f64::MIN_POSITIVE)
    );
    let path = std::env::var("BENCH_CORE_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_core.json").to_string()
    });
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("could not write {path}: {e}");
    } else {
        println!("wrote {path}: {fresh:.0} -> {reused:.0} evaluations/s");
    }
}

fn bench_fifo_bound_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("fifo_bound");
    group.sample_size(10);
    let system = generate(&GeneratorParams::paper_sized(4, 7));
    let config = straightforward_config(&system);
    for (label, bound) in [
        ("paper_closed_form", FifoBound::PaperClosedForm),
        ("slot_occurrence", FifoBound::SlotOccurrence),
    ] {
        let params = AnalysisParams {
            fifo_bound: bound,
            ..AnalysisParams::default()
        };
        group.bench_function(label, |b| {
            b.iter(|| multi_cluster_scheduling(&system, &config, &params).expect("analyzable"))
        });
    }
    group.finish();
}

fn bench_can_rta(c: &mut Criterion) {
    // A synthetic 64-flow CAN bus at moderate utilization.
    let flows: Vec<mcs_can::CanFlow> = (0..64)
        .map(|i| mcs_can::CanFlow {
            priority: mcs_model::Priority::new(i),
            period: Time::from_millis(100 + u64::from(i) * 10),
            jitter: Time::from_micros(u64::from(i) * 50),
            offset: Time::ZERO,
            transaction: None,
            transmission: Time::from_micros(270),
            size_bytes: 8,
            response: Time::ZERO,
        })
        .collect();
    c.bench_function("can_rta_64_flows", |b| {
        b.iter(|| mcs_can::queuing_delays(&flows, Time::from_millis(10_000)))
    });
}

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    let cc = cruise_controller();
    let analysis = AnalysisParams::default();
    let os = mcs_opt::optimize_schedule(&cc.system, &analysis, &mcs_opt::OsParams::default());
    let outcome =
        multi_cluster_scheduling(&cc.system, &os.best.config, &analysis).expect("analyzable");
    group.bench_function("cruise_4_activations", |b| {
        b.iter(|| simulate(&cc.system, &os.best.config, &outcome, &SimParams::default()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_multi_cluster_scheduling,
    bench_evaluator_reuse,
    bench_fifo_bound_variants,
    bench_can_rta,
    bench_simulator
);
criterion_main!(benches);
