//! The **seed implementation** of the evaluation path, preserved verbatim
//! (modulo `use` paths) from the initial import for benchmarking: every
//! `evaluate` call rebuilds all derived tables, reallocates every
//! fixed-point vector and cold-starts every kernel fixed point — exactly
//! what the synthesis loops paid per move before the reusable
//! [`mcs_core::Evaluator`] existed. The `evaluator_reuse` bench measures
//! the reused evaluator against this baseline; the equivalence of their
//! results is asserted by a test below and by the property tests in
//! `mcs-opt`.

#![allow(missing_docs)] // verbatim seed code, kept only as a benchmark baseline

use std::collections::HashMap;

use mcs_can::CanFlow;
use mcs_core::{
    degree_of_schedulability, fifo_delay, fifo_delay_occurrence, fifo_size_bound,
    interference_delays, validate_config, AnalysisError, AnalysisOutcome, AnalysisParams,
    EntityTiming, FifoBound, FifoFlow, MessageTiming, QueueBounds, SchedulabilityDegree, TaskFlow,
    TtpQueueParams,
};
use mcs_model::{MessageId, MessageRoute, NodeId, Priority, ProcessId, System, SystemConfig, Time};
use mcs_ttp::{list_schedule, SchedulerInput, TtcSchedule};

/// The seed's `mcs_opt::evaluate`: one fresh analysis plus the cost scalars.
///
/// # Errors
///
/// Propagates [`AnalysisError`] like the seed did.
pub fn seed_evaluate(
    system: &System,
    config: SystemConfig,
    params: &AnalysisParams,
) -> Result<(SchedulabilityDegree, u64, AnalysisOutcome), AnalysisError> {
    let outcome = seed_multi_cluster_scheduling(system, &config, params)?;
    let degree = degree_of_schedulability(system, &outcome);
    let buffers = outcome.queues.total();
    Ok((degree, buffers, outcome))
}

/// Runs `MultiClusterScheduling(Γ, β, π)` and returns the offsets φ,
/// response times ρ, queue bounds and graph response times.
///
/// # Errors
///
/// Returns [`AnalysisError`] if ψ is invalid or the TTC traffic cannot be
/// scheduled at all. An *unschedulable but well-formed* system is **not** an
/// error: it yields an outcome whose graph response times exceed their
/// deadlines (see [`mcs_core::degree_of_schedulability`]).
///
/// # Examples
///
/// See the crate-level documentation of [`mcs-core`](crate) for a complete
/// worked example.
pub fn seed_multi_cluster_scheduling(
    system: &System,
    config: &SystemConfig,
    params: &AnalysisParams,
) -> Result<AnalysisOutcome, AnalysisError> {
    validate_config(system, config)?;
    let app = &system.application;
    let horizon = app
        .hyperperiod()
        .saturating_mul(params.horizon_factor.max(1));

    let mut process_releases: HashMap<ProcessId, Time> = HashMap::new();
    let mut message_releases: HashMap<MessageId, Time> = HashMap::new();
    seed_pins(system, config, &mut process_releases, &mut message_releases);

    let mut iterations = 0;
    let mut settled = false;
    let mut last = None;
    while iterations < params.max_outer_iterations {
        iterations += 1;
        let input = SchedulerInput {
            system,
            tdma: &config.tdma,
            process_releases: &process_releases,
            message_releases: &message_releases,
        };
        let schedule = list_schedule(&input)?;
        let holistic = Holistic::new(
            system,
            config,
            &schedule,
            horizon,
            params.max_holistic_iterations,
            params.fifo_bound,
        )
        .run();

        // Re-derive releases from the analysis.
        let mut next_p = HashMap::new();
        let mut next_m = HashMap::new();
        seed_pins(system, config, &mut next_p, &mut next_m);
        for message in app.messages() {
            let mi = message.id().index();
            match system.route(message.id()) {
                MessageRoute::EtcToTtc => {
                    // Destination TT process must not start before the
                    // worst-case arrival through Out_TTP.
                    let arrival = holistic.message[mi].arrival.min(horizon);
                    let entry = next_p.entry(message.dest()).or_insert(Time::ZERO);
                    *entry = (*entry).max(arrival);
                }
                route if route.uses_ttp() => {
                    // TTP frames whose sender runs under priorities (gateway
                    // CPU): the frame cannot leave before the sender's
                    // worst-case completion.
                    let sender = message.source();
                    if system.architecture.is_et_cpu(app.process(sender).node()) {
                        let done = holistic.process[sender.index()]
                            .worst_completion()
                            .min(horizon);
                        let entry = next_m.entry(message.id()).or_insert(Time::ZERO);
                        *entry = (*entry).max(done);
                    }
                }
                _ => {}
            }
        }

        let done = next_p == process_releases && next_m == message_releases;
        process_releases = next_p;
        message_releases = next_m;
        last = Some((schedule, holistic));
        if done {
            settled = true;
            break;
        }
    }

    let (schedule, holistic) = last.expect("at least one outer iteration runs");
    let mut graph_response = HashMap::new();
    for graph in app.graphs() {
        let r = app
            .sinks(graph.id())
            .into_iter()
            .map(|p| holistic.process[p.index()].worst_completion())
            .fold(Time::ZERO, Time::max);
        graph_response.insert(graph.id(), r);
    }

    let process_timing = app
        .processes()
        .iter()
        .map(|p| (p.id(), holistic.process[p.id().index()]))
        .collect();
    let message_timing = app
        .messages()
        .iter()
        .map(|m| (m.id(), holistic.message[m.id().index()]))
        .collect();

    Ok(AnalysisOutcome {
        schedule,
        process_timing,
        message_timing,
        queues: holistic.queues,
        graph_response,
        converged: holistic.converged && settled,
        iterations,
    })
}

/// Applies the optimizer's offset pins as baseline releases.
fn seed_pins(
    system: &System,
    config: &SystemConfig,
    process_releases: &mut HashMap<ProcessId, Time>,
    message_releases: &mut HashMap<MessageId, Time>,
) {
    for p in system.application.processes() {
        if let Some(t) = config.offsets.process(p.id()) {
            process_releases.insert(p.id(), t);
        }
    }
    for m in system.application.messages() {
        if let Some(t) = config.offsets.message(m.id()) {
            message_releases.insert(m.id(), t);
        }
    }
}

/// Result of one holistic analysis pass over a fixed TTC schedule.
#[derive(Clone, Debug)]
pub struct HolisticResult {
    pub process: Vec<EntityTiming>,
    pub message: Vec<MessageTiming>,
    pub queues: QueueBounds,
    pub converged: bool,
}

/// Ranks: the gateway transfer process outranks all application processes.
fn app_rank(priority: Priority) -> u64 {
    1 << 32 | u64::from(priority.level())
}
const TRANSFER_RANK: u64 = 0;

pub struct Holistic<'a> {
    system: &'a System,
    config: &'a SystemConfig,
    schedule: &'a TtcSchedule,
    horizon: Time,
    max_iterations: u32,
    fifo_bound: FifoBound,

    route: Vec<MessageRoute>,
    can_c: Vec<Time>,
    msg_priority: Vec<Option<Priority>>,
    ttp_queue: TtpQueueParams,
    /// Phase group of each graph: all graph activations are anchored at
    /// multiples of their period from time zero, so graphs with *equal*
    /// periods keep a constant phase relation and may be offset-phased
    /// against each other; graphs with different periods drift and fall
    /// back to the critical-instant assumption.
    phase_group: Vec<u32>,
    /// One extra round of FIFO pessimism when the TDMA grid does not
    /// re-align with the hyper-period (the gateway slot's phase then drifts
    /// across activations).
    grid_slack: Time,

    // Process state.
    po: Vec<Time>,
    pj: Vec<Time>,
    pw: Vec<Time>,
    pr: Vec<Time>,
    // Message state, per leg.
    can_o: Vec<Time>,
    can_j: Vec<Time>,
    can_w: Vec<Time>,
    can_r: Vec<Time>,
    ttp_o: Vec<Time>,
    ttp_j: Vec<Time>,
    ttp_w: Vec<Time>,
    ttp_r: Vec<Time>,
    arrival: Vec<Time>,
    backlog: Vec<u64>,
    diverged: bool,
}

impl<'a> std::fmt::Debug for Holistic<'a> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Holistic").finish_non_exhaustive()
    }
}

impl<'a> Holistic<'a> {
    pub fn new(
        system: &'a System,
        config: &'a SystemConfig,
        schedule: &'a TtcSchedule,
        horizon: Time,
        max_iterations: u32,
        fifo_bound: FifoBound,
    ) -> Self {
        let app = &system.application;
        let arch = &system.architecture;
        let n_p = app.processes().len();
        let n_m = app.messages().len();

        let route: Vec<MessageRoute> = app
            .messages()
            .iter()
            .map(|m| system.route(m.id()))
            .collect();
        let can_params = arch.can_params();
        let can_c: Vec<Time> = app
            .messages()
            .iter()
            .map(|m| mcs_can::message_time(m.size_bytes(), &can_params))
            .collect();
        let msg_priority: Vec<Option<Priority>> = app
            .messages()
            .iter()
            .map(|m| config.priorities.message(m.id()))
            .collect();

        let mut period_groups: HashMap<Time, u32> = HashMap::new();
        let phase_group: Vec<u32> = app
            .graphs()
            .iter()
            .map(|g| {
                let next = period_groups.len() as u32;
                *period_groups.entry(g.period()).or_insert(next)
            })
            .collect();

        let gateway = arch.gateway();
        let (gw_slot, gw_cfg) = config
            .tdma
            .slot_of_node(gateway)
            .expect("validated configuration has a gateway slot");
        let ttp_params = arch.ttp_params();
        let ttp_queue = TtpQueueParams {
            round: config.tdma.round_duration(&ttp_params),
            slot_offset: config.tdma.slot_offset(gw_slot, &ttp_params),
            slot_capacity: gw_cfg.capacity_bytes,
            slot_duration: config.tdma.slot_duration(gw_slot, &ttp_params),
        };

        let grid_slack =
            if ttp_queue.round.is_zero() || (app.hyperperiod() % ttp_queue.round).is_zero() {
                Time::ZERO
            } else {
                ttp_queue.round
            };
        let mut h = Holistic {
            system,
            config,
            schedule,
            horizon,
            max_iterations,
            fifo_bound,
            route,
            can_c,
            msg_priority,
            ttp_queue,
            phase_group,
            grid_slack,
            po: vec![Time::ZERO; n_p],
            pj: vec![Time::ZERO; n_p],
            pw: vec![Time::ZERO; n_p],
            pr: vec![Time::ZERO; n_p],
            can_o: vec![Time::ZERO; n_m],
            can_j: vec![Time::ZERO; n_m],
            can_w: vec![Time::ZERO; n_m],
            can_r: vec![Time::ZERO; n_m],
            ttp_o: vec![Time::ZERO; n_m],
            ttp_j: vec![Time::ZERO; n_m],
            ttp_w: vec![Time::ZERO; n_m],
            ttp_r: vec![Time::ZERO; n_m],
            arrival: vec![Time::ZERO; n_m],
            backlog: vec![0; n_m],
            diverged: false,
        };
        for p in app.processes() {
            h.pr[p.id().index()] = p.wcet();
        }
        h
    }

    pub fn run(mut self) -> HolisticResult {
        for _ in 0..self.max_iterations {
            let fingerprint = self.fingerprint();
            self.propagate_offsets_and_jitters();
            self.can_pass();
            self.fifo_pass();
            self.cpu_pass();
            if self.fingerprint() == fingerprint {
                break;
            }
        }
        let queues = self.queue_bounds();
        self.into_result(queues)
    }

    fn fingerprint(&self) -> (Vec<Time>, Vec<Time>, Vec<Time>, Vec<Time>) {
        (
            self.pr.clone(),
            self.can_r.clone(),
            self.ttp_r.clone(),
            self.po.clone(),
        )
    }

    /// Topological pass updating `O` and `J` of ET processes and of every
    /// message leg from the current response times.
    ///
    /// Offsets are propagated as *earliest availabilities*: an entity's
    /// offset is the best-case instant its triggering data can exist
    /// (predecessor offset + BCET + minimal transmission), and its jitter is
    /// the gap to the worst-case availability. This matches the paper's
    /// worked numbers (Figure 4a: `J_2 = 15`, `r_2 = 55`, `r_3 = 45`) and
    /// spreads ET-chain offsets so that the queue analyses can phase flows
    /// apart.
    fn propagate_offsets_and_jitters(&mut self) {
        let app = &self.system.application;
        let arch = &self.system.architecture;
        let r_transfer = self.system.gateway.transfer_response();
        for graph in app.graphs() {
            for &p in app.topological_order(graph.id()) {
                let pi = p.index();
                if arch.is_tt_cpu(app.process(p).node()) {
                    // Fixed by the schedule table within this pass.
                    self.po[pi] = self
                        .schedule
                        .start(p)
                        .expect("TT process placed by the list scheduler");
                    self.pj[pi] = Time::ZERO;
                    self.pw[pi] = Time::ZERO;
                    self.pr[pi] = app.process(p).wcet();
                } else {
                    let mut earliest = Time::ZERO;
                    let mut worst = Time::ZERO;
                    for e in app.predecessors(p) {
                        let (o, w) = match e.message {
                            None => {
                                let s = e.source.index();
                                (
                                    self.po[s].saturating_add(app.process(e.source).bcet()),
                                    self.po[s].saturating_add(self.pr[s]),
                                )
                            }
                            Some(m) => {
                                let mi = m.index();
                                match self.route[mi] {
                                    MessageRoute::TtcToTtc => {
                                        let a = self.frame_arrival(m);
                                        (a, a)
                                    }
                                    MessageRoute::EtcToEtc | MessageRoute::TtcToEtc => (
                                        self.can_o[mi].saturating_add(self.can_c[mi]),
                                        self.can_o[mi].saturating_add(self.can_r[mi]),
                                    ),
                                    MessageRoute::EtcToTtc => (
                                        self.ttp_o[mi],
                                        self.ttp_o[mi].saturating_add(self.ttp_r[mi]),
                                    ),
                                }
                            }
                        };
                        earliest = earliest.max(o);
                        worst = worst.max(w);
                    }
                    self.po[pi] = earliest;
                    self.pj[pi] = worst.saturating_sub(earliest);
                }
                // Outgoing message legs of p.
                let outgoing: Vec<MessageId> =
                    app.successors(p).iter().filter_map(|e| e.message).collect();
                for m in outgoing {
                    let mi = m.index();
                    let enqueue_earliest = self.po[pi].saturating_add(app.process(p).bcet());
                    let enqueue_jitter = self.pr[pi].saturating_sub(app.process(p).bcet());
                    match self.route[mi] {
                        MessageRoute::TtcToTtc => {
                            self.arrival[mi] = self.frame_arrival(m);
                        }
                        MessageRoute::TtcToEtc => {
                            // MBI arrival is deterministic; the gateway
                            // transfer process adds its response time as
                            // jitter (paper: J_m1 = r_T).
                            self.can_o[mi] = self.frame_arrival(m);
                            self.can_j[mi] = r_transfer;
                        }
                        MessageRoute::EtcToEtc => {
                            self.can_o[mi] = enqueue_earliest;
                            self.can_j[mi] = enqueue_jitter;
                        }
                        MessageRoute::EtcToTtc => {
                            self.can_o[mi] = enqueue_earliest;
                            self.can_j[mi] = enqueue_jitter;
                            // Earliest FIFO entry: after the CAN wire time;
                            // worst: after the CAN leg response plus the
                            // transfer process.
                            self.ttp_o[mi] = enqueue_earliest.saturating_add(self.can_c[mi]);
                            self.ttp_j[mi] = self.can_r[mi]
                                .saturating_sub(self.can_c[mi])
                                .saturating_add(r_transfer);
                        }
                    }
                }
            }
        }
    }

    fn frame_arrival(&self, m: MessageId) -> Time {
        self.schedule
            .frame(m)
            .map(|f| f.arrival)
            .unwrap_or(Time::ZERO)
    }

    /// CAN queuing delays over every message with a CAN leg (they all share
    /// the one bus, including frames produced by the gateway).
    fn can_pass(&mut self) {
        let app = &self.system.application;
        let ids: Vec<usize> = (0..app.messages().len())
            .filter(|&mi| self.route[mi].uses_can())
            .collect();
        let flows: Vec<CanFlow> = ids.iter().map(|&mi| self.can_flow(mi)).collect();
        let delays = mcs_can::queuing_delays(&flows, self.horizon);
        for (k, &mi) in ids.iter().enumerate() {
            let w = match delays[k] {
                Some(w) => w,
                None => {
                    self.diverged = true;
                    self.horizon
                }
            };
            self.can_w[mi] = w;
            self.can_r[mi] = self.can_j[mi]
                .saturating_add(w)
                .saturating_add(self.can_c[mi]);
            if !matches!(self.route[mi], MessageRoute::EtcToTtc) {
                self.arrival[mi] = self.can_o[mi].saturating_add(self.can_r[mi]);
            }
        }
    }

    fn can_flow(&self, mi: usize) -> CanFlow {
        let app = &self.system.application;
        let m = &app.messages()[mi];
        CanFlow {
            priority: self.msg_priority[mi]
                .expect("validated configuration assigns CAN priorities"),
            period: app.message_period(m.id()),
            jitter: self.can_j[mi],
            offset: self.can_o[mi],
            transaction: Some(self.phase_group[m.graph().index()]),
            transmission: self.can_c[mi],
            size_bytes: m.size_bytes(),
            response: self.can_r[mi],
        }
    }

    /// `Out_TTP` FIFO delays of ETC→TTC messages.
    fn fifo_pass(&mut self) {
        let app = &self.system.application;
        let ids: Vec<usize> = (0..app.messages().len())
            .filter(|&mi| matches!(self.route[mi], MessageRoute::EtcToTtc))
            .collect();
        let flows: Vec<FifoFlow> = ids
            .iter()
            .map(|&mi| {
                let m = &app.messages()[mi];
                FifoFlow {
                    rank: self.msg_priority[mi]
                        .map(|p| u64::from(p.level()))
                        .expect("validated configuration assigns CAN priorities"),
                    period: app.message_period(m.id()),
                    jitter: self.ttp_j[mi],
                    offset: self.ttp_o[mi],
                    transaction: Some(self.phase_group[m.graph().index()]),
                    size_bytes: m.size_bytes(),
                    response: self.ttp_r[mi],
                }
            })
            .collect();
        let delays: Vec<Option<mcs_core::FifoDelay>> = (0..flows.len())
            .map(|k| match self.fifo_bound {
                FifoBound::PaperClosedForm => fifo_delay(&flows, k, &self.ttp_queue, self.horizon),
                FifoBound::SlotOccurrence => {
                    fifo_delay_occurrence(&flows, k, &self.ttp_queue, self.horizon)
                }
            })
            .collect();
        for (k, &mi) in ids.iter().enumerate() {
            let (w, backlog) = match delays[k] {
                Some(d) => (d.delay.saturating_add(self.grid_slack), d.backlog),
                None => {
                    self.diverged = true;
                    (self.horizon, flows[k].size_bytes.into())
                }
            };
            self.ttp_w[mi] = w;
            self.backlog[mi] = backlog;
            self.ttp_r[mi] = self.ttp_j[mi]
                .saturating_add(w)
                .saturating_add(self.ttp_queue.slot_duration);
            self.arrival[mi] = self.ttp_o[mi].saturating_add(self.ttp_r[mi]);
        }
    }

    /// Preemption delays of processes sharing each ET CPU; the gateway CPU
    /// additionally hosts the transfer process `T` at the highest rank.
    fn cpu_pass(&mut self) {
        let app = &self.system.application;
        let arch = &self.system.architecture;
        let mut by_node: HashMap<NodeId, Vec<ProcessId>> = HashMap::new();
        for p in app.processes() {
            if arch.is_et_cpu(p.node()) {
                by_node.entry(p.node()).or_default().push(p.id());
            }
        }
        for (node, procs) in by_node {
            let mut tasks: Vec<TaskFlow> = procs
                .iter()
                .map(|&p| {
                    let proc = app.process(p);
                    TaskFlow {
                        rank: app_rank(
                            self.config
                                .priorities
                                .process(p)
                                .expect("validated configuration assigns ET priorities"),
                        ),
                        period: app.process_period(p),
                        jitter: self.pj[p.index()],
                        offset: self.po[p.index()],
                        transaction: Some(self.phase_group[proc.graph().index()]),
                        wcet: proc.wcet(),
                        blocking: proc.blocking(),
                        response: self.pr[p.index()],
                    }
                })
                .collect();
            if node == arch.gateway() {
                tasks.push(TaskFlow {
                    rank: TRANSFER_RANK,
                    period: self.system.gateway.transfer_period,
                    jitter: Time::ZERO,
                    offset: Time::ZERO,
                    transaction: None,
                    wcet: self.system.gateway.transfer_wcet,
                    blocking: Time::ZERO,
                    response: self.system.gateway.transfer_wcet,
                });
            }
            let delays = interference_delays(&tasks, self.horizon);
            for (k, &p) in procs.iter().enumerate() {
                let w = match delays[k] {
                    Some(w) => w,
                    None => {
                        self.diverged = true;
                        self.horizon
                    }
                };
                let pi = p.index();
                self.pw[pi] = w;
                self.pr[pi] = self.pj[pi]
                    .saturating_add(w)
                    .saturating_add(app.process(p).wcet());
            }
        }
    }

    /// Buffer bounds for `Out_CAN`, `Out_TTP` and every `Out_Ni`.
    fn queue_bounds(&self) -> QueueBounds {
        let app = &self.system.application;
        let arch = &self.system.architecture;
        let mut bounds = QueueBounds::default();

        // Out_CAN holds TTC→ETC traffic queued by the gateway.
        let out_can_ids: Vec<usize> = (0..app.messages().len())
            .filter(|&mi| matches!(self.route[mi], MessageRoute::TtcToEtc))
            .collect();
        bounds.out_can = self.priority_queue_bound(&out_can_ids);

        // Out_Ni holds the CAN traffic originated by each CAN-sending node.
        for node in arch.can_nodes() {
            let ids: Vec<usize> = (0..app.messages().len())
                .filter(|&mi| {
                    self.route[mi].uses_can()
                        && !matches!(self.route[mi], MessageRoute::TtcToEtc)
                        && app.process(app.messages()[mi].source()).node() == node.id()
                })
                .collect();
            if !ids.is_empty() {
                bounds
                    .out_node
                    .insert(node.id(), self.priority_queue_bound(&ids));
            }
        }

        // Out_TTP: the FIFO bound.
        let fifo: Vec<_> = (0..app.messages().len())
            .filter(|&mi| matches!(self.route[mi], MessageRoute::EtcToTtc))
            .map(|mi| {
                Some(mcs_core::FifoDelay {
                    delay: self.ttp_w[mi],
                    backlog: self.backlog[mi],
                })
            })
            .collect();
        bounds.out_ttp = fifo_size_bound(&fifo);
        bounds
    }

    fn priority_queue_bound(&self, ids: &[usize]) -> u64 {
        let flows: Vec<CanFlow> = ids.iter().map(|&mi| self.can_flow(mi)).collect();
        let delays: Vec<Option<Time>> = ids.iter().map(|&mi| Some(self.can_w[mi])).collect();
        mcs_can::queue_size_bound(&flows, &delays, self.horizon)
    }

    fn into_result(self, queues: QueueBounds) -> HolisticResult {
        let app = &self.system.application;
        let process: Vec<EntityTiming> = (0..app.processes().len())
            .map(|i| EntityTiming {
                offset: self.po[i],
                jitter: self.pj[i],
                delay: self.pw[i],
                response: self.pr[i],
            })
            .collect();
        let message: Vec<MessageTiming> = (0..app.messages().len())
            .map(|mi| {
                let can = self.route[mi].uses_can().then_some(EntityTiming {
                    offset: self.can_o[mi],
                    jitter: self.can_j[mi],
                    delay: self.can_w[mi],
                    response: self.can_r[mi],
                });
                let ttp =
                    matches!(self.route[mi], MessageRoute::EtcToTtc).then_some(EntityTiming {
                        offset: self.ttp_o[mi],
                        jitter: self.ttp_j[mi],
                        delay: self.ttp_w[mi],
                        response: self.ttp_r[mi],
                    });
                MessageTiming {
                    can,
                    ttp,
                    arrival: self.arrival[mi],
                }
            })
            .collect();
        HolisticResult {
            process,
            message,
            queues,
            converged: !self.diverged,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_core::Evaluator;
    use mcs_gen::{generate, GeneratorParams};
    use mcs_opt::{hopa_priorities, straightforward_config};

    /// The reused evaluator must reproduce the seed implementation's
    /// results bit-for-bit (δΓ, s_total, timings, queue bounds, schedule).
    #[test]
    fn seed_and_reused_evaluator_agree() {
        let params = AnalysisParams::default();
        for seed in [3u64, 17] {
            let system = generate(&GeneratorParams::paper_sized(2, seed));
            let mut config = straightforward_config(&system);
            config.priorities = hopa_priorities(&system, &config.tdma);
            let (degree, buffers, outcome) =
                seed_evaluate(&system, config.clone(), &params).expect("analyzable");
            let mut evaluator = Evaluator::new(&system, params);
            // Evaluate twice: the second run exercises the warm caches.
            evaluator.evaluate(&config).expect("analyzable");
            let summary = evaluator.evaluate(&config).expect("analyzable");
            assert_eq!(summary.degree, degree);
            assert_eq!(summary.total_buffers, buffers);
            let new_outcome = evaluator.outcome();
            assert_eq!(new_outcome.schedule, outcome.schedule);
            assert_eq!(new_outcome.process_timing, outcome.process_timing);
            assert_eq!(new_outcome.message_timing, outcome.message_timing);
            assert_eq!(new_outcome.queues, outcome.queues);
            assert_eq!(new_outcome.graph_response, outcome.graph_response);
            assert_eq!(new_outcome.converged, outcome.converged);
            assert_eq!(new_outcome.iterations, outcome.iterations);
        }
    }
}
