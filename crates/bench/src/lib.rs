//! # mcs-bench
//!
//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (§6). Each figure has a binary:
//!
//! | target | reproduces |
//! |---|---|
//! | `fig4_example` | the Figure 4 worked example (three configurations ψ) |
//! | `fig9a` | Fig 9a — δΓ deviation of SF and OS from the SAS reference |
//! | `fig9b` | Fig 9b — average total buffer need of OS, OR, SAR |
//! | `fig9c` | Fig 9c — buffer deviation from SAR vs inter-cluster traffic |
//! | `fig9mp` | the Fig-9c sweep on multi-period (`{1, 2, 4}`) instances |
//! | `cruise` | the §6 cruise-controller table |
//!
//! Criterion benches (`cargo bench -p mcs-bench`) measure the §6 run-time
//! claims (heuristics vs simulated annealing), fresh-per-call vs
//! context-reuse evaluation (`evaluator_reuse`), and full vs delta
//! evaluation over an SA move trace against both the current full path and
//! the frozen [`pr1_baseline`] evaluator — on the single-period Fig-9c
//! instance (`delta_rta`) and on its multi-period `{1, 2, 4}` counterpart
//! (`delta_rta_multiperiod`); each emits its evaluations/second into
//! `BENCH_core.json` via [`record_bench_section`]. The ablations called
//! out in DESIGN.md live in the `optimization` bench.
//!
//! All binaries accept `--seeds N` (instances per point, default 5; the
//! paper used 30) and `--sa-iters N` (SA budget per instance, default 200;
//! the paper ran hours-long anneals). `--paper-scale` selects 30 seeds and
//! 2000 SA iterations. The `fig9*` sweeps additionally write one
//! machine-readable JSON line per (instance × strategy) run — to
//! `BENCH_<figure>.jsonl` in the repository root, or the `--jsonl PATH`
//! override — alongside their text tables.
//!
//! The sweeps are (instance × strategy) job queues served by
//! [`mcs_opt::ExperimentRunner`]: embarrassingly parallel, dynamically
//! load-balanced across cores (set `RAYON_NUM_THREADS` to cap the
//! workers), with records collected in submission order — so parallel
//! output is identical to a sequential run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod pr1_baseline;
pub mod seed_baseline;

/// Command-line options shared by the experiment binaries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExperimentOptions {
    /// Instances per data point.
    pub seeds: u64,
    /// Simulated-annealing iterations per instance.
    pub sa_iters: u32,
    /// Override for the JSON-lines record path (`--jsonl PATH`); `None`
    /// selects the default `BENCH_<figure>.jsonl` next to the text tables.
    pub jsonl: Option<String>,
}

impl Default for ExperimentOptions {
    fn default() -> Self {
        ExperimentOptions {
            seeds: 5,
            sa_iters: 200,
            jsonl: None,
        }
    }
}

impl ExperimentOptions {
    /// Parses the conventional flags from `std::env::args`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed flags.
    pub fn from_args() -> Self {
        let mut options = ExperimentOptions::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--paper-scale" => {
                    options.seeds = 30;
                    options.sa_iters = 2_000;
                }
                "--seeds" => {
                    options.seeds = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--seeds takes a positive integer");
                }
                "--sa-iters" => {
                    options.sa_iters = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--sa-iters takes a positive integer");
                }
                "--jsonl" => {
                    options.jsonl = Some(args.next().expect("--jsonl takes a path"));
                }
                other => panic!(
                    "unknown flag {other}; supported: --seeds N, --sa-iters N, \
                     --paper-scale, --jsonl PATH"
                ),
            }
        }
        options
    }

    /// The JSON-lines record path for `figure`: the `--jsonl` override, or
    /// `BENCH_<figure>.jsonl` in the repository root (next to the text
    /// tables and `BENCH_core.json`).
    pub fn jsonl_path(&self, figure: &str) -> std::path::PathBuf {
        match &self.jsonl {
            Some(path) => path.into(),
            None => {
                let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
                std::path::Path::new(root).join(format!("BENCH_{figure}.jsonl"))
            }
        }
    }
}

/// Writes one [`mcs_opt::ExperimentRecord`] JSON line per record to `path`
/// (overwriting) and reports where they went. Errors are printed, not
/// propagated — machine-readable records must never fail a sweep.
pub fn write_jsonl(path: &std::path::Path, records: &[mcs_opt::ExperimentRecord]) {
    let file = match std::fs::File::create(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("could not create {}: {e}", path.display());
            return;
        }
    };
    let mut writer = mcs_core::JsonLinesWriter::new(std::io::BufWriter::new(file));
    for record in records {
        if let Err(e) = writer.write_line(&record.json_line()) {
            eprintln!("could not write {}: {e}", path.display());
            return;
        }
    }
    let n = writer.records();
    match writer.finish() {
        Ok(_) => println!("recorded {n} experiment records in {}", path.display()),
        Err(e) => eprintln!("could not flush {}: {e}", path.display()),
    }
}

/// Records one bench section into `BENCH_core.json` (repo root, or the
/// `BENCH_CORE_JSON` path), merging with whatever other sections are
/// already there. The file is a flat object with one single-line JSON
/// object per section:
///
/// ```json
/// {
///   "evaluator_reuse": {...},
///   "delta_rta": {...}
/// }
/// ```
///
/// `body` must be the section's single-line `{...}` object. Unparseable
/// content (e.g. the pre-PR-2 single-object format) is discarded.
pub fn record_bench_section(name: &str, body: &str) {
    let path = std::env::var("BENCH_CORE_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_core.json").to_string()
    });
    let mut sections: Vec<(String, String)> = Vec::new();
    if let Ok(existing) = std::fs::read_to_string(&path) {
        for line in existing.lines() {
            let line = line.trim().trim_end_matches(',');
            if let Some((key, value)) = line.split_once(':') {
                let key = key.trim().trim_matches('"');
                let value = value.trim();
                if !key.is_empty() && value.starts_with('{') && value.ends_with('}') {
                    sections.push((key.to_string(), value.to_string()));
                }
            }
        }
    }
    match sections.iter_mut().find(|(k, _)| k == name) {
        Some((_, value)) => *value = body.to_string(),
        None => sections.push((name.to_string(), body.to_string())),
    }
    let mut out = String::from("{\n");
    for (i, (key, value)) in sections.iter().enumerate() {
        let comma = if i + 1 < sections.len() { "," } else { "" };
        out.push_str(&format!("  \"{key}\": {value}{comma}\n"));
    }
    out.push_str("}\n");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("could not write {path}: {e}");
    } else {
        println!("recorded bench section {name:?} in {path}");
    }
}

/// One row of a Fig-9c-style buffer-deviation sweep: a display key (the
/// inter-cluster message count) and the per-seed generator parameters of
/// its instances.
#[derive(Debug)]
pub struct SweepRow {
    /// The row key printed in the first column.
    pub key: usize,
    /// `(instance label, generator parameters)` per seed.
    pub instances: Vec<(String, mcs_gen::GeneratorParams)>,
}

/// Runs OS, OR and SAR on every instance of every row through one
/// [`mcs_opt::ExperimentRunner`] queue and prints the average %-deviation
/// table of OS and OR from the SAR reference (the Fig-9c shape). Returns
/// every record, row-major with OS/OR/SAR per instance, for JSON-lines
/// emission.
///
/// A failed run no longer aborts the sweep: its instance is skipped in the
/// aggregate (and reported on stderr), the other instances still count —
/// the per-record `Result` is the unit of failure, not the batch.
///
/// OS and OR are independent jobs — both are deterministic, so the OS
/// column equals the step-1 result inside OR. (The standalone OS pass is
/// re-run inside OR, but it is a few percent of an OR+SAR job; the
/// one-strategy-per-job model keeps records uniform.)
pub fn run_deviation_sweep(sa_iters: u32, rows: &[SweepRow]) -> Vec<mcs_opt::ExperimentRecord> {
    use mcs_opt::{ExperimentJob, Or, OrParams, Os, Sa, SaParams};

    let analysis = mcs_core::AnalysisParams::default();
    let mut runner = mcs_opt::ExperimentRunner::new();
    for row in rows {
        for (seed_index, (instance, params)) in row.instances.iter().enumerate() {
            let system = std::sync::Arc::new(mcs_gen::generate(params));
            runner.push(ExperimentJob::new(
                instance.clone(),
                std::sync::Arc::clone(&system),
                analysis,
                Os::new(OrParams::default().os),
            ));
            runner.push(ExperimentJob::new(
                instance.clone(),
                std::sync::Arc::clone(&system),
                analysis,
                Or::new(OrParams::default()),
            ));
            runner.push(ExperimentJob::new(
                instance.clone(),
                std::sync::Arc::clone(&system),
                analysis,
                Sa::resources(SaParams {
                    iterations: sa_iters,
                    seed: seed_index as u64,
                    ..SaParams::default()
                }),
            ));
        }
    }
    let records = runner.run();

    println!("{:>9} {:>10} {:>10} {:>8}", "messages", "OS", "OR", "used");
    let mut per_point = records.chunks_exact(3);
    let mut failed = 0usize;
    for row in rows {
        let mut os_dev = Vec::new();
        let mut or_dev = Vec::new();
        for _ in 0..row.instances.len() {
            let point = per_point.next().expect("three records per instance");
            let reports: Vec<_> = point
                .iter()
                .filter_map(|record| match &record.report {
                    Ok(report) => Some(&report.best),
                    Err(e) => {
                        eprintln!("skipping {} ({}): {e}", record.instance, record.strategy);
                        None
                    }
                })
                .collect();
            let [os, or, sar] = reports[..] else {
                failed += 1;
                continue;
            };
            if os.is_schedulable() && or.is_schedulable() && sar.is_schedulable() {
                let reference = sar.total_buffers as f64;
                os_dev.push(percent_deviation(os.total_buffers as f64, reference));
                or_dev.push(percent_deviation(or.total_buffers as f64, reference));
            }
        }
        println!(
            "{:>9} {} {} {:>8}",
            row.key,
            cell(mean(&os_dev)),
            cell(mean(&or_dev)),
            os_dev.len()
        );
    }
    if failed > 0 {
        eprintln!("{failed} instance(s) skipped because a run failed");
    }
    records
}

/// Mean of a sample, `None` when empty.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Percentage deviation of `value` from a (non-zero) `reference`:
/// `(value − reference) / |reference| × 100`.
pub fn percent_deviation(value: f64, reference: f64) -> f64 {
    if reference == 0.0 {
        0.0
    } else {
        (value - reference) / reference.abs() * 100.0
    }
}

/// Formats an optional mean for a table cell.
pub fn cell(value: Option<f64>) -> String {
    match value {
        Some(v) => format!("{v:>10.1}"),
        None => format!("{:>10}", "-"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_handles_empty_and_nonempty() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
    }

    #[test]
    fn percent_deviation_is_signed_and_reference_relative() {
        assert_eq!(percent_deviation(150.0, 100.0), 50.0);
        assert_eq!(percent_deviation(50.0, 100.0), -50.0);
        // Negative references (δΓ slack values): less negative = worse = positive.
        assert_eq!(percent_deviation(-50.0, -100.0), 50.0);
        assert_eq!(percent_deviation(0.0, 0.0), 0.0);
    }

    #[test]
    fn cells_align() {
        assert_eq!(cell(Some(1.25)).len(), 10);
        assert_eq!(cell(None).trim(), "-");
    }
}
