//! # mcs-bench
//!
//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (§6). Each figure has a binary:
//!
//! | target | reproduces |
//! |---|---|
//! | `fig4_example` | the Figure 4 worked example (three configurations ψ) |
//! | `fig9a` | Fig 9a — δΓ deviation of SF and OS from the SAS reference |
//! | `fig9b` | Fig 9b — average total buffer need of OS, OR, SAR |
//! | `fig9c` | Fig 9c — buffer deviation from SAR vs inter-cluster traffic |
//! | `fig9mp` | the Fig-9c sweep on multi-period (`{1, 2, 4}`) instances |
//! | `cruise` | the §6 cruise-controller table |
//!
//! Criterion benches (`cargo bench -p mcs-bench`) measure the §6 run-time
//! claims (heuristics vs simulated annealing), fresh-per-call vs
//! context-reuse evaluation (`evaluator_reuse`), and full vs delta
//! evaluation over an SA move trace against both the current full path and
//! the frozen [`pr1_baseline`] evaluator — on the single-period Fig-9c
//! instance (`delta_rta`) and on its multi-period `{1, 2, 4}` counterpart
//! (`delta_rta_multiperiod`); each emits its evaluations/second into
//! `BENCH_core.json` via [`record_bench_section`]. The ablations called
//! out in DESIGN.md live in the `optimization` bench.
//!
//! All binaries accept `--seeds N` (instances per point, default 5; the
//! paper used 30) and `--sa-iters N` (SA budget per instance, default 200;
//! the paper ran hours-long anneals). `--paper-scale` selects 30 seeds and
//! 2000 SA iterations.
//!
//! Seed sweeps are embarrassingly parallel and fan out across cores with
//! rayon; set `RAYON_NUM_THREADS` to cap the workers. Results are collected
//! in seed order, so parallel output is identical to a sequential run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pr1_baseline;
pub mod seed_baseline;

/// Command-line options shared by the experiment binaries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExperimentOptions {
    /// Instances per data point.
    pub seeds: u64,
    /// Simulated-annealing iterations per instance.
    pub sa_iters: u32,
}

impl Default for ExperimentOptions {
    fn default() -> Self {
        ExperimentOptions {
            seeds: 5,
            sa_iters: 200,
        }
    }
}

impl ExperimentOptions {
    /// Parses the conventional flags from `std::env::args`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed flags.
    pub fn from_args() -> Self {
        let mut options = ExperimentOptions::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--paper-scale" => {
                    options.seeds = 30;
                    options.sa_iters = 2_000;
                }
                "--seeds" => {
                    options.seeds = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--seeds takes a positive integer");
                }
                "--sa-iters" => {
                    options.sa_iters = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--sa-iters takes a positive integer");
                }
                other => panic!(
                    "unknown flag {other}; supported: --seeds N, --sa-iters N, --paper-scale"
                ),
            }
        }
        options
    }
}

/// Records one bench section into `BENCH_core.json` (repo root, or the
/// `BENCH_CORE_JSON` path), merging with whatever other sections are
/// already there. The file is a flat object with one single-line JSON
/// object per section:
///
/// ```json
/// {
///   "evaluator_reuse": {...},
///   "delta_rta": {...}
/// }
/// ```
///
/// `body` must be the section's single-line `{...}` object. Unparseable
/// content (e.g. the pre-PR-2 single-object format) is discarded.
pub fn record_bench_section(name: &str, body: &str) {
    let path = std::env::var("BENCH_CORE_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_core.json").to_string()
    });
    let mut sections: Vec<(String, String)> = Vec::new();
    if let Ok(existing) = std::fs::read_to_string(&path) {
        for line in existing.lines() {
            let line = line.trim().trim_end_matches(',');
            if let Some((key, value)) = line.split_once(':') {
                let key = key.trim().trim_matches('"');
                let value = value.trim();
                if !key.is_empty() && value.starts_with('{') && value.ends_with('}') {
                    sections.push((key.to_string(), value.to_string()));
                }
            }
        }
    }
    match sections.iter_mut().find(|(k, _)| k == name) {
        Some((_, value)) => *value = body.to_string(),
        None => sections.push((name.to_string(), body.to_string())),
    }
    let mut out = String::from("{\n");
    for (i, (key, value)) in sections.iter().enumerate() {
        let comma = if i + 1 < sections.len() { "," } else { "" };
        out.push_str(&format!("  \"{key}\": {value}{comma}\n"));
    }
    out.push_str("}\n");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("could not write {path}: {e}");
    } else {
        println!("recorded bench section {name:?} in {path}");
    }
}

/// Mean of a sample, `None` when empty.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Percentage deviation of `value` from a (non-zero) `reference`:
/// `(value − reference) / |reference| × 100`.
pub fn percent_deviation(value: f64, reference: f64) -> f64 {
    if reference == 0.0 {
        0.0
    } else {
        (value - reference) / reference.abs() * 100.0
    }
}

/// Formats an optional mean for a table cell.
pub fn cell(value: Option<f64>) -> String {
    match value {
        Some(v) => format!("{v:>10.1}"),
        None => format!("{:>10}", "-"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_handles_empty_and_nonempty() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
    }

    #[test]
    fn percent_deviation_is_signed_and_reference_relative() {
        assert_eq!(percent_deviation(150.0, 100.0), 50.0);
        assert_eq!(percent_deviation(50.0, 100.0), -50.0);
        // Negative references (δΓ slack values): less negative = worse = positive.
        assert_eq!(percent_deviation(-50.0, -100.0), 50.0);
        assert_eq!(percent_deviation(0.0, 0.0), 0.0);
    }

    #[test]
    fn cells_align() {
        assert_eq!(cell(Some(1.25)).len(), 10);
        assert_eq!(cell(None).trim(), "-");
    }
}
