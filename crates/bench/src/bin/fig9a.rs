//! Figure 9a: average percentage deviation of the degree of schedulability
//! δΓ produced by SF and OS from the near-optimal SAS reference, as the
//! application grows from 80 to 400 processes.
//!
//! As in the paper, only instances where *all* algorithms obtained a
//! schedulable system enter the averages; the count of SF failures is
//! reported separately (the paper saw 26 of 150).
//!
//! Every (instance × strategy) run is one [`ExperimentRunner`] job, fanned
//! out across cores (`RAYON_NUM_THREADS` caps the workers); records come
//! back in submission order, so the aggregated output is identical to a
//! sequential sweep. Each record is also emitted as a JSON line (see
//! `--jsonl`).

use std::sync::Arc;

use mcs_bench::{cell, mean, percent_deviation, write_jsonl, ExperimentOptions};
use mcs_core::AnalysisParams;
use mcs_gen::{generate, GeneratorParams};
use mcs_opt::{ExperimentJob, ExperimentRecord, ExperimentRunner, Os, OsParams, Sa, SaParams, Sf};

const NODE_COUNTS: [usize; 5] = [2, 4, 6, 8, 10];

fn main() {
    let options = ExperimentOptions::from_args();
    let analysis = AnalysisParams::default();
    let mut runner = ExperimentRunner::new();
    for nodes in NODE_COUNTS {
        for seed in 0..options.seeds {
            let system = Arc::new(generate(&GeneratorParams::paper_sized(nodes, seed)));
            let instance = format!("nodes={nodes},seed={seed}");
            runner.push(ExperimentJob::new(
                instance.clone(),
                Arc::clone(&system),
                analysis,
                Sf,
            ));
            runner.push(ExperimentJob::new(
                instance.clone(),
                Arc::clone(&system),
                analysis,
                Os::new(OsParams::default()),
            ));
            runner.push(ExperimentJob::new(
                instance,
                Arc::clone(&system),
                analysis,
                Sa::schedule(SaParams {
                    iterations: options.sa_iters,
                    seed,
                    ..SaParams::default()
                }),
            ));
        }
    }
    let records = runner.run();
    write_jsonl(&options.jsonl_path("fig9a"), &records);

    println!("Figure 9a — avg % deviation of δΓ from SAS (lower is better)");
    println!(
        "{:>6} {:>6} {:>10} {:>10} {:>8} {:>9}",
        "nodes", "procs", "SF", "OS", "used", "SF-fail"
    );
    let mut sf_failures = 0;
    let mut total = 0;
    let mut skipped = 0;
    let mut per_point = records.chunks_exact(3);
    for nodes in NODE_COUNTS {
        let mut sf_dev = Vec::new();
        let mut os_dev = Vec::new();
        let mut sf_failed_here = 0;
        for _ in 0..options.seeds {
            let [sf, os, sas]: &[ExperimentRecord; 3] = per_point
                .next()
                .expect("three records per (nodes, seed) point")
                .try_into()
                .expect("chunks_exact");
            total += 1;
            // A failed run (unanalyzable instance, panic) skips its
            // instance in the aggregate instead of aborting the sweep.
            let (Ok(sf), Ok(os), Ok(sas)) = (&sf.report, &os.report, &sas.report) else {
                for record in [sf, os, sas] {
                    if let Err(e) = &record.report {
                        eprintln!("skipping {} ({}): {e}", record.instance, record.strategy);
                    }
                }
                skipped += 1;
                continue;
            };
            let (sf, os, sas) = (&sf.best, &os.best, &sas.best);
            if !sf.is_schedulable() {
                sf_failed_here += 1;
                sf_failures += 1;
            }
            if sf.is_schedulable() && os.is_schedulable() && sas.is_schedulable() {
                let reference = sas.schedule_cost() as f64;
                sf_dev.push(percent_deviation(sf.schedule_cost() as f64, reference));
                os_dev.push(percent_deviation(os.schedule_cost() as f64, reference));
            }
        }
        println!(
            "{:>6} {:>6} {} {} {:>8} {:>9}",
            nodes,
            nodes * 40,
            cell(mean(&sf_dev)),
            cell(mean(&os_dev)),
            sf_dev.len(),
            sf_failed_here
        );
    }
    if skipped > 0 {
        eprintln!("{skipped} instance(s) skipped because a run failed");
    }
    println!("SF failed to find a schedulable system in {sf_failures} of {total} applications");
    println!("(paper: 26 of 150; δΓ here is the slack sum f2, so deviations are");
    println!(" relative to the SAS slack — positive means less slack than SAS)");
}
