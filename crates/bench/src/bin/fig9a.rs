//! Figure 9a: average percentage deviation of the degree of schedulability
//! δΓ produced by SF and OS from the near-optimal SAS reference, as the
//! application grows from 80 to 400 processes.
//!
//! As in the paper, only instances where *all* algorithms obtained a
//! schedulable system enter the averages; the count of SF failures is
//! reported separately (the paper saw 26 of 150).
//!
//! Seeds are independent synthesis runs and are evaluated in parallel
//! (`RAYON_NUM_THREADS` caps the workers); the aggregated output is
//! identical to the sequential sweep.

use rayon::prelude::*;

use mcs_bench::{cell, mean, percent_deviation, ExperimentOptions};
use mcs_core::AnalysisParams;
use mcs_gen::{generate, GeneratorParams};
use mcs_opt::{
    evaluate, optimize_schedule, sa_schedule, straightforward_config, OsParams, SaParams,
};

struct SeedResult {
    sf_cost: i128,
    os_cost: i128,
    sas_cost: i128,
    sf_schedulable: bool,
    all_schedulable: bool,
}

fn main() {
    let options = ExperimentOptions::from_args();
    let analysis = AnalysisParams::default();
    println!("Figure 9a — avg % deviation of δΓ from SAS (lower is better)");
    println!(
        "{:>6} {:>6} {:>10} {:>10} {:>8} {:>9}",
        "nodes", "procs", "SF", "OS", "used", "SF-fail"
    );
    let mut sf_failures = 0;
    let mut total = 0;
    for nodes in [2usize, 4, 6, 8, 10] {
        let results: Vec<SeedResult> = (0..options.seeds)
            .into_par_iter()
            .map(|seed| {
                let system = generate(&GeneratorParams::paper_sized(nodes, seed));
                let sf = evaluate(&system, straightforward_config(&system), &analysis)
                    .expect("SF configuration is analyzable");
                let os = optimize_schedule(&system, &analysis, &OsParams::default());
                let sas = sa_schedule(
                    &system,
                    &analysis,
                    &SaParams {
                        iterations: options.sa_iters,
                        seed,
                        ..SaParams::default()
                    },
                );
                SeedResult {
                    sf_cost: sf.schedule_cost(),
                    os_cost: os.best.schedule_cost(),
                    sas_cost: sas.schedule_cost(),
                    sf_schedulable: sf.is_schedulable(),
                    all_schedulable: sf.is_schedulable()
                        && os.best.is_schedulable()
                        && sas.is_schedulable(),
                }
            })
            .collect();

        let mut sf_dev = Vec::new();
        let mut os_dev = Vec::new();
        let mut sf_failed_here = 0;
        for r in &results {
            total += 1;
            if !r.sf_schedulable {
                sf_failed_here += 1;
                sf_failures += 1;
            }
            if r.all_schedulable {
                let reference = r.sas_cost as f64;
                sf_dev.push(percent_deviation(r.sf_cost as f64, reference));
                os_dev.push(percent_deviation(r.os_cost as f64, reference));
            }
        }
        println!(
            "{:>6} {:>6} {} {} {:>8} {:>9}",
            nodes,
            nodes * 40,
            cell(mean(&sf_dev)),
            cell(mean(&os_dev)),
            sf_dev.len(),
            sf_failed_here
        );
    }
    println!("SF failed to find a schedulable system in {sf_failures} of {total} applications");
    println!("(paper: 26 of 150; δΓ here is the slack sum f2, so deviations are");
    println!(" relative to the SAS slack — positive means less slack than SAS)");
}
