//! Figure 9b: average total buffer need `s_total` of the solutions produced
//! by OS (schedulability only), OR (buffer-optimizing) and the SAR
//! near-optimal reference, as the application grows from 80 to 400
//! processes. The paper's headline: OR halves the buffer need of OS and
//! tracks SAR closely.
//!
//! Every (instance × strategy) run is one [`ExperimentRunner`] job fanned
//! out across cores (`RAYON_NUM_THREADS` caps the workers); records come
//! back in submission order, so the aggregated output is identical to a
//! sequential sweep. Each record is also emitted as a JSON line (see
//! `--jsonl`). OS and OR are independent jobs — both are deterministic, so
//! the OS column equals the step-1 result inside OR.

use std::sync::Arc;

use mcs_bench::{cell, mean, write_jsonl, ExperimentOptions};
use mcs_core::AnalysisParams;
use mcs_gen::{generate, GeneratorParams};
use mcs_opt::{ExperimentJob, ExperimentRecord, ExperimentRunner, Or, OrParams, Os, Sa, SaParams};

const NODE_COUNTS: [usize; 5] = [2, 4, 6, 8, 10];

fn main() {
    let options = ExperimentOptions::from_args();
    let analysis = AnalysisParams::default();
    let mut runner = ExperimentRunner::new();
    for nodes in NODE_COUNTS {
        for seed in 0..options.seeds {
            let system = Arc::new(generate(&GeneratorParams::paper_sized(nodes, seed)));
            let instance = format!("nodes={nodes},seed={seed}");
            runner.push(ExperimentJob::new(
                instance.clone(),
                Arc::clone(&system),
                analysis,
                Os::new(OrParams::default().os),
            ));
            runner.push(ExperimentJob::new(
                instance.clone(),
                Arc::clone(&system),
                analysis,
                Or::new(OrParams::default()),
            ));
            runner.push(ExperimentJob::new(
                instance,
                Arc::clone(&system),
                analysis,
                Sa::resources(SaParams {
                    iterations: options.sa_iters,
                    seed,
                    ..SaParams::default()
                }),
            ));
        }
    }
    let records = runner.run();
    write_jsonl(&options.jsonl_path("fig9b"), &records);

    println!("Figure 9b — avg total buffer need s_total [bytes] (lower is better)");
    println!(
        "{:>6} {:>6} {:>10} {:>10} {:>10} {:>8}",
        "nodes", "procs", "OS", "OR", "SAR", "used"
    );
    let mut per_point = records.chunks_exact(3);
    let mut skipped = 0;
    for nodes in NODE_COUNTS {
        let mut os_bytes = Vec::new();
        let mut or_bytes = Vec::new();
        let mut sar_bytes = Vec::new();
        for _ in 0..options.seeds {
            let [os, or, sar]: &[ExperimentRecord; 3] = per_point
                .next()
                .expect("three records per (nodes, seed) point")
                .try_into()
                .expect("chunks_exact");
            // A failed run (unanalyzable instance, panic) skips its
            // instance in the aggregate instead of aborting the sweep.
            let (Ok(os), Ok(or), Ok(sar)) = (&os.report, &or.report, &sar.report) else {
                for record in [os, or, sar] {
                    if let Err(e) = &record.report {
                        eprintln!("skipping {} ({}): {e}", record.instance, record.strategy);
                    }
                }
                skipped += 1;
                continue;
            };
            let (os, or, sar) = (&os.best, &or.best, &sar.best);
            if os.is_schedulable() && or.is_schedulable() && sar.is_schedulable() {
                os_bytes.push(os.total_buffers as f64);
                or_bytes.push(or.total_buffers as f64);
                sar_bytes.push(sar.total_buffers as f64);
            }
        }
        println!(
            "{:>6} {:>6} {} {} {} {:>8}",
            nodes,
            nodes * 40,
            cell(mean(&os_bytes)),
            cell(mean(&or_bytes)),
            cell(mean(&sar_bytes)),
            os_bytes.len()
        );
    }
    if skipped > 0 {
        eprintln!("{skipped} instance(s) skipped because a run failed");
    }
}
