//! Figure 9b: average total buffer need `s_total` of the solutions produced
//! by OS (schedulability only), OR (buffer-optimizing) and the SAR
//! near-optimal reference, as the application grows from 80 to 400
//! processes. The paper's headline: OR halves the buffer need of OS and
//! tracks SAR closely.
//!
//! Seeds run in parallel (`RAYON_NUM_THREADS` caps the workers); the
//! aggregated output is identical to the sequential sweep.

use rayon::prelude::*;

use mcs_bench::{cell, mean, ExperimentOptions};
use mcs_core::AnalysisParams;
use mcs_gen::{generate, GeneratorParams};
use mcs_opt::{optimize_resources, sa_resources, OrParams, SaParams};

fn main() {
    let options = ExperimentOptions::from_args();
    let analysis = AnalysisParams::default();
    println!("Figure 9b — avg total buffer need s_total [bytes] (lower is better)");
    println!(
        "{:>6} {:>6} {:>10} {:>10} {:>10} {:>8}",
        "nodes", "procs", "OS", "OR", "SAR", "used"
    );
    for nodes in [2usize, 4, 6, 8, 10] {
        let results: Vec<Option<(f64, f64, f64)>> = (0..options.seeds)
            .into_par_iter()
            .map(|seed| {
                let system = generate(&GeneratorParams::paper_sized(nodes, seed));
                let or = optimize_resources(&system, &analysis, &OrParams::default());
                let sar = sa_resources(
                    &system,
                    &analysis,
                    &SaParams {
                        iterations: options.sa_iters,
                        seed,
                        ..SaParams::default()
                    },
                );
                (or.os.best.is_schedulable() && or.best.is_schedulable() && sar.is_schedulable())
                    .then_some((
                        or.os.best.total_buffers as f64,
                        or.best.total_buffers as f64,
                        sar.total_buffers as f64,
                    ))
            })
            .collect();

        let mut os_bytes = Vec::new();
        let mut or_bytes = Vec::new();
        let mut sar_bytes = Vec::new();
        for (os_b, or_b, sar_b) in results.into_iter().flatten() {
            os_bytes.push(os_b);
            or_bytes.push(or_b);
            sar_bytes.push(sar_b);
        }
        println!(
            "{:>6} {:>6} {} {} {} {:>8}",
            nodes,
            nodes * 40,
            cell(mean(&os_bytes)),
            cell(mean(&or_bytes)),
            cell(mean(&sar_bytes)),
            os_bytes.len()
        );
    }
}
