//! The §6 real-life example: the vehicle cruise controller (40 processes,
//! 2 TTC + 2 ETC nodes, one mode, deadline 250 ms).
//!
//! Paper results: SF produced a 320 ms end-to-end response (deadline miss);
//! OS and SAS produced schedulable systems at 185 ms; OS needed 1020 bytes
//! of buffers, OR reduced that by 24 %, landing within 6 % of SAR.
//!
//! The four independent synthesis runs (SF+OR on one side, SAS and SAR on
//! the other) execute in parallel via `rayon::join`; the reported
//! per-algorithm times are each branch's own wall clock.

use std::time::Instant;

use mcs_bench::ExperimentOptions;
use mcs_core::AnalysisParams;
use mcs_gen::cruise_controller;
use mcs_opt::{
    evaluate, optimize_resources, sa_resources, sa_schedule, straightforward_config, OrParams,
    SaParams,
};

fn main() {
    let options = ExperimentOptions::from_args();
    let analysis = AnalysisParams::default();
    let cc = cruise_controller();
    let graph = cc.system.application.graphs()[0].id();
    let deadline = cc.system.application.graphs()[0].deadline();
    println!("Cruise controller — 40 processes, deadline {deadline}");
    println!();

    let sa = SaParams {
        iterations: options.sa_iters,
        seed: 1,
        ..SaParams::default()
    };
    let ((sf, sf_time, or, heuristics_time), ((sas, sar), sa_time)) = rayon::join(
        || {
            let t = Instant::now();
            let sf = evaluate(&cc.system, straightforward_config(&cc.system), &analysis)
                .expect("SF analyzable");
            let sf_time = t.elapsed();
            let t = Instant::now();
            let or = optimize_resources(&cc.system, &analysis, &OrParams::default());
            (sf, sf_time, or, t.elapsed())
        },
        || {
            let t = Instant::now();
            let runs = rayon::join(
                || sa_schedule(&cc.system, &analysis, &sa),
                || sa_resources(&cc.system, &analysis, &sa),
            );
            (runs, t.elapsed())
        },
    );
    let os = &or.os.best;

    let verdict = |ok: bool| if ok { "meets" } else { "MISSES" };
    println!("end-to-end worst-case response (paper: SF 320 ms, OS/SAS 185 ms):");
    println!(
        "  SF  : {:>10}  {}",
        sf.outcome.graph_response(graph).to_string(),
        verdict(sf.is_schedulable())
    );
    println!(
        "  OS  : {:>10}  {}",
        os.outcome.graph_response(graph).to_string(),
        verdict(os.is_schedulable())
    );
    println!(
        "  SAS : {:>10}  {}",
        sas.outcome.graph_response(graph).to_string(),
        verdict(sas.is_schedulable())
    );
    println!();
    println!("total buffer need (paper: OS 1020 B, OR -24 %, OR within 6 % of SAR):");
    let os_b = os.total_buffers as f64;
    let or_b = or.best.total_buffers as f64;
    let sar_b = sar.total_buffers as f64;
    println!("  OS  : {:>6} B", os.total_buffers);
    println!(
        "  OR  : {:>6} B  ({:+.0} % vs OS)",
        or.best.total_buffers,
        (or_b - os_b) / os_b * 100.0
    );
    println!(
        "  SAR : {:>6} B  (OR is {:+.0} % vs SAR)",
        sar.total_buffers,
        (or_b - sar_b) / sar_b.max(1.0) * 100.0
    );
    println!();
    println!(
        "run times: SF {sf_time:?}, OS+OR {heuristics_time:?}, SA {sa_time:?} \
         ({} iterations each)",
        options.sa_iters
    );
}
