//! The §6 real-life example: the vehicle cruise controller (40 processes,
//! 2 TTC + 2 ETC nodes, one mode, deadline 250 ms).
//!
//! Paper results: SF produced a 320 ms end-to-end response (deadline miss);
//! OS and SAS produced schedulable systems at 185 ms; OS needed 1020 bytes
//! of buffers, OR reduced that by 24 %, landing within 6 % of SAR.
//!
//! The five synthesis runs (SF, OS, OR, SAS, SAR) are one
//! [`mcs_opt::ExperimentRunner`] batch fanned out across cores; each
//! record carries its own wall-clock time.

use std::sync::Arc;

use mcs_bench::ExperimentOptions;
use mcs_core::AnalysisParams;
use mcs_gen::cruise_controller;
use mcs_opt::{ExperimentJob, ExperimentRunner, Or, OrParams, Os, OsParams, Sa, SaParams, Sf};

fn main() {
    let options = ExperimentOptions::from_args();
    let analysis = AnalysisParams::default();
    let cc = cruise_controller();
    let graph = cc.system.application.graphs()[0].id();
    let deadline = cc.system.application.graphs()[0].deadline();
    println!("Cruise controller — 40 processes, deadline {deadline}");
    println!();

    let sa = SaParams {
        iterations: options.sa_iters,
        seed: 1,
        ..SaParams::default()
    };
    let system = Arc::new(cc.system);
    let mut runner = ExperimentRunner::new();
    runner.push(ExperimentJob::new(
        "cruise",
        Arc::clone(&system),
        analysis,
        Sf,
    ));
    runner.push(ExperimentJob::new(
        "cruise",
        Arc::clone(&system),
        analysis,
        Os::new(OsParams::default()),
    ));
    runner.push(ExperimentJob::new(
        "cruise",
        Arc::clone(&system),
        analysis,
        Or::new(OrParams::default()),
    ));
    runner.push(ExperimentJob::new(
        "cruise",
        Arc::clone(&system),
        analysis,
        Sa::schedule(sa),
    ));
    runner.push(ExperimentJob::new(
        "cruise",
        Arc::clone(&system),
        analysis,
        Sa::resources(sa),
    ));
    let records = runner.run();
    let [sf, os, or, sas, sar]: &[mcs_opt::ExperimentRecord; 5] =
        records[..].try_into().expect("five jobs");
    let sf = &sf.expect("SF analyzable").best;
    let os = &os.expect("OS analyzable").best;
    let sas = &sas.expect("SAS analyzable").best;

    let verdict = |ok: bool| if ok { "meets" } else { "MISSES" };
    println!("end-to-end worst-case response (paper: SF 320 ms, OS/SAS 185 ms):");
    println!(
        "  SF  : {:>10}  {}",
        sf.outcome.graph_response(graph).to_string(),
        verdict(sf.is_schedulable())
    );
    println!(
        "  OS  : {:>10}  {}",
        os.outcome.graph_response(graph).to_string(),
        verdict(os.is_schedulable())
    );
    println!(
        "  SAS : {:>10}  {}",
        sas.outcome.graph_response(graph).to_string(),
        verdict(sas.is_schedulable())
    );
    println!();
    println!("total buffer need (paper: OS 1020 B, OR -24 %, OR within 6 % of SAR):");
    let or_best = &or.expect("OR analyzable").best;
    let sar_best = &sar.expect("SAR analyzable").best;
    let os_b = os.total_buffers as f64;
    let or_b = or_best.total_buffers as f64;
    let sar_b = sar_best.total_buffers as f64;
    println!("  OS  : {:>6} B", os.total_buffers);
    println!(
        "  OR  : {:>6} B  ({:+.0} % vs OS)",
        or_best.total_buffers,
        (or_b - os_b) / os_b * 100.0
    );
    println!(
        "  SAR : {:>6} B  (OR is {:+.0} % vs SAR)",
        sar_best.total_buffers,
        (or_b - sar_b) / sar_b.max(1.0) * 100.0
    );
    println!();
    let ms = |micros: u64| micros as f64 / 1_000.0;
    println!(
        "run times: SF {:.1} ms, OS {:.1} ms, OR {:.1} ms, SAS {:.1} ms, SAR {:.1} ms \
         ({} SA iterations each)",
        ms(records[0].elapsed_micros),
        ms(records[1].elapsed_micros),
        ms(records[2].elapsed_micros),
        ms(records[3].elapsed_micros),
        ms(records[4].elapsed_micros),
        options.sa_iters
    );
}
