//! Figure 9c: average percentage deviation of the total buffer need of OS
//! and OR from the SAR reference, on 160-process applications with 10–50
//! inter-cluster messages. The paper's headline: OS degrades quickly as the
//! gateway traffic intensifies, while OR stays close to SAR.
//!
//! Every (instance × strategy) run is one [`mcs_opt::ExperimentRunner`]
//! job fanned out across cores (`RAYON_NUM_THREADS` caps the workers);
//! records come back in submission order, so the output is identical to a
//! sequential sweep. Each record is also emitted as a JSON line (see
//! `--jsonl`).

use mcs_bench::{run_deviation_sweep, write_jsonl, ExperimentOptions, SweepRow};
use mcs_gen::GeneratorParams;

fn main() {
    let options = ExperimentOptions::from_args();
    println!("Figure 9c — avg % deviation of s_total from SAR, 160 processes");
    let rows: Vec<SweepRow> = [10usize, 20, 30, 40, 50]
        .into_iter()
        .map(|inter_cluster| SweepRow {
            key: inter_cluster,
            instances: (0..options.seeds)
                .map(|seed| {
                    let mut params = GeneratorParams::paper_sized(4, 1_000 + seed);
                    params.inter_cluster_messages = Some(inter_cluster);
                    (format!("msgs={inter_cluster},seed={seed}"), params)
                })
                .collect(),
        })
        .collect();
    let records = run_deviation_sweep(options.sa_iters, &rows);
    write_jsonl(&options.jsonl_path("fig9c"), &records);
}
