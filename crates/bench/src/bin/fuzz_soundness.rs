//! Extended soundness campaign: fuzz the analysis/simulation contract far
//! beyond the CI-sized property tests. For hundreds of random systems and
//! configuration styles (straightforward, HOPA, OS-optimized, pinned by OR
//! moves), simulate under randomized execution times and fail loudly on any
//! observation exceeding its analytic bound.
//!
//! The OS synthesis runs — the expensive part of the campaign — are served
//! by a [`SynthesisService`]: fanned out across the worker pool, each under
//! a per-job wall-clock deadline so one pathological instance cannot wedge
//! the whole campaign, with panic isolation so a crashing search costs one
//! record instead of the run. Timed-out or failed syntheses are skipped
//! (and counted); soundness *violations* still abort loudly — they are the
//! bug this campaign exists to catch.
//!
//! Usage: `cargo run --release -p mcs-bench --bin fuzz_soundness [-- --seeds N]`

use std::sync::Arc;
use std::time::Duration;

use mcs_bench::ExperimentOptions;
use mcs_core::{AnalysisParams, FifoBound};
use mcs_gen::{generate, Distribution, GeneratorParams};
use mcs_model::{System, SystemConfig};
use mcs_opt::{
    evaluate, hopa_priorities, neighborhood, straightforward_config, JobSpec, Os, OsParams,
    ServiceConfig, SynthesisService,
};
use mcs_sim::{simulate, simulate_with_faults, ExecutionModel, FaultParams, FaultPlan, SimParams};

/// Wall-clock cap per OS synthesis job; generously above the typical run
/// so it only fires on pathological instances.
const OS_DEADLINE: Duration = Duration::from_secs(60);

fn check(system: &System, config: &SystemConfig, analysis: &AnalysisParams, label: &str) -> bool {
    let Ok(eval) = evaluate(system, config.clone(), analysis) else {
        return false;
    };
    if !eval.is_schedulable() {
        return false;
    }
    for sim_seed in 0..3 {
        let report = simulate(
            system,
            config,
            &eval.outcome,
            &SimParams {
                activations: 3,
                execution: if sim_seed == 0 {
                    ExecutionModel::WorstCase
                } else {
                    ExecutionModel::RandomUniform
                },
                seed: sim_seed,
            },
        )
        .expect("generated systems are simulable");
        let violations = report.soundness_violations(system, &eval.outcome);
        assert!(
            violations.is_empty(),
            "UNSOUND ({label}, sim seed {sim_seed}): {violations:?}"
        );
    }
    // Fault leg: a harsh perturbed run must conserve every corrupted frame
    // and can never produce a *nominal* finding (an unperturbed run that
    // escaped its bounds would classify as one and is a hard bug).
    let plan = FaultPlan::new(FaultParams::HARSH, 0xF001);
    let report = simulate_with_faults(
        system,
        config,
        &eval.outcome,
        &SimParams {
            activations: 3,
            execution: ExecutionModel::RandomUniform,
            seed: 7,
        },
        Some(&plan),
    )
    .expect("generated systems are simulable");
    let faults = &report.faults;
    assert_eq!(
        faults.can_injected,
        faults.can_retransmitted + faults.can_dropped,
        "frame conservation violated ({label})"
    );
    for finding in report.classify_findings(system, &eval.outcome) {
        assert!(
            !finding.is_hard(),
            "UNSOUND ({label}, fault leg): {}",
            finding.detail()
        );
    }
    true
}

fn main() {
    let options = ExperimentOptions::from_args();
    let campaigns = options.seeds.max(5) * 40;

    // Generate every instance and queue its OS synthesis on the service.
    let mut instances = Vec::with_capacity(campaigns as usize);
    let service = SynthesisService::start(ServiceConfig {
        queue_capacity: campaigns as usize,
        ..ServiceConfig::default()
    });
    for seed in 0..campaigns {
        let mut params = GeneratorParams::paper_sized(2, seed);
        params.processes_per_node = 6 + (seed % 10) as usize;
        params.graphs = 2 + (seed % 5) as usize;
        params.utilization_permille = 120 + (seed % 23) as u32 * 10;
        params.inter_cluster_messages = Some(1 + (seed % 7) as usize);
        if seed % 3 == 0 {
            params.wcet_distribution = Distribution::Exponential;
        }
        let system = Arc::new(generate(&params));
        let analysis = AnalysisParams {
            fifo_bound: if seed % 2 == 0 {
                FifoBound::SlotOccurrence
            } else {
                FifoBound::PaperClosedForm
            },
            ..AnalysisParams::default()
        };
        service
            .try_submit(
                JobSpec::new(
                    format!("os/{seed}"),
                    Arc::clone(&system),
                    analysis,
                    Os::new(OsParams::default()),
                )
                .deadline(OS_DEADLINE),
            )
            .expect("queue sized to the campaign");
        instances.push((seed, system, analysis));
    }
    let mut os_records = service.shutdown();
    os_records.sort_by_key(|record| record.id);
    assert_eq!(os_records.len(), instances.len(), "one record per instance");

    let mut checked = 0u64;
    let mut skipped = 0u64;
    for ((seed, system, analysis), os_record) in instances.into_iter().zip(os_records) {
        // Style 1: straightforward slots + HOPA.
        let mut hopa = straightforward_config(&system);
        hopa.priorities = hopa_priorities(&system, &hopa.tdma);
        checked += u64::from(check(&system, &hopa, &analysis, &format!("hopa/{seed}")));

        // Style 2: OS-optimized, synthesized by the service above.
        let outcome_kind = os_record.outcome.kind();
        let os = match os_record.outcome.into_report() {
            Ok(report) => report,
            Err(e) => {
                eprintln!("skipping os/{seed} ({outcome_kind}): {e}");
                skipped += 1;
                continue;
            }
        };
        checked += u64::from(check(
            &system,
            &os.best.config,
            &analysis,
            &format!("os/{seed}"),
        ));

        // Style 3: one random OR-style move applied on top of OS.
        if os.best.is_schedulable() {
            let moves = neighborhood(&system, &os.best);
            if !moves.is_empty() {
                let mv = moves[(seed as usize * 31) % moves.len()];
                let mut pinned = os.best.config.clone();
                mv.apply(&mut pinned);
                checked += u64::from(check(&system, &pinned, &analysis, &format!("move/{seed}")));
            }
        }

        if seed % 50 == 49 {
            println!(
                "...{}/{campaigns} systems, {checked} schedulable configs verified",
                seed + 1
            );
        }
    }
    if skipped > 0 {
        eprintln!("{skipped} OS synthesis run(s) skipped (timed out or failed)");
    }
    println!(
        "soundness campaign passed: {checked} schedulable configurations, \
         3 execution models each, zero violations"
    );
}
