//! Extended soundness campaign: fuzz the analysis/simulation contract far
//! beyond the CI-sized property tests. For hundreds of random systems and
//! configuration styles (straightforward, HOPA, OS-optimized, pinned by OR
//! moves), simulate under randomized execution times and fail loudly on any
//! observation exceeding its analytic bound.
//!
//! Usage: `cargo run --release -p mcs-bench --bin fuzz_soundness [-- --seeds N]`

use mcs_bench::ExperimentOptions;
use mcs_core::{AnalysisParams, FifoBound};
use mcs_gen::{generate, Distribution, GeneratorParams};
use mcs_model::{System, SystemConfig};
use mcs_opt::{
    evaluate, hopa_priorities, neighborhood, straightforward_config, Os, OsParams, Synthesis,
};
use mcs_sim::{simulate, ExecutionModel, SimParams};

fn check(system: &System, config: &SystemConfig, analysis: &AnalysisParams, label: &str) -> bool {
    let Ok(eval) = evaluate(system, config.clone(), analysis) else {
        return false;
    };
    if !eval.is_schedulable() {
        return false;
    }
    for sim_seed in 0..3 {
        let report = simulate(
            system,
            config,
            &eval.outcome,
            &SimParams {
                activations: 3,
                execution: if sim_seed == 0 {
                    ExecutionModel::WorstCase
                } else {
                    ExecutionModel::RandomUniform
                },
                seed: sim_seed,
            },
        );
        let violations = report.soundness_violations(system, &eval.outcome);
        assert!(
            violations.is_empty(),
            "UNSOUND ({label}, sim seed {sim_seed}): {violations:?}"
        );
    }
    true
}

fn main() {
    let options = ExperimentOptions::from_args();
    let campaigns = options.seeds.max(5) * 40;
    let mut checked = 0u64;
    for seed in 0..campaigns {
        let mut params = GeneratorParams::paper_sized(2, seed);
        params.processes_per_node = 6 + (seed % 10) as usize;
        params.graphs = 2 + (seed % 5) as usize;
        params.utilization_permille = 120 + (seed % 23) as u32 * 10;
        params.inter_cluster_messages = Some(1 + (seed % 7) as usize);
        if seed % 3 == 0 {
            params.wcet_distribution = Distribution::Exponential;
        }
        let system = generate(&params);
        let analysis = AnalysisParams {
            fifo_bound: if seed % 2 == 0 {
                FifoBound::SlotOccurrence
            } else {
                FifoBound::PaperClosedForm
            },
            ..AnalysisParams::default()
        };

        // Style 1: straightforward slots + HOPA.
        let mut hopa = straightforward_config(&system);
        hopa.priorities = hopa_priorities(&system, &hopa.tdma);
        checked += u64::from(check(&system, &hopa, &analysis, &format!("hopa/{seed}")));

        // Style 2: OS-optimized.
        let os = Synthesis::builder(&system)
            .analysis(analysis)
            .strategy(Os::new(OsParams::default()))
            .run()
            .expect("the straightforward configuration must be analyzable");
        checked += u64::from(check(
            &system,
            &os.best.config,
            &analysis,
            &format!("os/{seed}"),
        ));

        // Style 3: one random OR-style move applied on top of OS.
        if os.best.is_schedulable() {
            let moves = neighborhood(&system, &os.best);
            if !moves.is_empty() {
                let mv = moves[(seed as usize * 31) % moves.len()];
                let mut pinned = os.best.config.clone();
                mv.apply(&mut pinned);
                checked += u64::from(check(&system, &pinned, &analysis, &format!("move/{seed}")));
            }
        }

        if seed % 50 == 49 {
            println!(
                "...{}/{campaigns} systems, {checked} schedulable configs verified",
                seed + 1
            );
        }
    }
    println!(
        "soundness campaign passed: {checked} schedulable configurations, \
         3 execution models each, zero violations"
    );
}
