//! Seeded fault-injection soundness campaign driver.
//!
//! Fans a grid of `(instance × configuration style × fault scenario ×
//! seeds)` cells through analysis, nominal simulation and fault-injecting
//! simulation (see [`mcs_bench::campaign`]), writing one JSON line per cell
//! to `BENCH_campaign.jsonl` and a one-line summary object to
//! `BENCH_campaign.json`. The run fails (exit 1, offending lines printed)
//! on any **hard** finding: a nominal soundness violation or a CAN
//! frame-conservation breach. Fault-induced degradation is counted, not
//! fatal.
//!
//! Every cell is a pure function of `(--seed, index)`: to replay a cell
//! from a previous run's record, pass the same `--seed` (and `--activations`
//! / `--os-one-in` if overridden) plus `--cell K` — the cell's JSON line is
//! reproduced byte for byte on stdout.
//!
//! Usage:
//! `cargo run --release -p mcs-bench --bin fault_campaign [-- FLAGS]`
//!
//! | flag | effect |
//! |---|---|
//! | `--cells N` | grid size (default 64) |
//! | `--seed S` | campaign base seed (default 0xC0FFEE00) |
//! | `--activations N` | simulated activations per graph (default 2) |
//! | `--os-one-in N` | 1-in-N cells use OS synthesis; 0 disables (default 4) |
//! | `--cell K` | replay exactly cell K, print its line, write nothing |
//! | `--smoke` | the CI profile: 256 cells, fixed seed, bounded deadline |
//! | `--jsonl PATH` | per-cell record path override |

use std::process::ExitCode;
use std::time::Duration;

use mcs_bench::campaign::{run_campaign, run_cells, CampaignSpec};

struct Args {
    spec: CampaignSpec,
    replay: Option<u64>,
    jsonl: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        spec: CampaignSpec::default(),
        replay: None,
        jsonl: None,
    };
    let mut it = std::env::args().skip(1);
    let next_u64 = |flag: &str, it: &mut dyn Iterator<Item = String>| -> u64 {
        it.next()
            .and_then(|v| {
                let v = v.trim();
                match v.strip_prefix("0x") {
                    Some(hex) => u64::from_str_radix(hex, 16).ok(),
                    None => v.parse().ok(),
                }
            })
            .unwrap_or_else(|| panic!("{flag} takes an unsigned integer"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--cells" => args.spec.cells = next_u64("--cells", &mut it),
            "--seed" => args.spec.seed = next_u64("--seed", &mut it),
            "--activations" => args.spec.activations = next_u64("--activations", &mut it),
            "--os-one-in" => args.spec.os_one_in = next_u64("--os-one-in", &mut it),
            "--cell" => args.replay = Some(next_u64("--cell", &mut it)),
            "--smoke" => {
                args.spec.cells = 256;
                args.spec.seed = 0xC0_FFEE;
                args.spec.activations = 2;
                args.spec.os_one_in = 8;
                args.spec.deadline = Duration::from_secs(30);
            }
            "--jsonl" => args.jsonl = Some(it.next().expect("--jsonl takes a path")),
            other => panic!(
                "unknown flag {other}; supported: --cells N, --seed S, \
                 --activations N, --os-one-in N, --cell K, --smoke, --jsonl PATH"
            ),
        }
    }
    args
}

fn repo_root_path(name: &str) -> std::path::PathBuf {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    std::path::Path::new(root).join(name)
}

fn main() -> ExitCode {
    let args = parse_args();

    // Replay path: run the one cell, print its record, touch no files.
    if let Some(index) = args.replay {
        let records = run_cells(&args.spec, &[index]);
        let record = &records[0];
        println!("{}", record.json_line());
        return if record.is_hard_failure() {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }

    let (records, summary) = run_campaign(&args.spec);

    let jsonl_path = args
        .jsonl
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| repo_root_path("BENCH_campaign.jsonl"));
    match std::fs::File::create(&jsonl_path) {
        Ok(file) => {
            let mut writer = mcs_core::JsonLinesWriter::new(std::io::BufWriter::new(file));
            let mut ok = true;
            for record in &records {
                if let Err(e) = writer.write_line(&record.json_line()) {
                    eprintln!("could not write {}: {e}", jsonl_path.display());
                    ok = false;
                    break;
                }
            }
            if ok {
                let n = writer.records();
                match writer.finish() {
                    Ok(_) => println!("recorded {n} cells in {}", jsonl_path.display()),
                    Err(e) => eprintln!("could not flush {}: {e}", jsonl_path.display()),
                }
            }
        }
        Err(e) => eprintln!("could not create {}: {e}", jsonl_path.display()),
    }

    let summary_path = repo_root_path("BENCH_campaign.json");
    match std::fs::write(&summary_path, format!("{}\n", summary.json())) {
        Ok(_) => println!("recorded campaign summary in {}", summary_path.display()),
        Err(e) => eprintln!("could not write {}: {e}", summary_path.display()),
    }

    println!("{}", summary.json());
    if summary.sound() {
        println!(
            "fault campaign passed: {} cells ({} verified, {} unschedulable, \
             {} synthesis failures, {} sim failures), zero nominal violations",
            summary.cells,
            summary.verified,
            summary.unschedulable,
            summary.synthesis_failed,
            summary.sim_failed
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("UNSOUND: hard findings detected; offending cells:");
        for record in records.iter().filter(|r| r.is_hard_failure()) {
            eprintln!("{}", record.json_line());
        }
        eprintln!(
            "replay any cell with: fault_campaign --seed {:#x} --activations {} \
             --os-one-in {} --cell K",
            args.spec.seed, args.spec.activations, args.spec.os_one_in
        );
        ExitCode::FAILURE
    }
}
