//! The Figure 4 worked example: the process graph G1 analyzed under three
//! system configurations. Demonstrates how the TDMA slot order (β) and the
//! ET priorities (π) flip schedulability.
//!
//! Our analysis evaluates the paper's equations strictly and is therefore
//! somewhat more conservative than the trace-annotated numbers printed in
//! the figure (see EXPERIMENTS.md); the configuration ordering is identical.

use mcs_core::{degree_of_schedulability, multi_cluster_scheduling, AnalysisParams};
use mcs_gen::{figure4, figure4_ids};
use mcs_model::{GraphId, SystemConfig, Time};

fn main() {
    let params = AnalysisParams::default();
    for deadline_ms in [200u64, 240] {
        let fig = figure4(Time::from_millis(deadline_ms));
        println!("=== D_G1 = {deadline_ms} ms ===");
        let show = |label: &str, config: &SystemConfig| {
            let outcome =
                multi_cluster_scheduling(&fig.system, config, &params).expect("analyzable");
            let degree = degree_of_schedulability(&fig.system, &outcome);
            let t2 = outcome.process_timing(figure4_ids::P2);
            println!(
                "  ({label}) r_G1 = {:>6}  O2 = {:>5}  J2 = {:>5}  I2 = {:>5}  -> {}",
                outcome.graph_response(GraphId::new(0)).to_string(),
                t2.offset.to_string(),
                t2.jitter.to_string(),
                t2.delay.to_string(),
                if degree.is_schedulable() {
                    "deadline met"
                } else {
                    "DEADLINE MISSED"
                },
            );
        };
        show("a", &fig.config_a); // S_G first, P3 > P2: paper: missed
        show("b", &fig.config_b); // S_1 first: paper: met
        show("c", &fig.config_c); // P2 > P3: paper: met
        println!();
    }
}
