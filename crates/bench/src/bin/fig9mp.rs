//! Figure-9c-style sweep over **multi-period** instances: average
//! percentage deviation of the total buffer need of OS and OR from the SAR
//! reference on 160-process applications generated with the `{1, 2, 4}`
//! period-multiplier set (three phase groups, 4× hyper-period) and 10–50
//! inter-cluster messages. The single-period sweep is `fig9c`; this binary
//! opens the multi-rate workload of the paper's application model (§2.1)
//! that the value-driven worklist engine exploits.
//!
//! Seeds run in parallel (`RAYON_NUM_THREADS` caps the workers); the
//! aggregated output is identical to the sequential sweep.

use rayon::prelude::*;

use mcs_bench::{cell, mean, percent_deviation, ExperimentOptions};
use mcs_core::AnalysisParams;
use mcs_gen::{generate, GeneratorParams};
use mcs_opt::{optimize_resources, sa_resources, OrParams, SaParams};

fn main() {
    let options = ExperimentOptions::from_args();
    let analysis = AnalysisParams::default();
    println!("Figure 9 (multi-period) — avg % deviation of s_total from SAR,");
    println!("160 processes, period multipliers {{1, 2, 4}}");
    println!("{:>9} {:>10} {:>10} {:>8}", "messages", "OS", "OR", "used");
    for inter_cluster in [10usize, 20, 30, 40, 50] {
        let results: Vec<Option<(f64, f64)>> = (0..options.seeds)
            .into_par_iter()
            .map(|seed| {
                let mut params = GeneratorParams::multi_rate(4, 1_000 + seed);
                params.inter_cluster_messages = Some(inter_cluster);
                let system = generate(&params);
                let or = optimize_resources(&system, &analysis, &OrParams::default());
                let sar = sa_resources(
                    &system,
                    &analysis,
                    &SaParams {
                        iterations: options.sa_iters,
                        seed,
                        ..SaParams::default()
                    },
                );
                (or.os.best.is_schedulable() && or.best.is_schedulable() && sar.is_schedulable())
                    .then(|| {
                        let reference = sar.total_buffers as f64;
                        (
                            percent_deviation(or.os.best.total_buffers as f64, reference),
                            percent_deviation(or.best.total_buffers as f64, reference),
                        )
                    })
            })
            .collect();

        let mut os_dev = Vec::new();
        let mut or_dev = Vec::new();
        for (os_d, or_d) in results.into_iter().flatten() {
            os_dev.push(os_d);
            or_dev.push(or_d);
        }
        println!(
            "{:>9} {} {} {:>8}",
            inter_cluster,
            cell(mean(&os_dev)),
            cell(mean(&or_dev)),
            os_dev.len()
        );
    }
}
