//! Figure-9c-style sweeps over **multi-period** instances: average
//! percentage deviation of the total buffer need of OS and OR from the SAR
//! reference on 160-process applications with 10–50 inter-cluster
//! messages, generated with
//!
//! * the `{1, 2, 4}` period-multiplier set (three phase groups, 4×
//!   hyper-period), and
//! * the deep-rate `{1, 8}` preset
//!   ([`mcs_gen::PeriodMultipliers::DEEP`]: two phase groups, 8×
//!   hyper-period — the wide-rate-ratio stressor).
//!
//! The single-period sweep is `fig9c`; this binary opens the multi-rate
//! workload of the paper's application model (§2.1) that the value-driven
//! worklist engine exploits.
//!
//! Every (instance × strategy) run is one [`mcs_opt::ExperimentRunner`]
//! job fanned out across cores (`RAYON_NUM_THREADS` caps the workers);
//! records come back in submission order, so the output is identical to a
//! sequential sweep. Each record is also emitted as a JSON line (see
//! `--jsonl`).

use mcs_bench::{run_deviation_sweep, write_jsonl, ExperimentOptions, SweepRow};
use mcs_gen::GeneratorParams;

fn sweep_rows(
    options: &ExperimentOptions,
    tag: &str,
    make: impl Fn(u64) -> GeneratorParams,
) -> Vec<SweepRow> {
    [10usize, 20, 30, 40, 50]
        .into_iter()
        .map(|inter_cluster| SweepRow {
            key: inter_cluster,
            instances: (0..options.seeds)
                .map(|seed| {
                    let mut params = make(1_000 + seed);
                    params.inter_cluster_messages = Some(inter_cluster);
                    (format!("{tag},msgs={inter_cluster},seed={seed}"), params)
                })
                .collect(),
        })
        .collect()
}

fn main() {
    let options = ExperimentOptions::from_args();
    println!("Figure 9 (multi-period) — avg % deviation of s_total from SAR,");
    println!("160 processes, period multipliers {{1, 2, 4}}");
    let rows = sweep_rows(&options, "mp124", |seed| {
        GeneratorParams::multi_rate(4, seed)
    });
    let mut records = run_deviation_sweep(options.sa_iters, &rows);

    println!();
    println!("160 processes, deep-rate period multipliers {{1, 8}}");
    let rows = sweep_rows(&options, "mp18", |seed| GeneratorParams::deep_rate(4, seed));
    records.extend(run_deviation_sweep(options.sa_iters, &rows));

    write_jsonl(&options.jsonl_path("fig9mp"), &records);
}
