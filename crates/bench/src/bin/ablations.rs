//! Quality ablations for the design choices called out in DESIGN.md §6:
//!
//! 1. HOPA vs. straightforward (index-order) priority assignment inside the
//!    same TDMA configuration;
//! 2. the occurrence-based `Out_TTP` bound vs. the paper's closed form;
//! 3. OR seeded from the full OS seed pool vs. from the single best-δΓ
//!    configuration.
//!
//! Each ablation's seed sweep runs in parallel (`RAYON_NUM_THREADS` caps
//! the workers); rows are printed after collection, in seed order.

use rayon::prelude::*;

use mcs_bench::{cell, mean, ExperimentOptions};
use mcs_core::{multi_cluster_scheduling, AnalysisParams, FifoBound};
use mcs_gen::{generate, GeneratorParams};
use mcs_opt::{evaluate, hopa_priorities, optimize_resources, straightforward_config, OrParams};

fn main() {
    let options = ExperimentOptions::from_args();
    let analysis = AnalysisParams::default();

    println!("Ablation 1 — priority assignment (δΓ cost; lower is better)");
    println!("{:>6} {:>12} {:>12}", "seed", "index-order", "HOPA");
    let rows: Vec<(i128, i128)> = (0..options.seeds)
        .into_par_iter()
        .map(|seed| {
            let system = generate(&GeneratorParams::paper_sized(4, seed));
            let sf = straightforward_config(&system);
            let mut hopa = sf.clone();
            hopa.priorities = hopa_priorities(&system, &hopa.tdma);
            let a = evaluate(&system, sf, &analysis).expect("analyzable");
            let b = evaluate(&system, hopa, &analysis).expect("analyzable");
            (a.schedule_cost(), b.schedule_cost())
        })
        .collect();
    for (seed, (index_order, hopa)) in rows.into_iter().enumerate() {
        println!("{seed:>6} {index_order:>12} {hopa:>12}");
    }
    println!();

    println!("Ablation 2 — Out_TTP bound (graph-response sum in ms; lower = tighter)");
    println!("{:>6} {:>12} {:>12}", "seed", "closed-form", "occurrence");
    let rows: Vec<(u64, u64)> = (0..options.seeds)
        .into_par_iter()
        .map(|seed| {
            let system = generate(&GeneratorParams::paper_sized(4, seed));
            let config = {
                let mut c = straightforward_config(&system);
                c.priorities = hopa_priorities(&system, &c.tdma);
                c
            };
            let total = |bound| {
                let params = AnalysisParams {
                    fifo_bound: bound,
                    ..analysis
                };
                let outcome =
                    multi_cluster_scheduling(&system, &config, &params).expect("analyzable");
                system
                    .application
                    .graphs()
                    .iter()
                    .map(|g| outcome.graph_response(g.id()).ticks() / 1_000)
                    .sum::<u64>()
            };
            (
                total(FifoBound::PaperClosedForm),
                total(FifoBound::SlotOccurrence),
            )
        })
        .collect();
    for (seed, (closed, occurrence)) in rows.into_iter().enumerate() {
        println!("{seed:>6} {closed:>12} {occurrence:>12}");
    }
    println!();

    println!("Ablation 3 — OR seeding (s_total in bytes; lower is better)");
    println!("{:>6} {:>12} {:>12}", "seed", "best-only", "seed-pool");
    let rows: Vec<(u64, u64)> = (0..options.seeds)
        .into_par_iter()
        .map(|seed| {
            let system = generate(&GeneratorParams::paper_sized(2, seed));
            let pool = optimize_resources(&system, &analysis, &OrParams::default());
            let best_only = optimize_resources(
                &system,
                &analysis,
                &OrParams {
                    os: mcs_opt::OsParams {
                        seed_limit: 1,
                        ..mcs_opt::OsParams::default()
                    },
                    ..OrParams::default()
                },
            );
            (pool.best.total_buffers, best_only.best.total_buffers)
        })
        .collect();
    let mut pool_wins = Vec::new();
    for (seed, (pool, best_only)) in rows.into_iter().enumerate() {
        println!("{seed:>6} {best_only:>12} {pool:>12}");
        pool_wins.push(best_only as f64 - pool as f64);
    }
    println!(
        "mean bytes saved by the seed pool: {}",
        cell(mean(&pool_wins))
    );
}
