//! Quality ablations for the design choices called out in DESIGN.md §6:
//!
//! 1. HOPA vs. straightforward (index-order) priority assignment inside the
//!    same TDMA configuration;
//! 2. the occurrence-based `Out_TTP` bound vs. the paper's closed form;
//! 3. OR seeded from the full OS seed pool vs. from the single best-δΓ
//!    configuration.
//!
//! Ablations 1 and 3 run as [`mcs_opt::ExperimentRunner`] batches; the
//! ablation-2 seed sweep fans out with `rayon` (`RAYON_NUM_THREADS` caps
//! the workers). Rows are printed after collection, in seed order.

use std::sync::Arc;

use rayon::prelude::*;

use mcs_bench::{cell, mean, ExperimentOptions};
use mcs_core::{multi_cluster_scheduling, AnalysisParams, FifoBound};
use mcs_gen::{generate, GeneratorParams};
use mcs_opt::{
    hopa_priorities, straightforward_config, ExperimentJob, ExperimentRunner, Hopa, Or, OrParams,
    OsParams, Sf,
};

fn main() {
    let options = ExperimentOptions::from_args();
    let analysis = AnalysisParams::default();

    println!("Ablation 1 — priority assignment (δΓ cost; lower is better)");
    println!("{:>6} {:>12} {:>12}", "seed", "index-order", "HOPA");
    let mut runner = ExperimentRunner::new();
    for seed in 0..options.seeds {
        let system = Arc::new(generate(&GeneratorParams::paper_sized(4, seed)));
        let instance = format!("seed={seed}");
        runner.push(ExperimentJob::new(
            instance.clone(),
            Arc::clone(&system),
            analysis,
            Sf,
        ));
        runner.push(ExperimentJob::new(instance, system, analysis, Hopa));
    }
    let records = runner.run();
    for (seed, pair) in records.chunks_exact(2).enumerate() {
        let index_order = pair[0].expect("SF analyzable").best.schedule_cost();
        let hopa = pair[1].expect("HOPA analyzable").best.schedule_cost();
        println!("{seed:>6} {index_order:>12} {hopa:>12}");
    }
    println!();

    println!("Ablation 2 — Out_TTP bound (graph-response sum in ms; lower = tighter)");
    println!("{:>6} {:>12} {:>12}", "seed", "closed-form", "occurrence");
    let rows: Vec<(u64, u64)> = (0..options.seeds)
        .into_par_iter()
        .map(|seed| {
            let system = generate(&GeneratorParams::paper_sized(4, seed));
            let config = {
                let mut c = straightforward_config(&system);
                c.priorities = hopa_priorities(&system, &c.tdma);
                c
            };
            let total = |bound| {
                let params = AnalysisParams {
                    fifo_bound: bound,
                    ..analysis
                };
                let outcome =
                    multi_cluster_scheduling(&system, &config, &params).expect("analyzable");
                system
                    .application
                    .graphs()
                    .iter()
                    .map(|g| outcome.graph_response(g.id()).ticks() / 1_000)
                    // mcs-lint: allow(float-reduction) -- sequential u64 sum inside the per-seed closure; integer addition is order-independent
                    .sum::<u64>()
            };
            (
                total(FifoBound::PaperClosedForm),
                total(FifoBound::SlotOccurrence),
            )
        })
        .collect();
    for (seed, (closed, occurrence)) in rows.into_iter().enumerate() {
        println!("{seed:>6} {closed:>12} {occurrence:>12}");
    }
    println!();

    println!("Ablation 3 — OR seeding (s_total in bytes; lower is better)");
    println!("{:>6} {:>12} {:>12}", "seed", "best-only", "seed-pool");
    let mut runner = ExperimentRunner::new();
    for seed in 0..options.seeds {
        let system = Arc::new(generate(&GeneratorParams::paper_sized(2, seed)));
        let instance = format!("seed={seed}");
        runner.push(
            ExperimentJob::new(
                instance.clone(),
                Arc::clone(&system),
                analysis,
                Or::new(OrParams::default()),
            )
            .labelled("OR/seed-pool"),
        );
        runner.push(
            ExperimentJob::new(
                instance,
                system,
                analysis,
                Or::new(OrParams {
                    os: OsParams {
                        seed_limit: 1,
                        ..OsParams::default()
                    },
                    ..OrParams::default()
                }),
            )
            .labelled("OR/best-only"),
        );
    }
    let records = runner.run();
    let mut pool_wins = Vec::new();
    for (seed, pair) in records.chunks_exact(2).enumerate() {
        let pool = pair[0].expect("OR analyzable").best.total_buffers;
        let best_only = pair[1].expect("OR analyzable").best.total_buffers;
        println!("{seed:>6} {best_only:>12} {pool:>12}");
        pool_wins.push(best_only as f64 - pool as f64);
    }
    println!(
        "mean bytes saved by the seed pool: {}",
        cell(mean(&pool_wins))
    );
}
