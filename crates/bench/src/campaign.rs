//! Seeded fault-injection soundness campaigns.
//!
//! A campaign fans a grid of randomized cells — `(instance × configuration
//! style × fault scenario × seeds)` — through the analysis, the nominal
//! simulator and the fault-injecting simulator, and classifies every
//! deviation with [`SimReport::classify_findings`]. The one outcome a
//! campaign exists to catch is a **nominal violation**: an unperturbed
//! observation escaping its analytic bound, i.e. an analysis bug.
//! Fault-induced deviations are expected degradation and are merely
//! counted.
//!
//! Every cell is a pure function of the [`CampaignSpec`] and its index:
//! [`plan_cell`] derives the generator parameters, configuration style,
//! fault scenario and all seeds from one splitmix-style per-cell stream, so
//! any cell from a campaign summary can be replayed in isolation
//! (`fault_campaign --cell K`) and reproduces its JSON record byte for
//! byte. The only nondeterminism is the synthesis deadline: a cell whose
//! schedule synthesis times out is recorded as
//! [`CellStatus::SynthesisFailed`] and skipped, never silently dropped.
//!
//! The expensive part — schedule-optimized (OS) synthesis for the cells
//! that ask for it — is served by a [`SynthesisService`]: parallel workers,
//! per-job wall-clock deadlines, panic isolation, and a [`JobSpec::tag`]
//! carrying the cell index so records pair with their cells without name
//! parsing.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use mcs_core::{json_line, AnalysisParams, FifoBound, JsonField};
use mcs_gen::{generate, GeneratorParams};
use mcs_opt::{
    evaluate, hopa_priorities, straightforward_config, JobSpec, Os, OsParams, ServiceConfig,
    SynthesisService,
};
use mcs_sim::{
    simulate, simulate_with_faults, ExecutionModel, FaultParams, FaultPlan, SimParams, SimReport,
};

/// Per-cell stream separation constant (the 64-bit golden ratio, as in
/// splitmix64): cell `i` draws from `StdRng::seed_from_u64(seed ^ i·φ)`.
const CELL_STREAM: u64 = 0x9E37_79B9_7F4A_7C15;

/// The campaign grid: how many cells, the base seed every cell derives
/// from, and the envelope knobs shared by all cells.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CampaignSpec {
    /// Number of cells in the campaign.
    pub cells: u64,
    /// Base seed; each cell's stream is `seed ^ index · φ64`.
    pub seed: u64,
    /// Activations simulated per process graph (the horizon).
    pub activations: u64,
    /// One cell in `os_one_in` uses an OS-synthesized configuration (the
    /// expensive style); the rest use straightforward slots + HOPA
    /// priorities. `0` disables OS cells entirely.
    pub os_one_in: u64,
    /// Wall-clock deadline per OS synthesis job.
    pub deadline: Duration,
}

impl Default for CampaignSpec {
    fn default() -> Self {
        CampaignSpec {
            cells: 64,
            seed: 0xC0FF_EE00,
            activations: 2,
            os_one_in: 4,
            deadline: Duration::from_secs(60),
        }
    }
}

/// How a cell's configuration is produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConfigStyle {
    /// Straightforward slot sizing + HOPA priorities (cheap, always local).
    Hopa,
    /// Schedule-optimized synthesis served through the worker pool.
    Os,
}

impl ConfigStyle {
    /// The stable label used in JSON records.
    pub fn as_str(self) -> &'static str {
        match self {
            ConfigStyle::Hopa => "hopa",
            ConfigStyle::Os => "os",
        }
    }
}

/// One fully-planned campaign cell: everything needed to run (or replay)
/// it, derived deterministically from `(spec, index)` by [`plan_cell`].
#[derive(Clone, Copy, Debug)]
pub struct CampaignCell {
    /// The cell's index in the campaign grid.
    pub index: u64,
    /// Generator parameters of the instance (seed included).
    pub gen: GeneratorParams,
    /// Analysis parameters (the FIFO-bound flavour alternates).
    pub analysis: AnalysisParams,
    /// Configuration style.
    pub style: ConfigStyle,
    /// Name of the fault scenario (a [`GeneratorParams::fault_presets`]
    /// entry).
    pub preset: &'static str,
    /// The fault scenario itself.
    pub fault: FaultParams,
    /// Seed of the fault plan's RNG stream.
    pub fault_seed: u64,
    /// Seed of the simulator's execution-time stream.
    pub sim_seed: u64,
    /// Activations simulated per graph (carried from the spec).
    pub activations: u64,
}

/// Plans cell `index` of `spec`: a pure function, so a single cell can be
/// replayed without planning the rest of the grid.
pub fn plan_cell(spec: &CampaignSpec, index: u64) -> CampaignCell {
    let mut rng = StdRng::seed_from_u64(spec.seed ^ index.wrapping_mul(CELL_STREAM));
    let mut gen = GeneratorParams::paper_sized(2, rng.next_u64());
    gen.processes_per_node = 4 + (rng.next_u64() % 5) as usize;
    gen.graphs = 2 + (rng.next_u64() % 4) as usize;
    gen.utilization_permille = 150 + 10 * (rng.next_u64() % 21) as u32;
    gen.inter_cluster_messages = Some(1 + (rng.next_u64() % 5) as usize);
    let analysis = AnalysisParams {
        fifo_bound: if rng.next_u64() % 2 == 0 {
            FifoBound::SlotOccurrence
        } else {
            FifoBound::PaperClosedForm
        },
        ..AnalysisParams::default()
    };
    let style = if spec.os_one_in > 0 && rng.next_u64() % spec.os_one_in == 0 {
        ConfigStyle::Os
    } else {
        ConfigStyle::Hopa
    };
    let presets = gen.fault_presets();
    let (preset, fault) = presets[(rng.next_u64() % presets.len() as u64) as usize];
    CampaignCell {
        index,
        gen,
        analysis,
        style,
        preset,
        fault,
        fault_seed: rng.next_u64(),
        sim_seed: rng.next_u64(),
        activations: spec.activations,
    }
}

/// How a cell ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CellStatus {
    /// Analysis, nominal simulation and fault simulation all ran; the
    /// finding counters say what they observed.
    Verified,
    /// The configuration was not schedulable — analytic bounds carry no
    /// soundness obligation, so the cell stops there.
    Unschedulable,
    /// OS synthesis failed, timed out or panicked (skip-and-count).
    SynthesisFailed,
    /// The simulator rejected the cell ([`mcs_sim::SimError`]).
    SimFailed,
}

impl CellStatus {
    /// The stable label used in JSON records.
    pub fn as_str(self) -> &'static str {
        match self {
            CellStatus::Verified => "verified",
            CellStatus::Unschedulable => "unschedulable",
            CellStatus::SynthesisFailed => "synthesis_failed",
            CellStatus::SimFailed => "sim_failed",
        }
    }
}

/// The record of one executed cell, rendered as one byte-stable JSON line
/// (no wall-clock fields — replaying the cell reproduces the line exactly).
#[derive(Clone, Debug)]
pub struct CellRecord {
    /// The cell's index.
    pub cell: u64,
    /// Generator seed of the instance (for standalone regeneration).
    pub gen_seed: u64,
    /// Configuration style.
    pub style: ConfigStyle,
    /// Fault scenario name.
    pub preset: &'static str,
    /// Fault-plan seed.
    pub fault_seed: u64,
    /// Simulator execution-time seed.
    pub sim_seed: u64,
    /// How the cell ended.
    pub status: CellStatus,
    /// Error detail for failed cells.
    pub error: Option<String>,
    /// Unperturbed observations past their bound — analysis bugs.
    pub nominal_violations: u64,
    /// Bound excursions on perturbed runs (expected under fault).
    pub fault_masked: u64,
    /// Deadline misses under fault (graceful-degradation metric).
    pub degraded_misses: u64,
    /// CAN corruptions injected in the fault leg.
    pub can_injected: u64,
    /// ... of which retransmitted within the retry budget.
    pub can_retransmitted: u64,
    /// ... of which dropped past it.
    pub can_dropped: u64,
    /// Overload episodes started.
    pub overload_episodes: u64,
    /// Worst observed TTC clock drift, in ticks.
    pub max_drift_ticks: u64,
    /// `can_injected == can_retransmitted + can_dropped` (must hold).
    pub frame_conserved: bool,
    /// Digest of the nominal-leg report (`0` when the leg never ran).
    pub nominal_digest: u64,
    /// Digest of the fault-leg report (`0` when the leg never ran).
    pub fault_digest: u64,
}

impl CellRecord {
    fn skipped(cell: &CampaignCell, status: CellStatus, error: Option<String>) -> Self {
        CellRecord {
            cell: cell.index,
            gen_seed: cell.gen.seed,
            style: cell.style,
            preset: cell.preset,
            fault_seed: cell.fault_seed,
            sim_seed: cell.sim_seed,
            status,
            error,
            nominal_violations: 0,
            fault_masked: 0,
            degraded_misses: 0,
            can_injected: 0,
            can_retransmitted: 0,
            can_dropped: 0,
            overload_episodes: 0,
            max_drift_ticks: 0,
            frame_conserved: true,
            nominal_digest: 0,
            fault_digest: 0,
        }
    }

    /// `true` iff the cell surfaced a hard finding (a nominal violation or
    /// a frame-conservation breach) — the conditions a campaign fails on.
    pub fn is_hard_failure(&self) -> bool {
        self.nominal_violations > 0 || !self.frame_conserved
    }

    /// Renders the record as one stable JSON line (see
    /// [`mcs_core::json_line`]). Field order and encoding are part of the
    /// replay contract: same `(spec, cell)` ⇒ same bytes.
    pub fn json_line(&self) -> String {
        use JsonField as F;
        let nominal_digest = format!("{:016x}", self.nominal_digest);
        let fault_digest = format!("{:016x}", self.fault_digest);
        let mut fields = vec![
            ("cell", F::UInt(self.cell)),
            ("gen_seed", F::UInt(self.gen_seed)),
            ("style", F::Str(self.style.as_str())),
            ("preset", F::Str(self.preset)),
            ("fault_seed", F::UInt(self.fault_seed)),
            ("sim_seed", F::UInt(self.sim_seed)),
            ("status", F::Str(self.status.as_str())),
            ("ok", F::Bool(!self.is_hard_failure())),
        ];
        if let Some(error) = &self.error {
            fields.push(("error", F::Str(error)));
        }
        if self.status == CellStatus::Verified {
            fields.extend([
                ("nominal_violations", F::UInt(self.nominal_violations)),
                ("fault_masked", F::UInt(self.fault_masked)),
                ("degraded_misses", F::UInt(self.degraded_misses)),
                ("can_injected", F::UInt(self.can_injected)),
                ("can_retransmitted", F::UInt(self.can_retransmitted)),
                ("can_dropped", F::UInt(self.can_dropped)),
                ("overload_episodes", F::UInt(self.overload_episodes)),
                ("max_drift_ticks", F::UInt(self.max_drift_ticks)),
                ("frame_conserved", F::Bool(self.frame_conserved)),
                ("nominal_digest", F::Str(&nominal_digest)),
                ("fault_digest", F::Str(&fault_digest)),
            ]);
        }
        json_line(&fields)
    }
}

/// Aggregate counters of one campaign run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CampaignSummary {
    /// Cells executed.
    pub cells: u64,
    /// Cells fully verified.
    pub verified: u64,
    /// Cells whose configuration was unschedulable.
    pub unschedulable: u64,
    /// Cells skipped because synthesis failed or timed out.
    pub synthesis_failed: u64,
    /// Cells the simulator rejected.
    pub sim_failed: u64,
    /// Total nominal (hard) violations across all cells.
    pub nominal_violations: u64,
    /// Total fault-masked bound excursions.
    pub fault_masked: u64,
    /// Total deadline misses under fault.
    pub degraded_misses: u64,
    /// Total CAN corruptions injected.
    pub can_injected: u64,
    /// Total CAN frames dropped.
    pub can_dropped: u64,
    /// Total overload episodes.
    pub overload_episodes: u64,
    /// Cells that breached frame conservation (must stay 0).
    pub conservation_breaches: u64,
}

impl CampaignSummary {
    /// Folds one record into the summary.
    pub fn absorb(&mut self, record: &CellRecord) {
        self.cells += 1;
        match record.status {
            CellStatus::Verified => self.verified += 1,
            CellStatus::Unschedulable => self.unschedulable += 1,
            CellStatus::SynthesisFailed => self.synthesis_failed += 1,
            CellStatus::SimFailed => self.sim_failed += 1,
        }
        self.nominal_violations += record.nominal_violations;
        self.fault_masked += record.fault_masked;
        self.degraded_misses += record.degraded_misses;
        self.can_injected += record.can_injected;
        self.can_dropped += record.can_dropped;
        self.overload_episodes += record.overload_episodes;
        self.conservation_breaches += u64::from(!record.frame_conserved);
    }

    /// `true` iff the campaign surfaced no hard finding.
    pub fn sound(&self) -> bool {
        self.nominal_violations == 0 && self.conservation_breaches == 0
    }

    /// The summary as one single-line JSON object (the
    /// `BENCH_campaign.json` body).
    pub fn json(&self) -> String {
        use JsonField as F;
        json_line(&[
            ("cells", F::UInt(self.cells)),
            ("verified", F::UInt(self.verified)),
            ("unschedulable", F::UInt(self.unschedulable)),
            ("synthesis_failed", F::UInt(self.synthesis_failed)),
            ("sim_failed", F::UInt(self.sim_failed)),
            ("nominal_violations", F::UInt(self.nominal_violations)),
            ("fault_masked", F::UInt(self.fault_masked)),
            ("degraded_misses", F::UInt(self.degraded_misses)),
            ("can_injected", F::UInt(self.can_injected)),
            ("can_dropped", F::UInt(self.can_dropped)),
            ("overload_episodes", F::UInt(self.overload_episodes)),
            ("conservation_breaches", F::UInt(self.conservation_breaches)),
            ("sound", F::Bool(self.sound())),
        ])
    }
}

/// Runs the full campaign: every cell of `spec`, in index order.
pub fn run_campaign(spec: &CampaignSpec) -> (Vec<CellRecord>, CampaignSummary) {
    let indices: Vec<u64> = (0..spec.cells).collect();
    let records = run_cells(spec, &indices);
    let mut summary = CampaignSummary::default();
    for record in &records {
        summary.absorb(record);
    }
    (records, summary)
}

/// Runs the listed cells of `spec` (the `--cell K` replay path runs one).
///
/// OS-style cells are synthesized first, fanned across a
/// [`SynthesisService`] worker pool under `spec.deadline`; evaluation and
/// the two simulation legs then run sequentially per cell, so the records
/// come back in the order of `indices`.
pub fn run_cells(spec: &CampaignSpec, indices: &[u64]) -> Vec<CellRecord> {
    let cells: Vec<CampaignCell> = indices.iter().map(|&i| plan_cell(spec, i)).collect();
    let systems: Vec<Arc<_>> = cells.iter().map(|c| Arc::new(generate(&c.gen))).collect();

    // Fan the OS syntheses out; `tag = index + 1` pairs records to cells
    // (0 marks "untagged" in the record stream, hence the shift).
    let service = SynthesisService::start(ServiceConfig {
        queue_capacity: cells.len().max(1),
        ..ServiceConfig::default()
    });
    for (cell, system) in cells.iter().zip(&systems) {
        if cell.style == ConfigStyle::Os {
            service
                .try_submit(
                    JobSpec::new(
                        format!("cell/{}", cell.index),
                        Arc::clone(system),
                        cell.analysis,
                        Os::new(OsParams::default()),
                    )
                    .deadline(spec.deadline)
                    .tag(cell.index + 1),
                )
                .expect("queue sized to the cell count");
        }
    }
    let mut synthesized: HashMap<u64, _> = HashMap::new();
    for record in service.shutdown() {
        synthesized.insert(record.tag - 1, record.outcome);
    }

    cells
        .iter()
        .zip(&systems)
        .map(|(cell, system)| {
            let config = match cell.style {
                ConfigStyle::Hopa => {
                    let mut config = straightforward_config(system);
                    config.priorities = hopa_priorities(system, &config.tdma);
                    config
                }
                ConfigStyle::Os => {
                    let outcome = synthesized
                        .remove(&cell.index)
                        .expect("one synthesis record per OS cell");
                    let kind = outcome.kind();
                    match outcome.into_report() {
                        Ok(report) => report.best.config,
                        Err(e) => {
                            return CellRecord::skipped(
                                cell,
                                CellStatus::SynthesisFailed,
                                Some(format!("{kind}: {e}")),
                            );
                        }
                    }
                }
            };
            run_planned_cell(cell, system, config)
        })
        .collect()
}

/// Executes one planned cell against a resolved configuration: analysis,
/// nominal simulation, fault simulation, classification.
fn run_planned_cell(
    cell: &CampaignCell,
    system: &mcs_model::System,
    config: mcs_model::SystemConfig,
) -> CellRecord {
    let eval = match evaluate(system, config, &cell.analysis) {
        Ok(eval) => eval,
        Err(e) => {
            return CellRecord::skipped(cell, CellStatus::SynthesisFailed, Some(e.to_string()));
        }
    };
    if !eval.is_schedulable() {
        return CellRecord::skipped(cell, CellStatus::Unschedulable, None);
    }
    let params = SimParams {
        activations: cell.activations,
        execution: ExecutionModel::RandomUniform,
        seed: cell.sim_seed,
    };

    // Nominal leg: any bound excursion here is an analysis bug.
    let nominal: SimReport = match simulate(system, &eval.config, &eval.outcome, &params) {
        Ok(report) => report,
        Err(e) => return CellRecord::skipped(cell, CellStatus::SimFailed, Some(e.to_string())),
    };
    let mut nominal_violations = nominal.soundness_violations(system, &eval.outcome).len() as u64;

    // Fault leg: perturb with the cell's scenario and classify.
    let plan = FaultPlan::new(cell.fault, cell.fault_seed);
    let faulty =
        match simulate_with_faults(system, &eval.config, &eval.outcome, &params, Some(&plan)) {
            Ok(report) => report,
            Err(e) => return CellRecord::skipped(cell, CellStatus::SimFailed, Some(e.to_string())),
        };
    let mut fault_masked = 0;
    let mut degraded_misses = 0;
    for finding in faulty.classify_findings(system, &eval.outcome) {
        use mcs_sim::SoundnessFinding as SF;
        match finding {
            SF::NominalViolation(_) => nominal_violations += 1,
            SF::FaultMaskedViolation(_) => fault_masked += 1,
            SF::DegradedDeadlineMiss(_) => degraded_misses += 1,
        }
    }
    let f = &faulty.faults;
    CellRecord {
        cell: cell.index,
        gen_seed: cell.gen.seed,
        style: cell.style,
        preset: cell.preset,
        fault_seed: cell.fault_seed,
        sim_seed: cell.sim_seed,
        status: CellStatus::Verified,
        error: None,
        nominal_violations,
        fault_masked,
        degraded_misses,
        can_injected: f.can_injected,
        can_retransmitted: f.can_retransmitted,
        can_dropped: f.can_dropped,
        overload_episodes: f.overload_episodes,
        max_drift_ticks: f.max_drift.ticks(),
        frame_conserved: f.can_injected == f.can_retransmitted + f.can_dropped,
        nominal_digest: nominal.digest(),
        fault_digest: faulty.digest(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planning_is_deterministic_and_varied() {
        let spec = CampaignSpec::default();
        for index in 0..16 {
            let a = plan_cell(&spec, index);
            let b = plan_cell(&spec, index);
            assert_eq!(a.gen, b.gen);
            assert_eq!(a.style, b.style);
            assert_eq!(a.preset, b.preset);
            assert_eq!(a.fault_seed, b.fault_seed);
            assert_eq!(a.sim_seed, b.sim_seed);
        }
        let presets: std::collections::HashSet<_> =
            (0..64).map(|i| plan_cell(&spec, i).preset).collect();
        assert!(presets.len() >= 3, "presets must vary: {presets:?}");
        assert!((0..64).any(|i| plan_cell(&spec, i).style == ConfigStyle::Os));
        assert!((0..64).any(|i| plan_cell(&spec, i).style == ConfigStyle::Hopa));
    }

    #[test]
    fn records_replay_byte_identically() {
        let spec = CampaignSpec {
            cells: 3,
            os_one_in: 0, // HOPA only: keep the test debug-build cheap.
            ..CampaignSpec::default()
        };
        let (records, summary) = run_campaign(&spec);
        assert_eq!(records.len(), 3);
        assert!(summary.sound(), "{}", summary.json());
        for record in &records {
            let replayed = run_cells(&spec, &[record.cell]);
            assert_eq!(replayed.len(), 1);
            assert_eq!(replayed[0].json_line(), record.json_line());
        }
    }

    #[test]
    fn summary_absorbs_and_serializes() {
        let spec = CampaignSpec {
            cells: 2,
            os_one_in: 0,
            ..CampaignSpec::default()
        };
        let (records, summary) = run_campaign(&spec);
        assert_eq!(summary.cells, 2);
        assert_eq!(
            summary.cells,
            summary.verified
                + summary.unschedulable
                + summary.synthesis_failed
                + summary.sim_failed
        );
        let json = summary.json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"sound\": "));
        for record in &records {
            assert!(record.json_line().contains("\"status\": "));
        }
    }
}
