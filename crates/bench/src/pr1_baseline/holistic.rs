//! PR 1's holistic pass, **frozen verbatim** as the `pr1_baseline`
//! reference (only imports and visibilities adapted): the holistic
//! response-time analysis of the event-triggered side, given a fixed TTC
//! schedule (the paper's `ResponseTimeAnalysis(Γ, φ, π)`).
//!
//! For a fixed static schedule of the TTC (process start times and frame
//! placements), this module iterates the coupled fixed points of
//!
//! * offset/jitter propagation along the process graphs
//!   (`J_D(m) = r_m`, `O_B = max` over predecessor availabilities),
//! * CAN queuing delays of every message with a CAN leg (`mcs-can`),
//! * `Out_TTP` FIFO delays of ETC→TTC messages ([`crate::queues`]), and
//! * preemption delays of processes sharing each ET CPU ([`crate::rta`]),
//!
//! until the response times stabilize. All quantities grow monotonically, so
//! the iteration either converges or crosses the analysis horizon, in which
//! case the affected delays are clamped to the horizon and the result is
//! flagged as diverged (unschedulable).
//!
//! The pass operates entirely on the reusable state of [`crate::context`]:
//! the immutable `SystemContext` tables and the `Scratch` vectors, which it
//! clears (never reallocates) on entry.

use mcs_can::CanFlow;
use mcs_model::{MessageId, MessageRoute, Priority, System, Time};
use mcs_ttp::TtcSchedule;

use mcs_core::{
    fifo_delay_from, fifo_delay_occurrence, FifoBound, FifoFlow, TaskFlow, TtpQueueParams,
};

use super::context::{Scratch, SystemContext};

/// Ranks: the gateway transfer process outranks all application processes.
fn app_rank(priority: Priority) -> u64 {
    1 << 32 | u64::from(priority.level())
}
const TRANSFER_RANK: u64 = 0;

/// One holistic analysis pass over a fixed TTC schedule, reading the shared
/// [`SystemContext`] and mutating only the [`Scratch`].
pub(super) struct Holistic<'a> {
    pub ctx: &'a SystemContext,
    pub system: &'a System,
    pub schedule: &'a TtcSchedule,
    pub ttp_queue: TtpQueueParams,
    /// One extra round of FIFO pessimism when the TDMA grid does not
    /// re-align with the hyper-period (the gateway slot's phase then drifts
    /// across activations).
    pub grid_slack: Time,
    pub horizon: Time,
    pub max_iterations: u32,
    pub fifo_bound: FifoBound,
    pub s: &'a mut Scratch,
}

impl Holistic<'_> {
    /// Runs the fixed point to convergence (or the iteration cap), leaving
    /// the converged timing state and queue bounds in the scratch.
    ///
    /// Convergence is detected by the pass memos: an iteration in which
    /// every kernel pass saw inputs identical to the previous iteration has
    /// changed nothing (the flows embed every fingerprinted quantity — the
    /// offsets, jitters and responses of both processes and message legs),
    /// which is exactly the classic fixed-point termination test without
    /// snapshotting the state vectors.
    pub(super) fn run(&mut self) {
        self.reset();
        let mut first = true;
        for _ in 0..self.max_iterations {
            self.propagate_offsets_and_jitters(first);
            first = false;
            let can_stable = self.can_pass();
            let fifo_stable = self.fifo_pass();
            let cpu_stable = self.cpu_pass();
            if can_stable && fifo_stable && cpu_stable {
                break;
            }
        }
        self.queue_bounds();
    }

    /// Clears the scratch to the initial fixed-point state (`r_i = C_i`,
    /// everything else zero), reusing the allocations.
    fn reset(&mut self) {
        let app = &self.system.application;
        let n_p = app.processes().len();
        let n_m = app.messages().len();
        let s = &mut *self.s;
        for v in [&mut s.po, &mut s.pj, &mut s.pw, &mut s.pr] {
            v.clear();
            v.resize(n_p, Time::ZERO);
        }
        for v in [
            &mut s.can_o,
            &mut s.can_j,
            &mut s.can_w,
            &mut s.can_r,
            &mut s.ttp_o,
            &mut s.ttp_j,
            &mut s.ttp_w,
            &mut s.ttp_r,
            &mut s.arrival,
        ] {
            v.clear();
            v.resize(n_m, Time::ZERO);
        }
        s.backlog.clear();
        s.backlog.resize(n_m, 0);
        s.fifo_warm.clear();
        s.fifo_warm.resize(self.ctx.fifo_ids.len(), Time::ZERO);
        s.prev_can_flows.clear();
        s.prev_fifo_flows.clear();
        s.prev_task_flows
            .resize(self.ctx.et_nodes.len(), Vec::new());
        for prev in &mut s.prev_task_flows {
            prev.clear();
        }
        s.diverged = false;
        s.pr.copy_from_slice(&self.ctx.proc_wcet);
    }

    /// Topological pass updating `O` and `J` of ET processes and of every
    /// message leg from the current response times.
    ///
    /// Offsets are propagated as *earliest availabilities*: an entity's
    /// offset is the best-case instant its triggering data can exist
    /// (predecessor offset + BCET + minimal transmission), and its jitter is
    /// the gap to the worst-case availability. This matches the paper's
    /// worked numbers (Figure 4a: `J_2 = 15`, `r_2 = 55`, `r_3 = 45`) and
    /// spreads ET-chain offsets so that the queue analyses can phase flows
    /// apart.
    ///
    /// Offsets are built from BCETs and the (fixed) schedule only, so they
    /// are invariant across the iterations of one holistic run: after the
    /// `first` pass resolves them in topological order, later passes update
    /// only the jitter side.
    fn propagate_offsets_and_jitters(&mut self, first: bool) {
        let system = self.system;
        let ctx = self.ctx;
        let app = &system.application;
        let schedule = self.schedule;
        let r_transfer = system.gateway.transfer_response();
        let s = &mut *self.s;
        for graph in app.graphs() {
            for &p in app.topological_order(graph.id()) {
                let pi = p.index();
                if ctx.proc_is_tt[pi] {
                    if first {
                        // Fixed by the schedule table for this whole run.
                        s.po[pi] = schedule
                            .start(p)
                            .expect("TT process placed by the list scheduler");
                        s.pj[pi] = Time::ZERO;
                        s.pw[pi] = Time::ZERO;
                        s.pr[pi] = ctx.proc_wcet[pi];
                    }
                } else {
                    let mut earliest = Time::ZERO;
                    let mut worst = Time::ZERO;
                    for e in app.predecessors(p) {
                        let (o, w) = match e.message {
                            None => {
                                let src = e.source.index();
                                (
                                    s.po[src].saturating_add(ctx.proc_bcet[src]),
                                    s.po[src].saturating_add(s.pr[src]),
                                )
                            }
                            Some(m) => {
                                let mi = m.index();
                                match ctx.route[mi] {
                                    MessageRoute::TtcToTtc => {
                                        let a = frame_arrival(schedule, m);
                                        (a, a)
                                    }
                                    MessageRoute::EtcToEtc | MessageRoute::TtcToEtc => (
                                        s.can_o[mi].saturating_add(ctx.can_c[mi]),
                                        s.can_o[mi].saturating_add(s.can_r[mi]),
                                    ),
                                    MessageRoute::EtcToTtc => {
                                        (s.ttp_o[mi], s.ttp_o[mi].saturating_add(s.ttp_r[mi]))
                                    }
                                }
                            }
                        };
                        earliest = earliest.max(o);
                        worst = worst.max(w);
                    }
                    if first {
                        s.po[pi] = earliest;
                    }
                    s.pj[pi] = worst.saturating_sub(s.po[pi]);
                }
                // Outgoing message legs of p.
                for e in app.successors(p) {
                    let Some(m) = e.message else { continue };
                    let mi = m.index();
                    let enqueue_jitter = s.pr[pi].saturating_sub(ctx.proc_bcet[pi]);
                    match ctx.route[mi] {
                        MessageRoute::TtcToTtc => {
                            if first {
                                s.arrival[mi] = frame_arrival(schedule, m);
                            }
                        }
                        MessageRoute::TtcToEtc => {
                            if first {
                                // MBI arrival is deterministic; the gateway
                                // transfer process adds its response time as
                                // jitter (paper: J_m1 = r_T).
                                s.can_o[mi] = frame_arrival(schedule, m);
                                s.can_j[mi] = r_transfer;
                            }
                        }
                        MessageRoute::EtcToEtc => {
                            if first {
                                s.can_o[mi] = s.po[pi].saturating_add(ctx.proc_bcet[pi]);
                            }
                            s.can_j[mi] = enqueue_jitter;
                        }
                        MessageRoute::EtcToTtc => {
                            if first {
                                let enqueue_earliest = s.po[pi].saturating_add(ctx.proc_bcet[pi]);
                                s.can_o[mi] = enqueue_earliest;
                                // Earliest FIFO entry: after the CAN wire
                                // time.
                                s.ttp_o[mi] = enqueue_earliest.saturating_add(ctx.can_c[mi]);
                            }
                            s.can_j[mi] = enqueue_jitter;
                            // Worst FIFO entry: after the CAN leg response
                            // plus the transfer process.
                            s.ttp_j[mi] = s.can_r[mi]
                                .saturating_sub(ctx.can_c[mi])
                                .saturating_add(r_transfer);
                        }
                    }
                }
            }
        }
    }

    fn can_flow(&self, mi: usize) -> CanFlow {
        let ctx = self.ctx;
        let s = &*self.s;
        CanFlow {
            priority: s.msg_priority[mi].expect("validated configuration assigns CAN priorities"),
            period: ctx.msg_period[mi],
            jitter: s.can_j[mi],
            offset: s.can_o[mi],
            transaction: Some(ctx.msg_phase[mi]),
            transmission: ctx.can_c[mi],
            size_bytes: ctx.msg_size[mi],
            response: s.can_r[mi],
        }
    }

    /// CAN queuing delays over every message with a CAN leg (they all share
    /// the one bus, including frames produced by the gateway).
    ///
    /// Each flow's fixed point warm-starts from its delay of the previous
    /// holistic iteration: jitters only grow and offsets are constant, so
    /// the previous converged value lies below the new least fixed point and
    /// the climb resumes instead of restarting (identical result, fewer
    /// iterations).
    fn can_pass(&mut self) -> bool {
        let ctx = self.ctx;
        // Flows are built in bus-priority order (most urgent first), so
        // each flow's higher-priority set is the prefix before it and its
        // blocking bound is the precomputed suffix maximum.
        let n = self.s.can_order.len();
        self.s.can_flows.clear();
        for k in 0..n {
            let mi = self.s.can_order[k];
            let flow = self.can_flow(mi);
            self.s.can_flows.push(flow);
        }
        // Unchanged inputs ⇒ unchanged delays: skip the kernel entirely.
        if self.s.can_flows == self.s.prev_can_flows {
            return true;
        }
        for k in 0..n {
            let mi = self.s.can_order[k];
            let delay = mcs_can::queuing_delay_sorted(
                &self.s.can_flows,
                k,
                self.s.can_blocking[k],
                self.horizon,
                self.s.can_w[mi],
            );
            let s = &mut *self.s;
            let w = match delay {
                Some(w) => w,
                None => {
                    s.diverged = true;
                    self.horizon
                }
            };
            s.can_w[mi] = w;
            s.can_r[mi] = s.can_j[mi].saturating_add(w).saturating_add(ctx.can_c[mi]);
            if !matches!(ctx.route[mi], MessageRoute::EtcToTtc) {
                s.arrival[mi] = s.can_o[mi].saturating_add(s.can_r[mi]);
            }
        }
        let s = &mut *self.s;
        std::mem::swap(&mut s.prev_can_flows, &mut s.can_flows);
        false
    }

    /// `Out_TTP` FIFO delays of ETC→TTC messages.
    fn fifo_pass(&mut self) -> bool {
        let ctx = self.ctx;
        self.s.fifo_flows.clear();
        for &mi in &ctx.fifo_ids {
            let s = &*self.s;
            let flow = FifoFlow {
                rank: s.msg_priority[mi]
                    .map(|p| u64::from(p.level()))
                    .expect("validated configuration assigns CAN priorities"),
                period: ctx.msg_period[mi],
                jitter: s.ttp_j[mi],
                offset: s.ttp_o[mi],
                transaction: Some(ctx.msg_phase[mi]),
                size_bytes: ctx.msg_size[mi],
                response: s.ttp_r[mi],
            };
            self.s.fifo_flows.push(flow);
        }
        // Unchanged inputs ⇒ unchanged delays: skip the kernel entirely.
        if self.s.fifo_flows == self.s.prev_fifo_flows {
            return true;
        }
        self.s.fifo_delays.clear();
        for k in 0..ctx.fifo_ids.len() {
            // The closed form warm-starts from the previous iteration's raw
            // delay (monotone operator); the occurrence bound cannot (its
            // departure is not monotone in the enqueue jitter).
            let delay = match self.fifo_bound {
                FifoBound::PaperClosedForm => fifo_delay_from(
                    &self.s.fifo_flows,
                    k,
                    &self.ttp_queue,
                    self.horizon,
                    self.s.fifo_warm[k],
                ),
                FifoBound::SlotOccurrence => {
                    fifo_delay_occurrence(&self.s.fifo_flows, k, &self.ttp_queue, self.horizon)
                }
            };
            if let Some(d) = delay {
                self.s.fifo_warm[k] = d.delay;
            }
            self.s.fifo_delays.push(delay);
        }
        let s = &mut *self.s;
        for (k, &mi) in ctx.fifo_ids.iter().enumerate() {
            let (w, backlog) = match s.fifo_delays[k] {
                Some(d) => (d.delay.saturating_add(self.grid_slack), d.backlog),
                None => {
                    s.diverged = true;
                    (self.horizon, s.fifo_flows[k].size_bytes.into())
                }
            };
            s.ttp_w[mi] = w;
            s.backlog[mi] = backlog;
            s.ttp_r[mi] = s.ttp_j[mi]
                .saturating_add(w)
                .saturating_add(self.ttp_queue.slot_duration);
            s.arrival[mi] = s.ttp_o[mi].saturating_add(s.ttp_r[mi]);
        }
        std::mem::swap(&mut s.prev_fifo_flows, &mut s.fifo_flows);
        false
    }

    /// Preemption delays of processes sharing each ET CPU; the gateway CPU
    /// additionally hosts the transfer process `T` at the highest rank.
    fn cpu_pass(&mut self) -> bool {
        let ctx = self.ctx;
        let system = self.system;
        let mut stable = true;
        for (ni, et) in ctx.et_nodes.iter().enumerate() {
            // Tasks are assembled in rank order (transfer process first on
            // the gateway), so each task's higher-priority set is the
            // prefix before it.
            self.s.task_flows.clear();
            if et.is_gateway {
                self.s.task_flows.push(TaskFlow {
                    rank: TRANSFER_RANK,
                    period: system.gateway.transfer_period,
                    jitter: Time::ZERO,
                    offset: Time::ZERO,
                    transaction: None,
                    wcet: system.gateway.transfer_wcet,
                    blocking: Time::ZERO,
                    response: system.gateway.transfer_wcet,
                });
            }
            let offset = usize::from(et.is_gateway);
            for idx in 0..self.s.node_order[ni].len() {
                let pi = self.s.node_order[ni][idx].index();
                let s = &*self.s;
                let task = TaskFlow {
                    rank: app_rank(
                        s.proc_priority[pi].expect("validated configuration assigns ET priorities"),
                    ),
                    period: ctx.proc_period[pi],
                    jitter: s.pj[pi],
                    offset: s.po[pi],
                    transaction: Some(ctx.proc_phase[pi]),
                    wcet: ctx.proc_wcet[pi],
                    blocking: ctx.proc_blocking[pi],
                    response: s.pr[pi],
                };
                self.s.task_flows.push(task);
            }
            // Unchanged inputs ⇒ unchanged delays: skip this CPU's kernel.
            if self.s.task_flows == self.s.prev_task_flows[ni] {
                continue;
            }
            stable = false;
            // Each process's busy window warm-starts from its previous
            // delay (see `can_pass`); the leading transfer task needs no
            // delay of its own (it has the highest rank).
            for idx in 0..self.s.node_order[ni].len() {
                let pi = self.s.node_order[ni][idx].index();
                let delay = mcs_core::interference_delay_sorted(
                    &self.s.task_flows,
                    offset + idx,
                    self.horizon,
                    self.s.pw[pi],
                );
                let s = &mut *self.s;
                let w = match delay {
                    Some(w) => w,
                    None => {
                        s.diverged = true;
                        self.horizon
                    }
                };
                s.pw[pi] = w;
                s.pr[pi] = s.pj[pi].saturating_add(w).saturating_add(ctx.proc_wcet[pi]);
            }
            let s = &mut *self.s;
            std::mem::swap(&mut s.prev_task_flows[ni], &mut s.task_flows);
        }
        stable
    }

    /// Buffer bounds for `Out_CAN`, `Out_TTP` and every `Out_Ni`, left in
    /// `Scratch::queues`.
    fn queue_bounds(&mut self) {
        let ctx = self.ctx;

        // Out_CAN holds TTC→ETC traffic queued by the gateway.
        let out_can = self.priority_queue_bound(&ctx.out_can_ids);
        self.s.queues.out_can = out_can;

        // Out_Ni holds the CAN traffic originated by each CAN-sending node.
        self.s.queues.out_node.clear();
        for (node, ids) in &ctx.out_node_ids {
            let bound = self.priority_queue_bound(ids);
            self.s.queues.out_node.insert(*node, bound);
        }

        // Out_TTP: the FIFO bound — the worst backlog over all FIFO flows.
        self.s.queues.out_ttp = ctx
            .fifo_ids
            .iter()
            .map(|&mi| self.s.backlog[mi])
            .max()
            .unwrap_or(0);
    }

    fn priority_queue_bound(&mut self, ids: &[usize]) -> u64 {
        self.s.bound_flows.clear();
        self.s.bound_delays.clear();
        for &mi in ids {
            let flow = self.can_flow(mi);
            self.s.bound_flows.push(flow);
            let delay = Some(self.s.can_w[mi]);
            self.s.bound_delays.push(delay);
        }
        mcs_can::queue_size_bound(&self.s.bound_flows, &self.s.bound_delays, self.horizon)
    }
}

fn frame_arrival(schedule: &TtcSchedule, m: MessageId) -> Time {
    schedule.frame(m).map(|f| f.arrival).unwrap_or(Time::ZERO)
}
