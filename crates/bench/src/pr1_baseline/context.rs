//! PR 1's reusable analysis context, **frozen verbatim** as the
//! `pr1_baseline` reference (only imports, visibilities and type names
//! adapted — `Evaluator` → [`Pr1Evaluator`]): a `SystemContext` of system-invariant
//! tables built once per [`System`], plus a `Scratch` of fixed-point state
//! that is cleared — not reallocated — between runs.
//!
//! Synthesis loops (simulated annealing, the OS/OR heuristics) evaluate
//! `MultiClusterScheduling` hundreds to thousands of times per instance,
//! varying only the configuration ψ. Rebuilding message routes, CAN frame
//! times, phase groups and every fixed-point vector on each evaluation
//! dominated the hot path; the [`Pr1Evaluator`] amortizes all of it:
//!
//! * **`SystemContext`** (immutable per system): message routes, CAN wire
//!   times `C_m`, per-graph phase groups, per-ET-CPU process partitions,
//!   gateway-crossing message index lists, per-graph sinks and the analysis
//!   horizon.
//! * **`Scratch`** (mutable, reused): the `O/J/w/r` vectors of processes and
//!   of both message legs, arrival times, FIFO backlogs, flow buffers handed
//!   to the CAN/CPU/FIFO kernels, the release maps of the outer fixed point
//!   and the reused [`TtcSchedule`].
//!
//! [`Pr1Evaluator::evaluate`] returns a cheap [`Pr1EvalSummary`] (δΓ, `s_total`);
//! the full [`AnalysisOutcome`] is materialized on demand by
//! [`Pr1Evaluator::outcome`], so inner search loops never pay for the result
//! maps they do not read.

use std::collections::HashMap;

use mcs_model::{MessageId, MessageRoute, NodeId, ProcessId, System, SystemConfig, Time};
use mcs_ttp::{critical_path_priorities_into, list_schedule_into, SchedulerInput, TtcSchedule};

use mcs_core::{
    validate_config, AnalysisError, AnalysisOutcome, AnalysisParams, EntityTiming, FifoDelay,
    MessageTiming, QueueBounds, SchedulabilityDegree, TaskFlow, TtpQueueParams,
};

use super::holistic::Holistic;

/// One ET-scheduled CPU and the processes it hosts.
#[derive(Clone, Debug)]
pub(super) struct EtNode {
    /// The gateway CPU additionally hosts the transfer process `T`.
    pub is_gateway: bool,
    /// Hosted processes in id order.
    pub procs: Vec<ProcessId>,
}

/// System-invariant tables shared by every evaluation of one [`System`].
#[derive(Clone, Debug)]
pub(super) struct SystemContext {
    /// Route of each message, by message index.
    pub route: Vec<MessageRoute>,
    /// CAN wire time `C_m` of each message, by message index.
    pub can_c: Vec<Time>,
    /// Period of each message (its graph's period), by message index.
    pub msg_period: Vec<Time>,
    /// Payload size of each message in bytes, by message index.
    pub msg_size: Vec<u32>,
    /// Phase group of each message's graph, by message index.
    pub msg_phase: Vec<u32>,
    /// Period of each process (its graph's period), by process index.
    pub proc_period: Vec<Time>,
    /// WCET of each process, by process index.
    pub proc_wcet: Vec<Time>,
    /// BCET of each process, by process index.
    pub proc_bcet: Vec<Time>,
    /// Blocking bound of each process, by process index.
    pub proc_blocking: Vec<Time>,
    /// Phase group of each process's graph, by process index.
    pub proc_phase: Vec<u32>,
    /// Whether each process runs on a statically scheduled (TT) CPU.
    pub proc_is_tt: Vec<bool>,
    /// Processes with a local deadline, with the deadline.
    pub local_deadlines: Vec<(usize, Time)>,
    /// ET CPUs and their process partitions.
    pub et_nodes: Vec<EtNode>,
    /// Messages with a CAN leg, in id order.
    pub can_ids: Vec<usize>,
    /// ETC→TTC messages (through `Out_TTP`), in id order.
    pub fifo_ids: Vec<usize>,
    /// TTC→ETC messages (through `Out_CAN`), in id order.
    pub out_can_ids: Vec<usize>,
    /// Per CAN-attached node: the CAN messages originated there (`Out_Ni`).
    pub out_node_ids: Vec<(NodeId, Vec<usize>)>,
    /// Messages whose TTP frame is sent by an ET-scheduled (gateway) CPU —
    /// their frame release depends on the sender's response time.
    pub et_ttp_senders: Vec<usize>,
    /// Sink processes of each graph, by graph index.
    pub sinks: Vec<Vec<ProcessId>>,
    /// The divergence horizon: `horizon_factor × hyperperiod`.
    pub horizon: Time,
}

impl SystemContext {
    fn new(system: &System, params: &AnalysisParams) -> Self {
        let app = &system.application;
        let arch = &system.architecture;

        let route: Vec<MessageRoute> = app
            .messages()
            .iter()
            .map(|m| system.route(m.id()))
            .collect();
        let can_params = arch.can_params();
        let can_c: Vec<Time> = app
            .messages()
            .iter()
            .map(|m| mcs_can::message_time(m.size_bytes(), &can_params))
            .collect();
        let msg_period: Vec<Time> = app
            .messages()
            .iter()
            .map(|m| app.message_period(m.id()))
            .collect();
        let msg_size: Vec<u32> = app.messages().iter().map(|m| m.size_bytes()).collect();
        let proc_period: Vec<Time> = app
            .processes()
            .iter()
            .map(|p| app.process_period(p.id()))
            .collect();
        let proc_wcet: Vec<Time> = app.processes().iter().map(|p| p.wcet()).collect();
        let proc_bcet: Vec<Time> = app.processes().iter().map(|p| p.bcet()).collect();
        let proc_blocking: Vec<Time> = app.processes().iter().map(|p| p.blocking()).collect();
        let proc_is_tt: Vec<bool> = app
            .processes()
            .iter()
            .map(|p| arch.is_tt_cpu(p.node()))
            .collect();
        let local_deadlines: Vec<(usize, Time)> = app
            .processes()
            .iter()
            .filter_map(|p| p.local_deadline().map(|d| (p.id().index(), d)))
            .collect();

        let mut period_groups: HashMap<Time, u32> = HashMap::new();
        let phase_group: Vec<u32> = app
            .graphs()
            .iter()
            .map(|g| {
                let next = period_groups.len() as u32;
                *period_groups.entry(g.period()).or_insert(next)
            })
            .collect();
        let msg_phase: Vec<u32> = app
            .messages()
            .iter()
            .map(|m| phase_group[m.graph().index()])
            .collect();
        let proc_phase: Vec<u32> = app
            .processes()
            .iter()
            .map(|p| phase_group[p.graph().index()])
            .collect();

        let gateway = arch.gateway();
        let et_nodes: Vec<EtNode> = arch
            .nodes()
            .iter()
            .filter(|n| arch.is_et_cpu(n.id()))
            .map(|n| EtNode {
                is_gateway: n.id() == gateway,
                procs: app.processes_on(n.id()).map(|p| p.id()).collect(),
            })
            .filter(|n| !n.procs.is_empty())
            .collect();

        let can_ids: Vec<usize> = (0..route.len())
            .filter(|&mi| route[mi].uses_can())
            .collect();
        let fifo_ids: Vec<usize> = (0..route.len())
            .filter(|&mi| matches!(route[mi], MessageRoute::EtcToTtc))
            .collect();
        let out_can_ids: Vec<usize> = (0..route.len())
            .filter(|&mi| matches!(route[mi], MessageRoute::TtcToEtc))
            .collect();
        let out_node_ids: Vec<(NodeId, Vec<usize>)> = arch
            .can_nodes()
            .map(|node| {
                let ids: Vec<usize> = (0..route.len())
                    .filter(|&mi| {
                        route[mi].uses_can()
                            && !matches!(route[mi], MessageRoute::TtcToEtc)
                            && app.process(app.messages()[mi].source()).node() == node.id()
                    })
                    .collect();
                (node.id(), ids)
            })
            .filter(|(_, ids)| !ids.is_empty())
            .collect();
        let et_ttp_senders: Vec<usize> = (0..route.len())
            .filter(|&mi| {
                route[mi].uses_ttp()
                    && !matches!(route[mi], MessageRoute::EtcToTtc)
                    && arch.is_et_cpu(app.process(app.messages()[mi].source()).node())
            })
            .collect();

        let sinks: Vec<Vec<ProcessId>> = app.graphs().iter().map(|g| app.sinks(g.id())).collect();

        let horizon = app
            .hyperperiod()
            .saturating_mul(params.horizon_factor.max(1));

        SystemContext {
            route,
            can_c,
            msg_period,
            msg_size,
            msg_phase,
            proc_period,
            proc_wcet,
            proc_bcet,
            proc_blocking,
            proc_phase,
            proc_is_tt,
            local_deadlines,
            et_nodes,
            can_ids,
            fifo_ids,
            out_can_ids,
            out_node_ids,
            et_ttp_senders,
            sinks,
            horizon,
        }
    }
}

/// Reusable fixed-point state: cleared, never reallocated, between runs.
#[derive(Clone, Debug, Default)]
pub(super) struct Scratch {
    // Process state, by process index.
    pub po: Vec<Time>,
    pub pj: Vec<Time>,
    pub pw: Vec<Time>,
    pub pr: Vec<Time>,
    // Message state, per leg, by message index.
    pub can_o: Vec<Time>,
    pub can_j: Vec<Time>,
    pub can_w: Vec<Time>,
    pub can_r: Vec<Time>,
    pub ttp_o: Vec<Time>,
    pub ttp_j: Vec<Time>,
    pub ttp_w: Vec<Time>,
    pub ttp_r: Vec<Time>,
    pub arrival: Vec<Time>,
    pub backlog: Vec<u64>,
    pub diverged: bool,
    // Config-derived tables, refilled per evaluation.
    pub msg_priority: Vec<Option<mcs_model::Priority>>,
    pub proc_priority: Vec<Option<mcs_model::Priority>>,
    /// CAN-leg message indices sorted by bus priority (most urgent first),
    /// so the RTA's higher-priority sets are array prefixes.
    pub can_order: Vec<usize>,
    /// Suffix-max blocking bound per sorted CAN position: the longest
    /// lower-priority transmission.
    pub can_blocking: Vec<Time>,
    /// Per ET CPU: its processes sorted by priority (most urgent first).
    pub node_order: Vec<Vec<ProcessId>>,
    // Pass-level memo: the kernel inputs of the previous holistic
    // iteration; when a pass rebuilds identical inputs its delays are
    // unchanged and the kernel fixed points are skipped entirely.
    pub prev_can_flows: Vec<mcs_can::CanFlow>,
    pub prev_fifo_flows: Vec<mcs_core::FifoFlow>,
    pub prev_task_flows: Vec<Vec<TaskFlow>>,
    // Flow buffers handed to the analysis kernels.
    pub can_flows: Vec<mcs_can::CanFlow>,
    pub fifo_flows: Vec<mcs_core::FifoFlow>,
    pub fifo_delays: Vec<Option<FifoDelay>>,
    /// Warm-start hints for the closed-form FIFO bound (raw delays, before
    /// the grid-slack pessimism), indexed like `fifo_flows`.
    pub fifo_warm: Vec<Time>,
    pub task_flows: Vec<TaskFlow>,
    pub bound_flows: Vec<mcs_can::CanFlow>,
    pub bound_delays: Vec<Option<Time>>,
    // Outer fixed point: release lower bounds of the static scheduler.
    pub proc_release: HashMap<ProcessId, Time>,
    pub msg_release: HashMap<MessageId, Time>,
    pub next_proc_release: HashMap<ProcessId, Time>,
    pub next_msg_release: HashMap<MessageId, Time>,
    // Results of the last run.
    pub queues: QueueBounds,
    pub graph_response: Vec<Time>,
}

/// The cheap result of one [`Pr1Evaluator::evaluate`] call: the two cost
/// functions of the paper plus convergence metadata. The full
/// [`AnalysisOutcome`] is materialized separately by [`Pr1Evaluator::outcome`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Pr1EvalSummary {
    /// The degree of schedulability δΓ.
    pub degree: SchedulabilityDegree,
    /// The total buffer need `s_total` in bytes.
    pub total_buffers: u64,
    /// Whether every fixed point converged and the outer iteration settled.
    pub converged: bool,
    /// Outer (schedule ↔ RTA) iterations performed.
    pub iterations: u32,
}

impl Pr1EvalSummary {
    /// `true` iff the configuration is schedulable.
    pub fn is_schedulable(&self) -> bool {
        self.degree.is_schedulable()
    }

    /// The δΓ scalar minimized by schedule optimization.
    pub fn schedule_cost(&self) -> i128 {
        self.degree.cost()
    }
}

/// A re-entrant `MultiClusterScheduling` engine bound to one [`System`].
///
/// Build it once, then call [`evaluate`](Pr1Evaluator::evaluate) for every
/// configuration ψ a search visits: all system-invariant tables and all
/// fixed-point vectors are reused across calls, making the per-evaluation
/// cost allocation-free outside the static scheduler's hash maps.
///
/// # Examples
///
/// ```
/// use mcs_core::{AnalysisParams, Evaluator};
/// use mcs_model::{
///     Application, Architecture, NodeRole, Priority, PriorityAssignment,
///     System, SystemConfig, TdmaConfig, TdmaSlot, Time,
/// };
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut arch = Architecture::builder();
/// let n1 = arch.add_node("N1", NodeRole::TimeTriggered);
/// let n2 = arch.add_node("N2", NodeRole::EventTriggered);
/// let ng = arch.add_node("NG", NodeRole::Gateway);
/// let arch = arch.build()?;
/// let mut app = Application::builder();
/// let g = app.add_graph("G1", Time::from_millis(240), Time::from_millis(200));
/// let p1 = app.add_process(g, "P1", n1, Time::from_millis(30));
/// let p2 = app.add_process(g, "P2", n2, Time::from_millis(20));
/// app.link(p1, p2, 8);
/// let system = System::new(app.build(&arch)?, arch);
///
/// let tdma = TdmaConfig::new(vec![
///     TdmaSlot { node: ng, capacity_bytes: 8 },
///     TdmaSlot { node: n1, capacity_bytes: 8 },
/// ]);
/// let mut priorities = PriorityAssignment::new();
/// priorities.set_process(p2, Priority::new(1));
/// priorities.set_message(mcs_model::MessageId::new(0), Priority::new(1));
/// let config = SystemConfig::new(tdma, priorities);
///
/// let mut evaluator = Evaluator::new(&system, AnalysisParams::default());
/// let summary = evaluator.evaluate(&config)?;   // cheap: no result maps
/// assert!(summary.is_schedulable());
/// let outcome = evaluator.outcome();            // full tables on demand
/// assert!(outcome.converged);
/// # Ok(())
/// # }
/// ```
pub struct Pr1Evaluator<'s> {
    system: &'s System,
    params: AnalysisParams,
    ctx: SystemContext,
    /// Memoized static schedules, one slot per outer iteration. The
    /// schedule is a pure function of (system, TDMA configuration, release
    /// bounds), so re-evaluations that reproduce the same scheduler inputs
    /// — every repeat evaluation, and in local search every move that
    /// leaves β and the analysis-derived releases unchanged — skip the
    /// scheduling pass entirely.
    sched_cache: Vec<SchedCacheEntry>,
    /// Critical-path list priorities (dense); they depend on the TDMA
    /// configuration only through the round duration, so they are memoized
    /// on it.
    sched_priorities: Vec<Time>,
    sched_round: Option<Time>,
    /// The last configuration that passed validation (validation is a pure
    /// function of system + configuration, so an unchanged configuration
    /// skips it). The buffer is kept across invalidations so snapshots
    /// reuse its allocations; `last_validated_ok` gates its validity.
    last_validated: Option<SystemConfig>,
    last_validated_ok: bool,
    scratch: Scratch,
    /// Whether the last `evaluate` completed successfully (gates `outcome`).
    has_run: bool,
    last_converged: bool,
    last_iterations: u32,
    /// Cache slot holding the schedule of the last completed evaluation.
    last_sched_slot: usize,
}

impl<'s> std::fmt::Debug for Pr1Evaluator<'s> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pr1Evaluator").finish_non_exhaustive()
    }
}

/// One memoized scheduling pass: the inputs it was computed from and the
/// resulting schedule (reused in place on recompute).
#[derive(Default)]
struct SchedCacheEntry {
    valid: bool,
    tdma: mcs_model::TdmaConfig,
    proc_release: HashMap<ProcessId, Time>,
    msg_release: HashMap<MessageId, Time>,
    schedule: TtcSchedule,
}

impl<'s> Pr1Evaluator<'s> {
    /// Builds the reusable context for `system`.
    pub fn new(system: &'s System, params: AnalysisParams) -> Self {
        let ctx = SystemContext::new(system, &params);
        Pr1Evaluator {
            system,
            params,
            ctx,
            sched_cache: Vec::new(),
            sched_priorities: Vec::new(),
            sched_round: None,
            last_validated: None,
            last_validated_ok: false,
            scratch: Scratch::default(),
            has_run: false,
            last_converged: false,
            last_iterations: 0,
            last_sched_slot: 0,
        }
    }

    /// The analyzed system.
    pub fn system(&self) -> &'s System {
        self.system
    }

    /// The analysis parameters this evaluator was built with.
    pub fn params(&self) -> &AnalysisParams {
        &self.params
    }

    /// `true` once an evaluation has completed successfully — the timing
    /// accessors and [`outcome`](Pr1Evaluator::outcome) are only meaningful
    /// (and only non-panicking) while this holds. A failed
    /// [`evaluate`](Pr1Evaluator::evaluate) resets it.
    pub fn has_run(&self) -> bool {
        self.has_run
    }

    /// Runs `MultiClusterScheduling(Γ, β, π)` for one configuration,
    /// reusing every buffer of previous runs, and returns the summary costs.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError`] if ψ is invalid or the TTC traffic cannot
    /// be scheduled; an unschedulable but well-formed configuration is not
    /// an error (its summary has a positive δΓ cost).
    pub fn evaluate(&mut self, config: &SystemConfig) -> Result<Pr1EvalSummary, AnalysisError> {
        // Validation and every configuration-derived table are pure
        // functions of (system, configuration): an unchanged configuration
        // skips both.
        let config_changed =
            !self.last_validated_ok || self.last_validated.as_ref() != Some(config);
        if config_changed {
            self.last_validated_ok = false;
            validate_config(self.system, config)?;
        }
        self.has_run = false;
        let system = self.system;
        let app = &system.application;
        let arch = &system.architecture;

        if config_changed {
            // Configuration-derived tables: the priority lookups flattened
            // to dense vectors, the priority-sorted evaluation orders
            // (priorities are unique per resource, so the orders are total)
            // and the CAN suffix-max blocking bounds — these turn every
            // kernel's higher-priority filtering into prefix scans.
            let s = &mut self.scratch;
            s.msg_priority.clear();
            s.msg_priority.extend(
                app.messages()
                    .iter()
                    .map(|m| config.priorities.message(m.id())),
            );
            s.proc_priority.clear();
            s.proc_priority.extend(
                app.processes()
                    .iter()
                    .map(|p| config.priorities.process(p.id())),
            );
            s.can_order.clear();
            s.can_order.extend(self.ctx.can_ids.iter().copied());
            s.can_order.sort_by_key(|&mi| {
                s.msg_priority[mi].expect("validated configuration assigns CAN priorities")
            });
            s.can_blocking.clear();
            s.can_blocking.resize(s.can_order.len(), Time::ZERO);
            let mut suffix = Time::ZERO;
            for k in (0..s.can_order.len()).rev() {
                s.can_blocking[k] = suffix;
                suffix = suffix.max(self.ctx.can_c[s.can_order[k]]);
            }
            s.node_order.resize(self.ctx.et_nodes.len(), Vec::new());
            for (ni, et) in self.ctx.et_nodes.iter().enumerate() {
                let order = &mut s.node_order[ni];
                order.clear();
                order.extend(et.procs.iter().copied());
                order.sort_by_key(|p| {
                    s.proc_priority[p.index()]
                        .expect("validated configuration assigns ET priorities")
                });
            }
            // `clone_from` reuses the previous snapshot's allocations, so
            // a changed configuration costs no fresh allocation here.
            match &mut self.last_validated {
                Some(previous) => previous.clone_from(config),
                slot => *slot = Some(config.clone()),
            }
            self.last_validated_ok = true;
        }
        let gateway = arch.gateway();
        let (gw_slot, gw_cfg) = config
            .tdma
            .slot_of_node(gateway)
            .expect("validated configuration has a gateway slot");
        let ttp_params = arch.ttp_params();
        let ttp_queue = TtpQueueParams {
            round: config.tdma.round_duration(&ttp_params),
            slot_offset: config.tdma.slot_offset(gw_slot, &ttp_params),
            slot_capacity: gw_cfg.capacity_bytes,
            slot_duration: config.tdma.slot_duration(gw_slot, &ttp_params),
        };
        let grid_slack =
            if ttp_queue.round.is_zero() || (app.hyperperiod() % ttp_queue.round).is_zero() {
                Time::ZERO
            } else {
                ttp_queue.round
            };
        if self.sched_round != Some(ttp_queue.round) {
            critical_path_priorities_into(system, &config.tdma, &mut self.sched_priorities);
            self.sched_round = Some(ttp_queue.round);
        }

        seed_pins(
            system,
            config,
            &mut self.scratch.proc_release,
            &mut self.scratch.msg_release,
        );

        let mut iterations = 0;
        let mut settled = false;
        while iterations < self.params.max_outer_iterations {
            let slot = iterations as usize;
            iterations += 1;
            if self.sched_cache.len() <= slot {
                self.sched_cache.push(SchedCacheEntry::default());
            }
            let hit = {
                let entry = &self.sched_cache[slot];
                entry.valid
                    && entry.tdma == config.tdma
                    && entry.proc_release == self.scratch.proc_release
                    && entry.msg_release == self.scratch.msg_release
            };
            if !hit {
                let entry = &mut self.sched_cache[slot];
                entry.valid = false;
                let input = SchedulerInput {
                    system,
                    tdma: &config.tdma,
                    process_releases: &self.scratch.proc_release,
                    message_releases: &self.scratch.msg_release,
                };
                list_schedule_into(&input, &self.sched_priorities, &mut entry.schedule)?;
                entry.tdma.clone_from(&config.tdma);
                entry.proc_release.clone_from(&self.scratch.proc_release);
                entry.msg_release.clone_from(&self.scratch.msg_release);
                entry.valid = true;
            }
            self.last_sched_slot = slot;
            Holistic {
                ctx: &self.ctx,
                system,
                schedule: &self.sched_cache[slot].schedule,
                ttp_queue,
                grid_slack,
                horizon: self.ctx.horizon,
                max_iterations: self.params.max_holistic_iterations,
                fifo_bound: self.params.fifo_bound,
                s: &mut self.scratch,
            }
            .run();

            // Re-derive the release lower bounds from the analysis.
            let s = &mut self.scratch;
            seed_pins(
                system,
                config,
                &mut s.next_proc_release,
                &mut s.next_msg_release,
            );
            for &mi in &self.ctx.fifo_ids {
                // Destination TT process must not start before the worst-case
                // arrival through Out_TTP.
                let message = &app.messages()[mi];
                let arrival = s.arrival[mi].min(self.ctx.horizon);
                let entry = s
                    .next_proc_release
                    .entry(message.dest())
                    .or_insert(Time::ZERO);
                *entry = (*entry).max(arrival);
            }
            for &mi in &self.ctx.et_ttp_senders {
                // TTP frames whose sender runs under priorities (gateway
                // CPU): the frame cannot leave before the sender's
                // worst-case completion.
                let message = &app.messages()[mi];
                let sender = message.source().index();
                let done = s.po[sender]
                    .saturating_add(s.pr[sender])
                    .min(self.ctx.horizon);
                let entry = s.next_msg_release.entry(message.id()).or_insert(Time::ZERO);
                *entry = (*entry).max(done);
            }

            let done = s.next_proc_release == s.proc_release && s.next_msg_release == s.msg_release;
            std::mem::swap(&mut s.proc_release, &mut s.next_proc_release);
            std::mem::swap(&mut s.msg_release, &mut s.next_msg_release);
            if done {
                settled = true;
                break;
            }
        }

        // Graph responses and the degree of schedulability, straight from
        // the scratch vectors (no result maps on this path).
        let s = &mut self.scratch;
        s.graph_response.clear();
        let mut overrun: u64 = 0;
        let mut slack: i128 = 0;
        for (gi, graph) in app.graphs().iter().enumerate() {
            let r = self.ctx.sinks[gi]
                .iter()
                .map(|p| s.po[p.index()].saturating_add(s.pr[p.index()]))
                .fold(Time::ZERO, Time::max);
            s.graph_response.push(r);
            let d = graph.deadline();
            overrun += r.saturating_sub(d).ticks();
            slack += i128::from(r.ticks()) - i128::from(d.ticks());
        }
        for &(pi, d) in &self.ctx.local_deadlines {
            let completion = s.po[pi].saturating_add(s.pr[pi]);
            overrun += completion.saturating_sub(d).ticks();
        }

        let converged = !s.diverged && settled;
        self.has_run = true;
        self.last_converged = converged;
        self.last_iterations = iterations;
        Ok(Pr1EvalSummary {
            degree: SchedulabilityDegree {
                overrun,
                slack,
                converged,
            },
            total_buffers: s.queues.total(),
            converged,
            iterations,
        })
    }

    /// Materializes the full [`AnalysisOutcome`] of the last successful
    /// [`evaluate`](Pr1Evaluator::evaluate) call (this allocates the result
    /// maps — call it for accepted configurations, not per search move).
    ///
    /// # Panics
    ///
    /// Panics if no evaluation has completed successfully yet.
    pub fn outcome(&self) -> AnalysisOutcome {
        assert!(
            self.has_run,
            "Evaluator::outcome called before a successful evaluate"
        );
        let app = &self.system.application;
        let s = &self.scratch;
        let process_timing: HashMap<ProcessId, EntityTiming> = app
            .processes()
            .iter()
            .map(|p| (p.id(), self.process_timing(p.id())))
            .collect();
        let message_timing: HashMap<MessageId, MessageTiming> = app
            .messages()
            .iter()
            .map(|m| (m.id(), self.message_timing(m.id())))
            .collect();
        let graph_response = app
            .graphs()
            .iter()
            .enumerate()
            .map(|(gi, g)| (g.id(), s.graph_response[gi]))
            .collect();
        AnalysisOutcome {
            schedule: self.sched_cache[self.last_sched_slot].schedule.clone(),
            process_timing,
            message_timing,
            queues: s.queues.clone(),
            graph_response,
            converged: self.last_converged,
            iterations: self.last_iterations,
        }
    }

    /// Worst-case timing of one process from the last evaluation.
    ///
    /// # Panics
    ///
    /// Panics if no evaluation has completed successfully yet.
    pub fn process_timing(&self, process: ProcessId) -> EntityTiming {
        assert!(self.has_run, "no successful evaluation yet");
        let i = process.index();
        let s = &self.scratch;
        EntityTiming {
            offset: s.po[i],
            jitter: s.pj[i],
            delay: s.pw[i],
            response: s.pr[i],
        }
    }

    /// Worst-case per-leg timing of one message from the last evaluation.
    ///
    /// # Panics
    ///
    /// Panics if no evaluation has completed successfully yet.
    pub fn message_timing(&self, message: MessageId) -> MessageTiming {
        assert!(self.has_run, "no successful evaluation yet");
        let mi = message.index();
        let s = &self.scratch;
        let can = self.ctx.route[mi].uses_can().then_some(EntityTiming {
            offset: s.can_o[mi],
            jitter: s.can_j[mi],
            delay: s.can_w[mi],
            response: s.can_r[mi],
        });
        let ttp = matches!(self.ctx.route[mi], MessageRoute::EtcToTtc).then_some(EntityTiming {
            offset: s.ttp_o[mi],
            jitter: s.ttp_j[mi],
            delay: s.ttp_w[mi],
            response: s.ttp_r[mi],
        });
        MessageTiming {
            can,
            ttp,
            arrival: s.arrival[mi],
        }
    }
}

/// Applies the optimizer's offset pins as baseline releases.
fn seed_pins(
    system: &System,
    config: &SystemConfig,
    process_releases: &mut HashMap<ProcessId, Time>,
    message_releases: &mut HashMap<MessageId, Time>,
) {
    process_releases.clear();
    message_releases.clear();
    if config.offsets.is_empty() {
        return;
    }
    for p in system.application.processes() {
        if let Some(t) = config.offsets.process(p.id()) {
            process_releases.insert(p.id(), t);
        }
    }
    for m in system.application.messages() {
        if let Some(t) = config.offsets.message(m.id()) {
            message_releases.insert(m.id(), t);
        }
    }
}
