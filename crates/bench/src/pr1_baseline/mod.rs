//! PR 1's reusable-context evaluator, **frozen verbatim** (imports,
//! visibilities and the `Evaluator` → [`Pr1Evaluator`] rename aside) as the
//! performance baseline the delta-RTA work of PR 2 is measured against:
//! the `delta_rta` bench replays the same SA move trace through this
//! evaluator, the current full path and the delta path, so the recorded
//! speedups compare like for like on the same workload.
//!
//! Like [`crate::seed_baseline`], this module must not be "improved" — it
//! is the frozen reference.

mod context;
mod holistic;

pub use context::{Pr1EvalSummary, Pr1Evaluator};
