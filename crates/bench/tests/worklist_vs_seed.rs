//! Worklist engine vs the frozen baselines on **multi-period** instances:
//! move walks through both seedings of the unified engine
//! ([`Evaluator::evaluate`] and [`Evaluator::evaluate_delta`]) must
//! reproduce the frozen seed implementation and the frozen PR 1 evaluator
//! bit-for-bit after every move. The single-period anchor lives in
//! `delta_vs_seed.rs` (untouched); this suite extends the anchor to the
//! multi-rate application model the value-driven worklist exploits.

use mcs_bench::pr1_baseline::Pr1Evaluator;
use mcs_bench::seed_baseline::seed_evaluate;
use mcs_core::{AnalysisParams, DeltaSeeds, Evaluator};
use mcs_gen::{generate, GeneratorParams, PeriodMultipliers};
use mcs_opt::{hopa_priorities, neighborhood, straightforward_config};

#[test]
fn multiperiod_walk_matches_the_frozen_baselines() {
    let analysis = AnalysisParams::default();
    for sys_seed in [5u64, 23] {
        let mut params = GeneratorParams::paper_sized(2, sys_seed);
        params.processes_per_node = 10;
        params.graphs = 6;
        params.inter_cluster_messages = Some(4);
        params.period_multipliers = PeriodMultipliers::new(&[1, 2, 4]);
        let system = generate(&params);
        let mut config = straightforward_config(&system);
        config.priorities = hopa_priorities(&system, &config.tdma);

        let mut delta = Evaluator::new(&system, analysis);
        let mut pr1 = Pr1Evaluator::new(&system, analysis);
        let mut seeds = DeltaSeeds::new();
        delta.evaluate(&config).expect("analyzable");
        pr1.evaluate(&config).expect("analyzable");
        let mut current =
            mcs_opt::evaluate(&system, config.clone(), &analysis).expect("analyzable");

        for round in 0..20usize {
            let moves = neighborhood(&system, &current);
            assert!(!moves.is_empty());
            let mv = moves[(round * 13 + sys_seed as usize) % moves.len()];
            let undo = mv.apply_undoable_seeded(&mut config, &mut seeds);

            let seed_result = seed_evaluate(&system, config.clone(), &analysis);
            let pr1_result = pr1.evaluate(&config);
            let warm = delta.evaluate_delta(&config, &seeds);
            match (seed_result, warm) {
                (Ok((degree, buffers, outcome)), Ok(summary)) => {
                    seeds.clear();
                    assert_eq!(summary.degree, degree, "δΓ drifted at round {round}");
                    assert_eq!(summary.total_buffers, buffers);
                    assert_eq!(summary.converged, outcome.converged);
                    assert_eq!(summary.iterations, outcome.iterations);
                    let warm_outcome = delta.outcome();
                    assert_eq!(warm_outcome.schedule, outcome.schedule);
                    assert_eq!(warm_outcome.process_timing, outcome.process_timing);
                    assert_eq!(warm_outcome.message_timing, outcome.message_timing);
                    assert_eq!(warm_outcome.queues, outcome.queues);
                    assert_eq!(warm_outcome.graph_response, outcome.graph_response);
                    // The frozen PR 1 evaluator agrees too.
                    let pr1_summary = pr1_result.expect("pr1 analyzable where seed is");
                    assert_eq!(pr1_summary.degree, degree);
                    assert_eq!(pr1_summary.total_buffers, buffers);
                    if round % 2 == 0 {
                        current = mcs_opt::evaluate(&system, config.clone(), &analysis)
                            .expect("analyzable");
                        continue; // accept
                    }
                }
                (Err(seed_err), Err(warm_err)) => assert_eq!(seed_err, warm_err),
                (seed_result, warm) => panic!(
                    "feasibility disagreement on {mv:?}: seed {seed_result:?} vs delta {warm:?}"
                ),
            }
            undo.record_seeds(&mut seeds);
            undo.revert(&mut config);
        }
        let (delta_hits, full) = delta.delta_stats();
        assert!(
            delta_hits > 0,
            "delta seeding never taken on the multi-period walk \
             ({delta_hits} delta vs {full} full)"
        );
    }
}
