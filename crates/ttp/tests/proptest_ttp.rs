//! Property-based tests for the TDMA round timing and the list scheduler.

use std::collections::HashMap;

use proptest::prelude::*;

use mcs_model::{
    Application, Architecture, NodeId, NodeRole, SlotId, System, TdmaConfig, TdmaSlot, Time,
    TtpBusParams,
};
use mcs_ttp::{list_schedule, RoundSchedule, SchedulerInput};

fn arb_config() -> impl Strategy<Value = (TdmaConfig, TtpBusParams)> {
    (
        proptest::collection::vec(1u32..64, 1..6),
        1u64..50,
        0u64..50,
    )
        .prop_map(|(caps, byte, overhead)| {
            let slots = caps
                .iter()
                .enumerate()
                .map(|(i, &c)| TdmaSlot {
                    node: NodeId::new(i as u32),
                    capacity_bytes: c,
                })
                .collect();
            (
                TdmaConfig::new(slots),
                TtpBusParams::new(Time::from_ticks(byte), Time::from_ticks(overhead)),
            )
        })
}

proptest! {
    /// `next_occurrence` returns the first occurrence at or after `t`, and
    /// occurrences tile the timeline with the round period.
    #[test]
    fn next_occurrence_is_first_at_or_after((config, params) in arb_config(), t in 0u64..100_000) {
        let rs = RoundSchedule::new(&config, params);
        let t = Time::from_ticks(t);
        for i in 0..config.slot_count() {
            let slot = SlotId::new(i as u32);
            let occ = rs.next_occurrence(slot, t);
            prop_assert!(occ.start >= t);
            // No earlier occurrence also at/after t.
            prop_assert!(occ.start.saturating_sub(rs.round_duration()) < t);
            prop_assert_eq!(occ.end - occ.start, rs.slot_duration(slot));
            let next = rs.advance(occ, 1);
            prop_assert_eq!(next.start - occ.start, rs.round_duration());
        }
    }

    /// Occurrences of different slots never overlap.
    #[test]
    fn distinct_slots_never_overlap((config, params) in arb_config(), t in 0u64..100_000) {
        let rs = RoundSchedule::new(&config, params);
        let t = Time::from_ticks(t);
        let occs: Vec<_> = (0..config.slot_count())
            .map(|i| rs.next_occurrence(SlotId::new(i as u32), t))
            .collect();
        for (i, a) in occs.iter().enumerate() {
            for b in &occs[i + 1..] {
                prop_assert!(a.end <= b.start || b.end <= a.start);
            }
        }
    }
}

/// Builds a random fork-join system on 2 TT nodes.
fn random_tt_system(wcets: &[u64], preds: &[usize]) -> System {
    let mut b = Architecture::builder();
    let n1 = b.add_node("N1", NodeRole::TimeTriggered);
    let n2 = b.add_node("N2", NodeRole::TimeTriggered);
    b.add_node("NG", NodeRole::Gateway);
    let arch = b.build().expect("valid");
    let mut ab = Application::builder();
    let g = ab.add_graph("G", Time::from_millis(10_000), Time::from_millis(10_000));
    let mut procs = Vec::new();
    for (i, &w) in wcets.iter().enumerate() {
        let node = if i % 2 == 0 { n1 } else { n2 };
        let p = ab.add_process(g, format!("p{i}"), node, Time::from_micros(w));
        if i > 0 {
            let pred = procs[preds.get(i - 1).copied().unwrap_or(0) % procs.len()];
            ab.link(pred, p, 8);
        }
        procs.push(p);
    }
    System::new(ab.build(&arch).expect("acyclic"), arch)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The list schedule respects precedence (successors start after their
    /// inputs arrive) and CPU exclusivity, for arbitrary chain shapes.
    #[test]
    fn list_schedule_respects_precedence_and_exclusivity(
        wcets in proptest::collection::vec(100u64..5_000, 2..14),
        preds in proptest::collection::vec(0usize..100, 0..12),
    ) {
        let system = random_tt_system(&wcets, &preds);
        let tdma = TdmaConfig::new(vec![
            TdmaSlot { node: NodeId::new(2), capacity_bytes: 8 },
            TdmaSlot { node: NodeId::new(0), capacity_bytes: 8 },
            TdmaSlot { node: NodeId::new(1), capacity_bytes: 8 },
        ]);
        let (pr, mr) = (HashMap::new(), HashMap::new());
        let input = SchedulerInput {
            system: &system,
            tdma: &tdma,
            process_releases: &pr,
            message_releases: &mr,
        };
        let schedule = list_schedule(&input).expect("schedulable");
        let app = &system.application;

        // Precedence: start >= predecessor finish (local) or frame arrival.
        for e in app.edges() {
            let pred_finish = schedule.start(e.source).expect("scheduled")
                + app.process(e.source).wcet();
            let start = schedule.start(e.dest).expect("scheduled");
            match e.message {
                None => prop_assert!(start >= pred_finish),
                Some(m) => {
                    let frame = schedule.frame(m).expect("placed");
                    prop_assert!(frame.slot_start >= pred_finish);
                    prop_assert!(start >= frame.arrival);
                }
            }
        }
        // CPU exclusivity per node.
        for node in [NodeId::new(0), NodeId::new(1)] {
            let mut intervals: Vec<(Time, Time)> = app
                .processes_on(node)
                .map(|p| {
                    let s = schedule.start(p.id()).expect("scheduled");
                    (s, s + p.wcet())
                })
                .collect();
            intervals.sort();
            for pair in intervals.windows(2) {
                prop_assert!(pair[0].1 <= pair[1].0, "CPU overlap on {node}");
            }
        }
    }

    /// Release lower bounds are always honoured.
    #[test]
    fn releases_are_honoured(
        wcets in proptest::collection::vec(100u64..2_000, 2..8),
        release in 0u64..50_000,
    ) {
        let system = random_tt_system(&wcets, &[]);
        let tdma = TdmaConfig::new(vec![
            TdmaSlot { node: NodeId::new(2), capacity_bytes: 8 },
            TdmaSlot { node: NodeId::new(0), capacity_bytes: 8 },
            TdmaSlot { node: NodeId::new(1), capacity_bytes: 8 },
        ]);
        let mut pr = HashMap::new();
        let first = system.application.processes()[0].id();
        pr.insert(first, Time::from_ticks(release));
        let mr = HashMap::new();
        let input = SchedulerInput {
            system: &system,
            tdma: &tdma,
            process_releases: &pr,
            message_releases: &mr,
        };
        let schedule = list_schedule(&input).expect("schedulable");
        prop_assert!(schedule.start(first).expect("scheduled") >= Time::from_ticks(release));
    }
}
