//! The output of static scheduling: per-node schedule tables and the MEDL.
//!
//! On a time-triggered cluster the synthesis produces, for every node, a
//! *schedule table* (process start times) and, for every TTP controller, a
//! *message descriptor list* (MEDL) saying which frame goes out in which slot
//! occurrence. [`TtcSchedule`] is the in-memory form of both.

use std::collections::HashMap;

use mcs_model::{MessageId, NodeId, ProcessId, SlotId, Time};

/// Placement of one message's TTP leg into a concrete slot occurrence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FramePlacement {
    /// The TDMA slot carrying the frame.
    pub slot: SlotId,
    /// The round index of the occurrence.
    pub round: u64,
    /// Wire start of the slot occurrence.
    pub slot_start: Time,
    /// Wire end of the slot occurrence — when the message is available at
    /// every receiving controller's MBI.
    pub arrival: Time,
}

/// A statically scheduled TTC: process start times (the schedule tables) and
/// frame placements (the MEDLs).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TtcSchedule {
    starts: HashMap<ProcessId, Time>,
    frames: HashMap<MessageId, FramePlacement>,
    makespan: Time,
}

impl TtcSchedule {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the start time of a TT process.
    pub fn set_start(&mut self, process: ProcessId, start: Time) {
        self.starts.insert(process, start);
    }

    /// Records the frame placement of a message's TTP leg.
    pub fn set_frame(&mut self, message: MessageId, placement: FramePlacement) {
        self.frames.insert(message, placement);
    }

    /// Updates the makespan if `finish` extends it.
    pub fn extend_makespan(&mut self, finish: Time) {
        self.makespan = self.makespan.max(finish);
    }

    /// The scheduled start (offset) of a TT process, if scheduled.
    pub fn start(&self, process: ProcessId) -> Option<Time> {
        self.starts.get(&process).copied()
    }

    /// The frame placement of a message, if scheduled on the TTP bus.
    pub fn frame(&self, message: MessageId) -> Option<FramePlacement> {
        self.frames.get(&message).copied()
    }

    /// Latest completion over everything scheduled.
    pub fn makespan(&self) -> Time {
        self.makespan
    }

    /// Number of scheduled processes.
    pub fn process_count(&self) -> usize {
        self.starts.len()
    }

    /// Number of placed frames.
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }

    /// Iterates over all (process, start) entries in unspecified order.
    pub fn starts(&self) -> impl Iterator<Item = (ProcessId, Time)> + '_ {
        self.starts.iter().map(|(&p, &t)| (p, t))
    }

    /// Iterates over all (message, placement) entries in unspecified order.
    pub fn frames(&self) -> impl Iterator<Item = (MessageId, FramePlacement)> + '_ {
        self.frames.iter().map(|(&m, &f)| (m, f))
    }

    /// Renders the MEDL of one node: the chronologically ordered frame
    /// placements in that node's slot.
    pub fn medl_of_slot(&self, slot: SlotId) -> Vec<(MessageId, FramePlacement)> {
        let mut entries: Vec<_> = self
            .frames
            .iter()
            .filter(|(_, f)| f.slot == slot)
            .map(|(&m, &f)| (m, f))
            .collect();
        entries.sort_by_key(|(m, f)| (f.round, *m));
        entries
    }

    /// Renders the schedule table of one node given the mapping of processes
    /// to nodes, ordered by start time.
    pub fn table_of_node<'a>(
        &'a self,
        node: NodeId,
        node_of: impl Fn(ProcessId) -> NodeId + 'a,
    ) -> Vec<(ProcessId, Time)> {
        let mut entries: Vec<_> = self
            .starts
            .iter()
            .filter(|(&p, _)| node_of(p) == node)
            .map(|(&p, &t)| (p, t))
            .collect();
        entries.sort_by_key(|&(p, t)| (t, p));
        entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_round_trips_entries() {
        let mut s = TtcSchedule::new();
        s.set_start(ProcessId::new(1), Time::from_millis(10));
        s.extend_makespan(Time::from_millis(40));
        s.set_frame(
            MessageId::new(0),
            FramePlacement {
                slot: SlotId::new(1),
                round: 1,
                slot_start: Time::from_millis(60),
                arrival: Time::from_millis(80),
            },
        );
        assert_eq!(s.start(ProcessId::new(1)), Some(Time::from_millis(10)));
        assert_eq!(s.start(ProcessId::new(9)), None);
        assert_eq!(
            s.frame(MessageId::new(0)).map(|f| f.arrival),
            Some(Time::from_millis(80))
        );
        assert_eq!(s.makespan(), Time::from_millis(40));
        assert_eq!(s.process_count(), 1);
        assert_eq!(s.frame_count(), 1);
    }

    #[test]
    fn makespan_only_grows() {
        let mut s = TtcSchedule::new();
        s.extend_makespan(Time::from_millis(50));
        s.extend_makespan(Time::from_millis(30));
        assert_eq!(s.makespan(), Time::from_millis(50));
    }

    #[test]
    fn medl_is_ordered_by_round() {
        let mut s = TtcSchedule::new();
        let slot = SlotId::new(0);
        for (round, m) in [(3u64, 2u32), (1, 0), (2, 1)] {
            s.set_frame(
                MessageId::new(m),
                FramePlacement {
                    slot,
                    round,
                    slot_start: Time::from_millis(40 * round),
                    arrival: Time::from_millis(40 * round + 20),
                },
            );
        }
        let medl = s.medl_of_slot(slot);
        let rounds: Vec<u64> = medl.iter().map(|(_, f)| f.round).collect();
        assert_eq!(rounds, vec![1, 2, 3]);
        assert!(s.medl_of_slot(SlotId::new(5)).is_empty());
    }

    #[test]
    fn node_table_is_ordered_by_start() {
        let mut s = TtcSchedule::new();
        s.set_start(ProcessId::new(0), Time::from_millis(30));
        s.set_start(ProcessId::new(1), Time::from_millis(10));
        s.set_start(ProcessId::new(2), Time::from_millis(20));
        let table = s.table_of_node(NodeId::new(0), |p| {
            if p == ProcessId::new(2) {
                NodeId::new(1)
            } else {
                NodeId::new(0)
            }
        });
        let procs: Vec<u32> = table.iter().map(|(p, _)| p.raw()).collect();
        assert_eq!(procs, vec![1, 0]);
    }
}
