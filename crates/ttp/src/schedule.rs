//! The output of static scheduling: per-node schedule tables and the MEDL.
//!
//! On a time-triggered cluster the synthesis produces, for every node, a
//! *schedule table* (process start times) and, for every TTP controller, a
//! *message descriptor list* (MEDL) saying which frame goes out in which slot
//! occurrence. [`TtcSchedule`] is the in-memory form of both.

use mcs_model::{MessageId, NodeId, ProcessId, SlotId, Time};

/// Placement of one message's TTP leg into a concrete slot occurrence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FramePlacement {
    /// The TDMA slot carrying the frame.
    pub slot: SlotId,
    /// The round index of the occurrence.
    pub round: u64,
    /// Wire start of the slot occurrence.
    pub slot_start: Time,
    /// Wire end of the slot occurrence — when the message is available at
    /// every receiving controller's MBI.
    pub arrival: Time,
}

/// A statically scheduled TTC: process start times (the schedule tables) and
/// frame placements (the MEDLs).
///
/// Entries are stored in dense vectors indexed by the entity ids, so the
/// analysis fixed point reads `start`/`frame` with a bounds-checked index
/// instead of a hash lookup (these are the hottest lookups of the holistic
/// pass).
#[derive(Debug, Default)]
pub struct TtcSchedule {
    starts: Vec<Option<Time>>,
    frames: Vec<Option<FramePlacement>>,
    start_count: usize,
    frame_count: usize,
    makespan: Time,
}

impl Clone for TtcSchedule {
    fn clone(&self) -> Self {
        TtcSchedule {
            starts: self.starts.clone(),
            frames: self.frames.clone(),
            start_count: self.start_count,
            frame_count: self.frame_count,
            makespan: self.makespan,
        }
    }

    /// Allocation-reusing: `source`'s entries land in `self`'s buffers (the
    /// reusable analysis context and the batch lanes re-assign schedules
    /// many times per synthesis run).
    fn clone_from(&mut self, source: &Self) {
        self.starts.clone_from(&source.starts);
        self.frames.clone_from(&source.frames);
        self.start_count = source.start_count;
        self.frame_count = source.frame_count;
        self.makespan = source.makespan;
    }
}

impl PartialEq for TtcSchedule {
    /// Semantic equality: same placed entries and makespan (trailing empty
    /// slots from capacity reuse are ignored).
    fn eq(&self, other: &Self) -> bool {
        fn entries<T: Copy>(v: &[Option<T>]) -> impl Iterator<Item = (usize, T)> + '_ {
            v.iter().enumerate().filter_map(|(i, e)| e.map(|e| (i, e)))
        }
        self.start_count == other.start_count
            && self.frame_count == other.frame_count
            && self.makespan == other.makespan
            && entries(&self.starts).eq(entries(&other.starts))
            && entries(&self.frames).eq(entries(&other.frames))
    }
}

impl TtcSchedule {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empties the schedule while keeping its allocations, so one
    /// `TtcSchedule` can be reused across scheduling passes (the reusable
    /// analysis context rebuilds the schedule many times per synthesis run).
    pub fn clear(&mut self) {
        self.starts.clear();
        self.frames.clear();
        self.start_count = 0;
        self.frame_count = 0;
        self.makespan = Time::ZERO;
    }

    /// Records the start time of a TT process.
    pub fn set_start(&mut self, process: ProcessId, start: Time) {
        let i = process.index();
        if i >= self.starts.len() {
            self.starts.resize(i + 1, None);
        }
        if self.starts[i].replace(start).is_none() {
            self.start_count += 1;
        }
    }

    /// Records the frame placement of a message's TTP leg.
    pub fn set_frame(&mut self, message: MessageId, placement: FramePlacement) {
        let i = message.index();
        if i >= self.frames.len() {
            self.frames.resize(i + 1, None);
        }
        if self.frames[i].replace(placement).is_none() {
            self.frame_count += 1;
        }
    }

    /// Updates the makespan if `finish` extends it.
    pub fn extend_makespan(&mut self, finish: Time) {
        self.makespan = self.makespan.max(finish);
    }

    /// The scheduled start (offset) of a TT process, if scheduled.
    #[inline]
    pub fn start(&self, process: ProcessId) -> Option<Time> {
        self.starts.get(process.index()).copied().flatten()
    }

    /// The frame placement of a message, if scheduled on the TTP bus.
    #[inline]
    pub fn frame(&self, message: MessageId) -> Option<FramePlacement> {
        self.frames.get(message.index()).copied().flatten()
    }

    /// Latest completion over everything scheduled.
    pub fn makespan(&self) -> Time {
        self.makespan
    }

    /// Number of scheduled processes.
    pub fn process_count(&self) -> usize {
        self.start_count
    }

    /// Number of placed frames.
    pub fn frame_count(&self) -> usize {
        self.frame_count
    }

    /// Iterates over all (process, start) entries in id order.
    pub fn starts(&self) -> impl Iterator<Item = (ProcessId, Time)> + '_ {
        self.starts
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.map(|t| (ProcessId::new(i as u32), t)))
    }

    /// Iterates over all (message, placement) entries in id order.
    pub fn frames(&self) -> impl Iterator<Item = (MessageId, FramePlacement)> + '_ {
        self.frames
            .iter()
            .enumerate()
            .filter_map(|(i, f)| f.map(|f| (MessageId::new(i as u32), f)))
    }

    /// Collects the placement differences from `prev` into `procs`/`msgs`
    /// (cleared first): every process whose start and every message whose
    /// frame placement is present in only one schedule or changed value.
    ///
    /// This is the incremental-rebuild report of the static scheduler: when
    /// release bounds change, the schedule is rebuilt (the list scheduler is
    /// a global greedy — placements can shift across CPUs and phase groups),
    /// but the diff tells the analysis layer exactly which entities moved,
    /// so it re-derives only the phase groups the rebuild actually touched.
    pub fn diff_into(
        &self,
        prev: &TtcSchedule,
        procs: &mut Vec<ProcessId>,
        msgs: &mut Vec<MessageId>,
    ) {
        procs.clear();
        msgs.clear();
        let n = self.starts.len().max(prev.starts.len());
        for i in 0..n {
            let a = self.starts.get(i).copied().flatten();
            let b = prev.starts.get(i).copied().flatten();
            if a != b {
                procs.push(ProcessId::new(i as u32));
            }
        }
        let n = self.frames.len().max(prev.frames.len());
        for i in 0..n {
            let a = self.frames.get(i).copied().flatten();
            let b = prev.frames.get(i).copied().flatten();
            if a != b {
                msgs.push(MessageId::new(i as u32));
            }
        }
    }

    /// Renders the MEDL of one node: the chronologically ordered frame
    /// placements in that node's slot.
    pub fn medl_of_slot(&self, slot: SlotId) -> Vec<(MessageId, FramePlacement)> {
        let mut entries: Vec<_> = self.frames().filter(|(_, f)| f.slot == slot).collect();
        entries.sort_by_key(|(m, f)| (f.round, *m));
        entries
    }

    /// Renders the schedule table of one node given the mapping of processes
    /// to nodes, ordered by start time.
    pub fn table_of_node<'a>(
        &'a self,
        node: NodeId,
        node_of: impl Fn(ProcessId) -> NodeId + 'a,
    ) -> Vec<(ProcessId, Time)> {
        let mut entries: Vec<_> = self.starts().filter(|&(p, _)| node_of(p) == node).collect();
        entries.sort_by_key(|&(p, t)| (t, p));
        entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_round_trips_entries() {
        let mut s = TtcSchedule::new();
        s.set_start(ProcessId::new(1), Time::from_millis(10));
        s.extend_makespan(Time::from_millis(40));
        s.set_frame(
            MessageId::new(0),
            FramePlacement {
                slot: SlotId::new(1),
                round: 1,
                slot_start: Time::from_millis(60),
                arrival: Time::from_millis(80),
            },
        );
        assert_eq!(s.start(ProcessId::new(1)), Some(Time::from_millis(10)));
        assert_eq!(s.start(ProcessId::new(9)), None);
        assert_eq!(
            s.frame(MessageId::new(0)).map(|f| f.arrival),
            Some(Time::from_millis(80))
        );
        assert_eq!(s.makespan(), Time::from_millis(40));
        assert_eq!(s.process_count(), 1);
        assert_eq!(s.frame_count(), 1);
    }

    #[test]
    fn makespan_only_grows() {
        let mut s = TtcSchedule::new();
        s.extend_makespan(Time::from_millis(50));
        s.extend_makespan(Time::from_millis(30));
        assert_eq!(s.makespan(), Time::from_millis(50));
    }

    #[test]
    fn medl_is_ordered_by_round() {
        let mut s = TtcSchedule::new();
        let slot = SlotId::new(0);
        for (round, m) in [(3u64, 2u32), (1, 0), (2, 1)] {
            s.set_frame(
                MessageId::new(m),
                FramePlacement {
                    slot,
                    round,
                    slot_start: Time::from_millis(40 * round),
                    arrival: Time::from_millis(40 * round + 20),
                },
            );
        }
        let medl = s.medl_of_slot(slot);
        let rounds: Vec<u64> = medl.iter().map(|(_, f)| f.round).collect();
        assert_eq!(rounds, vec![1, 2, 3]);
        assert!(s.medl_of_slot(SlotId::new(5)).is_empty());
    }

    #[test]
    fn node_table_is_ordered_by_start() {
        let mut s = TtcSchedule::new();
        s.set_start(ProcessId::new(0), Time::from_millis(30));
        s.set_start(ProcessId::new(1), Time::from_millis(10));
        s.set_start(ProcessId::new(2), Time::from_millis(20));
        let table = s.table_of_node(NodeId::new(0), |p| {
            if p == ProcessId::new(2) {
                NodeId::new(1)
            } else {
                NodeId::new(0)
            }
        });
        let procs: Vec<u32> = table.iter().map(|(p, _)| p.raw()).collect();
        assert_eq!(procs, vec![1, 0]);
    }
}
