//! Timing queries over the TDMA round structure of the TTP bus.
//!
//! A TDMA round is the fixed sequence of slots configured in a
//! [`TdmaConfig`]; rounds repeat back to back forever. These helpers answer
//! "when does node N's slot next start/end at or after time t", which is the
//! primitive both the static scheduler and the simulator are built on.

use mcs_model::{NodeId, SlotId, TdmaConfig, Time, TtpBusParams};

/// A concrete occurrence of a slot on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlotOccurrence {
    /// Which slot of the round this is.
    pub slot: SlotId,
    /// Index of the round (0-based since time 0).
    pub round: u64,
    /// Wire start time of the occurrence.
    pub start: Time,
    /// Wire end time of the occurrence (start of the next slot).
    pub end: Time,
}

/// Read-only view combining a TDMA configuration with bus parameters.
#[derive(Clone, Copy, Debug)]
pub struct RoundSchedule<'a> {
    config: &'a TdmaConfig,
    params: TtpBusParams,
}

impl<'a> RoundSchedule<'a> {
    /// Creates a view over `config` with wire timing from `params`.
    pub fn new(config: &'a TdmaConfig, params: TtpBusParams) -> Self {
        RoundSchedule { config, params }
    }

    /// The TDMA round duration `T_TDMA`.
    pub fn round_duration(&self) -> Time {
        self.config.round_duration(&self.params)
    }

    /// The underlying configuration.
    pub fn config(&self) -> &TdmaConfig {
        self.config
    }

    /// Offset of `slot`'s start within a round.
    pub fn slot_offset(&self, slot: SlotId) -> Time {
        self.config.slot_offset(slot, &self.params)
    }

    /// Duration of `slot` on the wire.
    pub fn slot_duration(&self, slot: SlotId) -> Time {
        self.config.slot_duration(slot, &self.params)
    }

    /// Byte capacity of `slot`.
    pub fn slot_capacity(&self, slot: SlotId) -> u32 {
        self.config.slots()[slot.index()].capacity_bytes
    }

    /// The slot owned by `node`, if any.
    pub fn slot_of_node(&self, node: NodeId) -> Option<SlotId> {
        self.config.slot_of_node(node).map(|(id, _)| id)
    }

    /// The first occurrence of `slot` whose *start* is at or after `t`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range or the round is empty.
    pub fn next_occurrence(&self, slot: SlotId, t: Time) -> SlotOccurrence {
        let round_len = self.round_duration();
        assert!(!round_len.is_zero(), "empty TDMA round");
        let offset = self.slot_offset(slot);
        let duration = self.slot_duration(slot);
        // Smallest k with k*round + offset >= t.
        let round = if t <= offset {
            0
        } else {
            (t - offset).div_ceil(round_len)
        };
        let start = round_len.saturating_mul(round) + offset;
        SlotOccurrence {
            slot,
            round,
            start,
            end: start + duration,
        }
    }

    /// The occurrence of `slot` in round number `round` (0-based).
    ///
    /// This is the nominal (drift-free) wire timing; [`Self::next_occurrence`]
    /// at the returned `start` yields the same occurrence.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn occurrence(&self, slot: SlotId, round: u64) -> SlotOccurrence {
        let round_len = self.round_duration();
        let start = round_len.saturating_mul(round) + self.slot_offset(slot);
        SlotOccurrence {
            slot,
            round,
            start,
            end: start + self.slot_duration(slot),
        }
    }

    /// The `n`-th occurrence after a given occurrence (same slot).
    pub fn advance(&self, occ: SlotOccurrence, n: u64) -> SlotOccurrence {
        let round_len = self.round_duration();
        SlotOccurrence {
            slot: occ.slot,
            round: occ.round + n,
            start: occ.start + round_len.saturating_mul(n),
            end: occ.end + round_len.saturating_mul(n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_model::TdmaSlot;

    fn fixture() -> (TdmaConfig, TtpBusParams) {
        // Two slots of 20 ms each (figure 4): S_G then S_1, round = 40 ms.
        // byte_time 2.5 ms, 8-byte capacity, no overhead.
        let params = TtpBusParams::new(Time::from_micros(2_500), Time::ZERO);
        let config = TdmaConfig::new(vec![
            TdmaSlot {
                node: NodeId::new(2),
                capacity_bytes: 8,
            },
            TdmaSlot {
                node: NodeId::new(0),
                capacity_bytes: 8,
            },
        ]);
        (config, params)
    }

    #[test]
    fn figure4_round_timing() {
        let (config, params) = fixture();
        let rs = RoundSchedule::new(&config, params);
        assert_eq!(rs.round_duration(), Time::from_millis(40));
        assert_eq!(rs.slot_offset(SlotId::new(0)), Time::ZERO);
        assert_eq!(rs.slot_offset(SlotId::new(1)), Time::from_millis(20));
        assert_eq!(rs.slot_duration(SlotId::new(1)), Time::from_millis(20));
        assert_eq!(rs.slot_of_node(NodeId::new(0)), Some(SlotId::new(1)));
        assert_eq!(rs.slot_of_node(NodeId::new(7)), None);
    }

    #[test]
    fn next_occurrence_at_or_after() {
        let (config, params) = fixture();
        let rs = RoundSchedule::new(&config, params);
        let s1 = SlotId::new(1);
        // At t=0 the first S1 occurrence is [20, 40).
        let occ = rs.next_occurrence(s1, Time::ZERO);
        assert_eq!(occ.round, 0);
        assert_eq!(occ.start, Time::from_millis(20));
        assert_eq!(occ.end, Time::from_millis(40));
        // Exactly at the slot start: still this occurrence.
        let occ = rs.next_occurrence(s1, Time::from_millis(20));
        assert_eq!(occ.round, 0);
        // One tick later: the next round's occurrence, ending at 80 —
        // the paper's "m1 available at the end of slot S1 in round 2".
        let occ = rs.next_occurrence(s1, Time::from_micros(20_001));
        assert_eq!(occ.round, 1);
        assert_eq!(occ.start, Time::from_millis(60));
        assert_eq!(occ.end, Time::from_millis(80));
    }

    #[test]
    fn occurrence_by_round_matches_next_occurrence() {
        let (config, params) = fixture();
        let rs = RoundSchedule::new(&config, params);
        for slot in [SlotId::new(0), SlotId::new(1)] {
            for round in 0..10 {
                let occ = rs.occurrence(slot, round);
                assert_eq!(occ, rs.next_occurrence(slot, occ.start));
            }
        }
    }

    #[test]
    fn advance_moves_whole_rounds() {
        let (config, params) = fixture();
        let rs = RoundSchedule::new(&config, params);
        let occ = rs.next_occurrence(SlotId::new(0), Time::ZERO);
        let later = rs.advance(occ, 3);
        assert_eq!(later.round, 3);
        assert_eq!(later.start, Time::from_millis(120));
        assert_eq!(later.end, Time::from_millis(140));
    }

    #[test]
    fn occurrences_never_overlap_for_distinct_slots() {
        let (config, params) = fixture();
        let rs = RoundSchedule::new(&config, params);
        for t in (0..200).map(Time::from_millis) {
            let a = rs.next_occurrence(SlotId::new(0), t);
            let b = rs.next_occurrence(SlotId::new(1), t);
            assert!(a.end <= b.start || b.end <= a.start);
        }
    }
}
