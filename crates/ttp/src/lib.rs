//! # mcs-ttp
//!
//! TTP/TDMA substrate for the multi-cluster analysis: round/slot timing
//! ([`RoundSchedule`]), the static schedule representation — per-node
//! schedule tables and MEDLs ([`TtcSchedule`]) — and the list scheduler that
//! builds them ([`list_schedule`]).
//!
//! # Examples
//!
//! ```
//! use mcs_model::{NodeId, SlotId, TdmaConfig, TdmaSlot, Time, TtpBusParams};
//! use mcs_ttp::RoundSchedule;
//!
//! let config = TdmaConfig::new(vec![
//!     TdmaSlot { node: NodeId::new(2), capacity_bytes: 8 },
//!     TdmaSlot { node: NodeId::new(0), capacity_bytes: 8 },
//! ]);
//! let params = TtpBusParams::new(Time::from_micros(2_500), Time::ZERO);
//! let rounds = RoundSchedule::new(&config, params);
//! // Node N0's slot is the second 20 ms slot of each 40 ms round.
//! let occ = rounds.next_occurrence(SlotId::new(1), Time::from_millis(30));
//! assert_eq!(occ.start, Time::from_millis(60));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod list_scheduler;
mod render;
mod rounds;
mod schedule;

pub use list_scheduler::{
    critical_path_priorities, critical_path_priorities_into, list_schedule,
    list_schedule_dense_into, list_schedule_into, DenseSchedulerInput, ScheduleError,
    SchedulerInput,
};
pub use render::render_schedule;
pub use rounds::{RoundSchedule, SlotOccurrence};
pub use schedule::{FramePlacement, TtcSchedule};
