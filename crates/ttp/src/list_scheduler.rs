//! Static cyclic scheduling of the time-triggered cluster by list scheduling
//! (paper §4, using the approach of Eles et al., "Scheduling with Bus Access
//! Optimization for Distributed Embedded Systems").
//!
//! The scheduler builds the TTC schedule tables and MEDLs for one activation
//! of every process graph (the hyper-graph assumption of paper §2.1:
//! applications with unequal periods are first combined into hyper-graphs
//! over the LCM). It places
//!
//! * every process mapped on a statically scheduled (TT) CPU, respecting
//!   precedence, CPU exclusivity and exogenous *release* lower bounds — the
//!   worst-case arrival times of messages from the ETC computed by the
//!   response-time analysis, plus any offset pins of the optimizer; and
//! * the TTP leg of every message sent by a TTP node (TTC→TTC traffic and
//!   the first leg of TTC→ETC traffic), packing frames into the sender's
//!   TDMA slot occurrences under the slot's byte capacity.
//!
//! Traffic arriving from the ETC through the gateway's `Out_TTP` FIFO is
//! *not* placed here — its arrival is bounded analytically and enters as a
//! release on the destination process.

use std::collections::HashMap;

use mcs_model::{MessageId, MessageRoute, NodeId, ProcessId, System, TdmaConfig, Time};

use crate::rounds::RoundSchedule;
use crate::schedule::{FramePlacement, TtcSchedule};

/// Error produced by the list scheduler.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ScheduleError {
    /// A TTP-sending node has no TDMA slot in the configuration.
    NoSlotForNode(NodeId),
    /// A message is larger than its sender's slot capacity and cannot be
    /// packed into a single frame.
    MessageTooLarge {
        /// The offending message.
        message: MessageId,
        /// The configured slot capacity of the sender's node.
        capacity: u32,
    },
    /// The TDMA round has zero duration (no slots).
    EmptyRound,
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::NoSlotForNode(n) => {
                write!(f, "node {n} sends on the TTP bus but has no TDMA slot")
            }
            ScheduleError::MessageTooLarge { message, capacity } => {
                write!(
                    f,
                    "message {message} exceeds its sender slot capacity {capacity} B"
                )
            }
            ScheduleError::EmptyRound => write!(f, "the TDMA round has no slots"),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// Inputs to one static-scheduling pass.
#[derive(Clone, Copy, Debug)]
pub struct SchedulerInput<'a> {
    /// The system being scheduled.
    pub system: &'a System,
    /// The TDMA bus configuration β.
    pub tdma: &'a TdmaConfig,
    /// Exogenous lower bounds on TT process starts: worst-case arrival of
    /// inbound ETC traffic plus optimizer pins. Missing entries mean zero.
    pub process_releases: &'a HashMap<ProcessId, Time>,
    /// Exogenous lower bounds on message transmission starts: completion of
    /// ET senders (for frames placed on behalf of the gateway) plus pins.
    pub message_releases: &'a HashMap<MessageId, Time>,
}

/// Inputs to one static-scheduling pass with **dense** release tables,
/// indexed by [`ProcessId::index`]/[`MessageId::index`] (`None` = no bound).
///
/// This is the shape the incremental evaluation pipeline in `mcs-core`
/// drives the scheduler with: dense tables compare in O(n) without hashing,
/// so a schedule↔analysis fixed point detects "no release changed — nothing
/// to rebuild" (the dominant case on the delta-evaluation path, where a
/// whole re-scheduling pass is skipped because no phase group's releases
/// moved) with a plain slice comparison, and the scheduler reads bounds by
/// index instead of hashing inside its O(n²) candidate scans.
#[derive(Clone, Copy, Debug)]
pub struct DenseSchedulerInput<'a> {
    /// The system being scheduled.
    pub system: &'a System,
    /// The TDMA bus configuration β.
    pub tdma: &'a TdmaConfig,
    /// Release lower bound per process, by [`ProcessId::index`].
    pub process_releases: &'a [Option<Time>],
    /// Release lower bound per message, by [`MessageId::index`].
    pub message_releases: &'a [Option<Time>],
}

/// Runs list scheduling and returns the TTC schedule.
///
/// # Errors
///
/// Returns [`ScheduleError`] if the TDMA configuration cannot carry the
/// traffic (missing slot, oversized message, empty round).
pub fn list_schedule(input: &SchedulerInput<'_>) -> Result<TtcSchedule, ScheduleError> {
    let mut priorities = Vec::new();
    critical_path_priorities_into(input.system, input.tdma, &mut priorities);
    let mut schedule = TtcSchedule::new();
    list_schedule_into(input, &priorities, &mut schedule)?;
    Ok(schedule)
}

/// Reusable form of [`list_schedule`]: clears and refills `schedule` in
/// place (keeping its allocations) and takes the critical-path priorities as
/// an input so a caller iterating schedule ↔ analysis fixed points computes
/// them once per TDMA configuration instead of once per pass.
///
/// # Errors
///
/// Returns [`ScheduleError`] if the TDMA configuration cannot carry the
/// traffic (missing slot, oversized message, empty round). On error the
/// schedule contents are unspecified (partially filled); callers must treat
/// it as garbage until the next successful pass.
pub fn list_schedule_into(
    input: &SchedulerInput<'_>,
    priorities: &[Time],
    schedule: &mut TtcSchedule,
) -> Result<(), ScheduleError> {
    let app = &input.system.application;
    let mut process_releases = vec![None; app.processes().len()];
    for (&p, &t) in input.process_releases {
        process_releases[p.index()] = Some(t);
    }
    let mut message_releases = vec![None; app.messages().len()];
    for (&m, &t) in input.message_releases {
        message_releases[m.index()] = Some(t);
    }
    list_schedule_dense_into(
        &DenseSchedulerInput {
            system: input.system,
            tdma: input.tdma,
            process_releases: &process_releases,
            message_releases: &message_releases,
        },
        priorities,
        schedule,
    )
}

/// [`list_schedule_into`] over a [`DenseSchedulerInput`]: the allocation-free
/// scheduling entry point of the reusable analysis context (release bounds
/// are read by index, no hash map is flattened per pass).
///
/// # Errors
///
/// Returns [`ScheduleError`] if the TDMA configuration cannot carry the
/// traffic (missing slot, oversized message, empty round). On error the
/// schedule contents are unspecified (partially filled); callers must treat
/// it as garbage until the next successful pass.
pub fn list_schedule_dense_into(
    input: &DenseSchedulerInput<'_>,
    priorities: &[Time],
    schedule: &mut TtcSchedule,
) -> Result<(), ScheduleError> {
    schedule.clear();
    Scheduler::new(input, priorities, schedule)?.run()
}

/// Critical-path list priorities: the longest downstream path of each
/// process, where processes weigh their WCET and cross-node arcs weigh one
/// TDMA round (a uniform communication estimate).
pub fn critical_path_priorities(system: &System, tdma: &TdmaConfig) -> HashMap<ProcessId, Time> {
    let mut prio = Vec::new();
    critical_path_priorities_into(system, tdma, &mut prio);
    prio.into_iter()
        .enumerate()
        .map(|(i, t)| (ProcessId::new(i as u32), t))
        .collect()
}

/// Allocation-reusing form of [`critical_path_priorities`]: clears and
/// refills `prio`, indexed densely by [`ProcessId::index`].
pub fn critical_path_priorities_into(system: &System, tdma: &TdmaConfig, prio: &mut Vec<Time>) {
    let app = &system.application;
    let comm = tdma.round_duration(&system.architecture.ttp_params());
    prio.clear();
    prio.resize(app.processes().len(), Time::ZERO);
    // Reverse topological order per graph guarantees successors first.
    for graph in app.graphs() {
        for &p in app.topological_order(graph.id()).iter().rev() {
            let downstream = app
                .successors(p)
                .iter()
                .map(|e| {
                    let edge_cost = if e.message.is_some() {
                        comm
                    } else {
                        Time::ZERO
                    };
                    edge_cost + prio[e.dest.index()]
                })
                .fold(Time::ZERO, Time::max);
            prio[p.index()] = app.process(p).wcet() + downstream;
        }
    }
}

struct Scheduler<'a> {
    input: &'a DenseSchedulerInput<'a>,
    rounds: RoundSchedule<'a>,
    /// Critical-path priority per process (dense index).
    priorities: &'a [Time],
    /// Bytes already packed into each (slot, round) occurrence.
    frame_usage: HashMap<(u32, u64), u32>,
    schedule: &'a mut TtcSchedule,
    /// Earliest idle instant per node (dense index).
    node_free: Vec<Time>,
}

impl<'a> Scheduler<'a> {
    fn new(
        input: &'a DenseSchedulerInput<'a>,
        priorities: &'a [Time],
        schedule: &'a mut TtcSchedule,
    ) -> Result<Self, ScheduleError> {
        if input.tdma.slots().is_empty() {
            return Err(ScheduleError::EmptyRound);
        }
        let rounds = RoundSchedule::new(input.tdma, input.system.architecture.ttp_params());
        let node_free = vec![Time::ZERO; input.system.architecture.nodes().len()];
        Ok(Scheduler {
            input,
            rounds,
            priorities,
            frame_usage: HashMap::new(),
            schedule,
            node_free,
        })
    }

    fn proc_release(&self, p: ProcessId) -> Time {
        self.input
            .process_releases
            .get(p.index())
            .copied()
            .flatten()
            .unwrap_or(Time::ZERO)
    }

    fn msg_release(&self, m: MessageId) -> Time {
        self.input
            .message_releases
            .get(m.index())
            .copied()
            .flatten()
            .unwrap_or(Time::ZERO)
    }

    fn run(mut self) -> Result<(), ScheduleError> {
        let system = self.input.system;
        let app = &system.application;

        // Frames sent by ET CPUs over the TTP bus (gateway-resident senders
        // of TTC→TTC traffic) are placed first from their releases so that
        // destination readiness can observe the arrival.
        for message in app.messages() {
            let sender_node = app.process(message.source()).node();
            if system.route(message.id()).uses_ttp()
                && system.route(message.id()) != MessageRoute::EtcToTtc
                && system.architecture.is_et_cpu(sender_node)
            {
                let release = self.msg_release(message.id());
                self.place_frame(message.id(), sender_node, release)?;
            }
        }

        // TT processes still waiting for their TT-side predecessors.
        let mut remaining: Vec<usize> = vec![0; app.processes().len()];
        let mut unscheduled: Vec<ProcessId> = Vec::new();
        for p in app.processes() {
            if system.architecture.is_tt_cpu(p.node()) {
                remaining[p.id().index()] = app
                    .predecessors(p.id())
                    .iter()
                    .filter(|e| self.counts_as_tt_pred(e.source))
                    .count();
                unscheduled.push(p.id()); // id order: determinism
            }
        }

        while !unscheduled.is_empty() {
            // Candidates: all TT-side dependencies resolved.
            let mut best: Option<(Time, Time, ProcessId)> = None;
            for &p in &unscheduled {
                if remaining[p.index()] > 0 {
                    continue;
                }
                let est = self.earliest_start(p);
                let prio = self.priorities[p.index()];
                let better = match best {
                    None => true,
                    // Earliest start first; critical path length breaks ties.
                    Some((bt, bp, bid)) => {
                        (est, std::cmp::Reverse(prio), p) < (bt, std::cmp::Reverse(bp), bid)
                    }
                };
                if better {
                    best = Some((est, prio, p));
                }
            }
            let (start, _, p) =
                best.expect("acyclic validated graph always has a ready TT process");
            self.commit(p, start)?;
            unscheduled.retain(|&q| q != p);
            for e in app.successors(p) {
                let r = &mut remaining[e.dest.index()];
                *r = r.saturating_sub(1);
            }
        }
        Ok(())
    }

    /// A predecessor gates a TT process through the schedule table only if
    /// the predecessor itself is placed by this scheduler.
    fn counts_as_tt_pred(&self, pred: ProcessId) -> bool {
        let node = self.input.system.application.process(pred).node();
        self.input.system.architecture.is_tt_cpu(node)
    }

    fn earliest_start(&self, p: ProcessId) -> Time {
        let system = self.input.system;
        let app = &system.application;
        let node = app.process(p).node();
        let mut ready = self.proc_release(p);
        for e in app.predecessors(p) {
            if !self.counts_as_tt_pred(e.source) {
                // ET-sent TTP frames (gateway-resident senders) are placed
                // in the pre-pass: their arrival gates the table start
                // directly. Everything else is bounded by the exogenous
                // release.
                if let Some(frame) = e.message.and_then(|m| self.schedule.frame(m)) {
                    ready = ready.max(frame.arrival);
                }
                continue;
            }
            let pred_finish = self
                .schedule
                .start(e.source)
                .expect("TT predecessor scheduled before successor")
                + app.process(e.source).wcet();
            let avail = match e.message {
                // Cross-node: data available when the frame lands.
                Some(m) => self
                    .schedule
                    .frame(m)
                    .map(|f| f.arrival)
                    .unwrap_or(pred_finish),
                // Same node: available at predecessor completion.
                None => pred_finish,
            };
            ready = ready.max(avail);
        }
        ready.max(self.node_free[node.index()])
    }

    fn commit(&mut self, p: ProcessId, start: Time) -> Result<(), ScheduleError> {
        let system = self.input.system;
        let app = &system.application;
        let process = app.process(p);
        let finish = start + process.wcet();
        self.schedule.set_start(p, start);
        self.schedule.extend_makespan(finish);
        self.node_free[process.node().index()] = finish;

        // Place the TTP leg of every outbound message of this TT sender.
        let outgoing: Vec<MessageId> = app.successors(p).iter().filter_map(|e| e.message).collect();
        for m in outgoing {
            if !system.route(m).uses_ttp() || system.route(m) == MessageRoute::EtcToTtc {
                continue; // CAN-only, or FIFO-forwarded by the gateway
            }
            let ready = finish.max(self.msg_release(m));
            self.place_frame(m, process.node(), ready)?;
        }
        Ok(())
    }

    /// Packs a message into the earliest occurrence of its sender's slot
    /// starting at or after `ready` with spare capacity.
    fn place_frame(
        &mut self,
        message: MessageId,
        sender_node: NodeId,
        ready: Time,
    ) -> Result<(), ScheduleError> {
        let app = &self.input.system.application;
        let size = app.message(message).size_bytes();
        let slot = self
            .rounds
            .slot_of_node(sender_node)
            .ok_or(ScheduleError::NoSlotForNode(sender_node))?;
        let capacity = self.rounds.slot_capacity(slot);
        if size > capacity {
            return Err(ScheduleError::MessageTooLarge { message, capacity });
        }
        let mut occ = self.rounds.next_occurrence(slot, ready);
        loop {
            let used = self.frame_usage.entry((slot.raw(), occ.round)).or_insert(0);
            if *used + size <= capacity {
                *used += size;
                self.schedule.set_frame(
                    message,
                    FramePlacement {
                        slot,
                        round: occ.round,
                        slot_start: occ.start,
                        arrival: occ.end,
                    },
                );
                self.schedule.extend_makespan(occ.end);
                return Ok(());
            }
            occ = self.rounds.advance(occ, 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_model::{Application, Architecture, NodeRole, TdmaSlot, TtpBusParams};

    /// Two TT nodes + gateway; byte_time chosen so an 8-byte slot is 20 ms
    /// (figure 4 proportions).
    fn fixture() -> (System, TdmaConfig) {
        let mut b = Architecture::builder();
        let n1 = b.add_node("N1", NodeRole::TimeTriggered);
        let n2 = b.add_node("N2", NodeRole::TimeTriggered);
        let ng = b.add_node("NG", NodeRole::Gateway);
        b.ttp_params(TtpBusParams::new(Time::from_micros(2_500), Time::ZERO));
        let arch = b.build().expect("valid");

        let mut ab = Application::builder();
        let g = ab.add_graph("G", Time::from_millis(500), Time::from_millis(500));
        let p1 = ab.add_process(g, "P1", n1, Time::from_millis(30));
        let p2 = ab.add_process(g, "P2", n2, Time::from_millis(20));
        let p3 = ab.add_process(g, "P3", n1, Time::from_millis(10));
        ab.link(p1, p2, 8); // m0 over TTP
        ab.link(p2, p3, 8); // m1 over TTP
        let app = ab.build(&arch).expect("valid");
        let system = System::new(app, arch);
        let tdma = TdmaConfig::new(vec![
            TdmaSlot {
                node: ng,
                capacity_bytes: 8,
            },
            TdmaSlot {
                node: n1,
                capacity_bytes: 8,
            },
            TdmaSlot {
                node: n2,
                capacity_bytes: 8,
            },
        ]);
        (system, tdma)
    }

    fn empty_releases() -> (HashMap<ProcessId, Time>, HashMap<MessageId, Time>) {
        (HashMap::new(), HashMap::new())
    }

    #[test]
    fn chain_respects_precedence_and_bus_timing() {
        let (system, tdma) = fixture();
        let (pr, mr) = empty_releases();
        let input = SchedulerInput {
            system: &system,
            tdma: &tdma,
            process_releases: &pr,
            message_releases: &mr,
        };
        let s = list_schedule(&input).expect("schedulable");
        let app = &system.application;
        let p1 = ProcessId::new(0);
        let p2 = ProcessId::new(1);
        let p3 = ProcessId::new(2);
        let m0 = MessageId::new(0);
        let m1 = MessageId::new(1);

        assert_eq!(s.start(p1), Some(Time::ZERO));
        // m0 goes in N1's slot (second slot, [20,40) of each 60 ms round)
        // after P1 finishes at 30 -> round 1 occurrence [80, 100).
        let f0 = s.frame(m0).expect("placed");
        assert_eq!(f0.slot_start, Time::from_millis(80));
        assert_eq!(f0.arrival, Time::from_millis(100));
        // P2 starts at the frame arrival.
        assert_eq!(s.start(p2), Some(Time::from_millis(100)));
        // m1 in N2's slot ([40,60)) after P2 finishes at 120 -> [160, 180).
        let f1 = s.frame(m1).expect("placed");
        assert_eq!(f1.arrival, Time::from_millis(180));
        assert_eq!(s.start(p3), Some(Time::from_millis(180)));
        assert_eq!(s.makespan(), Time::from_millis(190));
        assert_eq!(app.process(p3).wcet(), Time::from_millis(10));
    }

    #[test]
    fn releases_delay_processes() {
        let (system, tdma) = fixture();
        let (mut pr, mr) = empty_releases();
        pr.insert(ProcessId::new(0), Time::from_millis(25));
        let input = SchedulerInput {
            system: &system,
            tdma: &tdma,
            process_releases: &pr,
            message_releases: &mr,
        };
        let s = list_schedule(&input).expect("schedulable");
        assert_eq!(s.start(ProcessId::new(0)), Some(Time::from_millis(25)));
    }

    #[test]
    fn cpu_is_exclusive_for_same_node_processes() {
        let mut b = Architecture::builder();
        let n1 = b.add_node("N1", NodeRole::TimeTriggered);
        let ng = b.add_node("NG", NodeRole::Gateway);
        let arch = b.build().expect("valid");
        let mut ab = Application::builder();
        let g = ab.add_graph("G", Time::from_millis(100), Time::from_millis(100));
        // Two independent processes on the same CPU must serialize.
        ab.add_process(g, "a", n1, Time::from_millis(10));
        ab.add_process(g, "b", n1, Time::from_millis(10));
        let app = ab.build(&arch).expect("valid");
        let system = System::new(app, arch);
        let tdma = TdmaConfig::new(vec![
            TdmaSlot {
                node: ng,
                capacity_bytes: 8,
            },
            TdmaSlot {
                node: n1,
                capacity_bytes: 8,
            },
        ]);
        let (pr, mr) = empty_releases();
        let input = SchedulerInput {
            system: &system,
            tdma: &tdma,
            process_releases: &pr,
            message_releases: &mr,
        };
        let s = list_schedule(&input).expect("schedulable");
        let mut starts = [
            s.start(ProcessId::new(0)).expect("scheduled"),
            s.start(ProcessId::new(1)).expect("scheduled"),
        ];
        starts.sort();
        assert_eq!(starts[0], Time::ZERO);
        assert_eq!(starts[1], Time::from_millis(10));
    }

    #[test]
    fn frames_pack_until_capacity_then_spill_to_next_round() {
        let mut b = Architecture::builder();
        let n1 = b.add_node("N1", NodeRole::TimeTriggered);
        let n2 = b.add_node("N2", NodeRole::TimeTriggered);
        let ng = b.add_node("NG", NodeRole::Gateway);
        b.ttp_params(TtpBusParams::new(Time::from_micros(1_000), Time::ZERO));
        let arch = b.build().expect("valid");
        let mut ab = Application::builder();
        let g = ab.add_graph("G", Time::from_millis(500), Time::from_millis(500));
        let src = ab.add_process(g, "src", n1, Time::from_millis(1));
        for i in 0..3 {
            let dst = ab.add_process(g, format!("d{i}"), n2, Time::from_millis(1));
            ab.link(src, dst, 6); // three 6-byte messages, slot capacity 8
        }
        let app = ab.build(&arch).expect("valid");
        let system = System::new(app, arch);
        let tdma = TdmaConfig::new(vec![
            TdmaSlot {
                node: ng,
                capacity_bytes: 8,
            },
            TdmaSlot {
                node: n1,
                capacity_bytes: 8,
            },
            TdmaSlot {
                node: n2,
                capacity_bytes: 8,
            },
        ]);
        let (pr, mr) = empty_releases();
        let input = SchedulerInput {
            system: &system,
            tdma: &tdma,
            process_releases: &pr,
            message_releases: &mr,
        };
        let s = list_schedule(&input).expect("schedulable");
        let mut rounds: Vec<u64> = (0..3)
            .map(|i| s.frame(MessageId::new(i)).expect("placed").round)
            .collect();
        rounds.sort();
        // Only one 6-byte message fits per 8-byte occurrence.
        assert_eq!(rounds, vec![0, 1, 2]);
    }

    #[test]
    fn oversized_message_is_rejected() {
        let (system, tdma) = fixture();
        // Shrink N1's slot below the 8-byte message size.
        let mut small = tdma.clone();
        small.slots_mut()[1].capacity_bytes = 4;
        let (pr, mr) = empty_releases();
        let input = SchedulerInput {
            system: &system,
            tdma: &small,
            process_releases: &pr,
            message_releases: &mr,
        };
        assert_eq!(
            list_schedule(&input).unwrap_err(),
            ScheduleError::MessageTooLarge {
                message: MessageId::new(0),
                capacity: 4
            }
        );
    }

    #[test]
    fn critical_path_orders_longer_chains_first() {
        let (system, tdma) = fixture();
        let prio = critical_path_priorities(&system, &tdma);
        // P1 heads the whole chain: its CP must exceed P3's.
        assert!(prio[&ProcessId::new(0)] > prio[&ProcessId::new(2)]);
    }

    #[test]
    fn empty_round_is_rejected() {
        let (system, _) = fixture();
        let tdma = TdmaConfig::new(vec![]);
        let (pr, mr) = empty_releases();
        let input = SchedulerInput {
            system: &system,
            tdma: &tdma,
            process_releases: &pr,
            message_releases: &mr,
        };
        assert_eq!(
            list_schedule(&input).unwrap_err(),
            ScheduleError::EmptyRound
        );
    }
}
