//! Human-readable rendering of synthesized TTC schedules: per-node schedule
//! tables and per-slot MEDLs, in the style of the paper's Figure 4 Gantt
//! annotations.

use std::fmt::Write as _;

use mcs_model::{System, TdmaConfig};

use crate::rounds::RoundSchedule;
use crate::schedule::TtcSchedule;

/// Renders the schedule tables of every statically scheduled node plus the
/// MEDL of every TDMA slot.
///
/// # Examples
///
/// The output looks like:
///
/// ```text
/// == schedule table: N1 ==
///   [     0ms ..    30ms]  P1
///   [   220ms ..   250ms]  P4
/// == MEDL: slot S1 (N1, 8 B) ==
///   round  1  [  60ms ..   80ms]  m0 m1
/// ```
pub fn render_schedule(system: &System, tdma: &TdmaConfig, schedule: &TtcSchedule) -> String {
    let mut out = String::new();
    let app = &system.application;
    let arch = &system.architecture;

    for node in arch.nodes() {
        if !arch.is_tt_cpu(node.id()) {
            continue;
        }
        let _ = writeln!(out, "== schedule table: {} ==", node.name());
        for (p, start) in schedule.table_of_node(node.id(), |p| app.process(p).node()) {
            let proc = app.process(p);
            let _ = writeln!(
                out,
                "  [{:>8} .. {:>8}]  {}",
                start.to_string(),
                (start + proc.wcet()).to_string(),
                proc.name()
            );
        }
    }

    let rounds = RoundSchedule::new(tdma, arch.ttp_params());
    for (i, slot) in tdma.slots().iter().enumerate() {
        let slot_id = mcs_model::SlotId::new(i as u32);
        let entries = schedule.medl_of_slot(slot_id);
        if entries.is_empty() {
            continue;
        }
        let _ = writeln!(
            out,
            "== MEDL: slot {} ({}, {} B) ==",
            slot_id,
            arch.node(slot.node).name(),
            slot.capacity_bytes
        );
        // Group messages sharing a slot occurrence (frame packing).
        let mut row: Option<(u64, Vec<String>)> = None;
        let mut rows = Vec::new();
        for (m, placement) in entries {
            match &mut row {
                Some((round, names)) if *round == placement.round => {
                    names.push(app.message(m).name().to_owned());
                }
                _ => {
                    if let Some(done) = row.take() {
                        rows.push(done);
                    }
                    row = Some((placement.round, vec![app.message(m).name().to_owned()]));
                }
            }
        }
        if let Some(done) = row.take() {
            rows.push(done);
        }
        for (round, names) in rows {
            let occ = rounds.advance(
                rounds.next_occurrence(slot_id, mcs_model::Time::ZERO),
                round,
            );
            let _ = writeln!(
                out,
                "  round {:>2}  [{:>8} .. {:>8}]  {}",
                round + 1,
                occ.start.to_string(),
                occ.end.to_string(),
                names.join(" ")
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list_scheduler::{list_schedule, SchedulerInput};
    use mcs_model::{Application, Architecture, NodeRole, TdmaSlot, Time, TtpBusParams};
    use std::collections::HashMap;

    #[test]
    fn render_contains_tables_and_medl() {
        let mut b = Architecture::builder();
        let n1 = b.add_node("N1", NodeRole::TimeTriggered);
        let n2 = b.add_node("N2", NodeRole::TimeTriggered);
        let ng = b.add_node("NG", NodeRole::Gateway);
        b.ttp_params(TtpBusParams::new(Time::from_micros(2_500), Time::ZERO));
        let arch = b.build().expect("valid");
        let mut ab = Application::builder();
        let g = ab.add_graph("G", Time::from_millis(500), Time::from_millis(500));
        let a = ab.add_process(g, "sense", n1, Time::from_millis(10));
        let c = ab.add_process(g, "act", n2, Time::from_millis(10));
        ab.link(a, c, 8);
        let app = ab.build(&arch).expect("valid");
        let system = mcs_model::System::new(app, arch);
        let tdma = mcs_model::TdmaConfig::new(vec![
            TdmaSlot {
                node: ng,
                capacity_bytes: 8,
            },
            TdmaSlot {
                node: n1,
                capacity_bytes: 8,
            },
            TdmaSlot {
                node: n2,
                capacity_bytes: 8,
            },
        ]);
        let (pr, mr) = (HashMap::new(), HashMap::new());
        let schedule = list_schedule(&SchedulerInput {
            system: &system,
            tdma: &tdma,
            process_releases: &pr,
            message_releases: &mr,
        })
        .expect("schedulable");
        let text = render_schedule(&system, &tdma, &schedule);
        assert!(text.contains("schedule table: N1"));
        assert!(text.contains("sense"));
        assert!(text.contains("MEDL: slot S1"));
        assert!(text.contains("m0"));
        // The ET-free node list never mentions the gateway CPU table.
        assert!(!text.contains("schedule table: NG"));
    }

    #[test]
    fn empty_schedule_renders_tables_only() {
        let mut b = Architecture::builder();
        b.add_node("N1", NodeRole::TimeTriggered);
        let ng = b.add_node("NG", NodeRole::Gateway);
        let arch = b.build().expect("valid");
        let mut ab = Application::builder();
        let g = ab.add_graph("G", Time::from_millis(100), Time::from_millis(100));
        ab.add_process(g, "p", mcs_model::NodeId::new(0), Time::from_millis(1));
        let app = ab.build(&arch).expect("valid");
        let system = mcs_model::System::new(app, arch);
        let tdma = mcs_model::TdmaConfig::new(vec![TdmaSlot {
            node: ng,
            capacity_bytes: 8,
        }]);
        let text = render_schedule(&system, &tdma, &TtcSchedule::new());
        assert!(text.contains("schedule table: N1"));
        assert!(!text.contains("MEDL"));
    }
}
