//! Resume-equivalence suite for `Synthesis::resume_from`: a run cut at an
//! *arbitrary* evaluation count (or by a wall-clock deadline) and resumed
//! from its partial report must be **bit-identical** to the uninterrupted
//! run — same incumbent, same evaluation count, same trajectory, same
//! exhaustion verdict. The continuation must also stream each event
//! exactly once across the cut, and reject checkpoints it cannot reproduce
//! with `SynthesisError::ResumeDivergence`.

use std::time::Duration;

use proptest::prelude::*;

use mcs_core::AnalysisParams;
use mcs_gen::{generate, GeneratorParams};
use mcs_model::System;
use mcs_opt::{
    Budget, BudgetAxis, EventCounter, Os, OsParams, Sa, SaParams, Synthesis, SynthesisError,
    SynthesisReport,
};

fn small_system(seed: u64) -> System {
    let mut p = GeneratorParams::paper_sized(2, seed);
    p.processes_per_node = 8;
    p.graphs = 4;
    p.inter_cluster_messages = Some(3);
    generate(&p)
}

fn quick_sa(seed: u64) -> SaParams {
    SaParams {
        iterations: 60,
        seed,
        ..SaParams::default()
    }
}

fn assert_bit_identical(context: &str, resumed: &SynthesisReport, full: &SynthesisReport) {
    assert_eq!(resumed.strategy, full.strategy, "{context}: strategy label");
    assert_eq!(
        resumed.best.config, full.best.config,
        "{context}: incumbent configuration"
    );
    assert_eq!(resumed.best.degree, full.best.degree, "{context}: δΓ");
    assert_eq!(
        resumed.best.total_buffers, full.best.total_buffers,
        "{context}: s_total"
    );
    assert_eq!(
        resumed.evaluations, full.evaluations,
        "{context}: evaluation count"
    );
    assert_eq!(
        resumed.trajectory, full.trajectory,
        "{context}: incumbent trajectory"
    );
    assert_eq!(resumed.exhausted, full.exhausted, "{context}: exhausted");
    assert_eq!(
        resumed.exhausted_by, full.exhausted_by,
        "{context}: exhausted_by"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// SAS preempted at an arbitrary evaluation count and resumed is
    /// bit-identical to the uninterrupted run.
    #[test]
    fn sas_resume_is_bit_identical(seed in 0u64..60, sa_seed in 0u64..8, cut in 1u64..60) {
        let system = small_system(seed);
        let analysis = AnalysisParams::default();
        let params = quick_sa(sa_seed);

        let partial = Synthesis::builder(&system)
            .analysis(analysis)
            .strategy(Sa::schedule(params))
            .budget(Budget::evals(cut))
            .run()
            .expect("a cut SAS run still records its start incumbent");
        let full = Synthesis::builder(&system)
            .analysis(analysis)
            .strategy(Sa::schedule(params))
            .run()
            .expect("analyzable");
        let resumed = Synthesis::builder(&system)
            .analysis(analysis)
            .strategy(Sa::schedule(params))
            .resume_from(&partial)
            .run()
            .expect("the continuation reproduces the checkpoint");
        assert_bit_identical("SAS", &resumed, &full);
    }

    /// The greedy OS synthesis preempted mid-sweep and resumed is
    /// bit-identical to the uninterrupted run.
    #[test]
    fn os_resume_is_bit_identical(seed in 0u64..40, cut in 1u64..40) {
        let system = small_system(seed);
        let analysis = AnalysisParams::default();

        let partial = Synthesis::builder(&system)
            .analysis(analysis)
            .strategy(Os::new(OsParams::default()))
            .budget(Budget::evals(cut))
            .run();
        // A tiny cut can end OS before its first feasible candidate; only
        // checkpoints with an incumbent are resumable.
        let Ok(partial) = partial else {
            return Ok(());
        };
        let full = Synthesis::builder(&system)
            .analysis(analysis)
            .strategy(Os::new(OsParams::default()))
            .run()
            .expect("analyzable");
        let resumed = Synthesis::builder(&system)
            .analysis(analysis)
            .strategy(Os::new(OsParams::default()))
            .resume_from(&partial)
            .run()
            .expect("the continuation reproduces the checkpoint");
        assert_bit_identical("OS", &resumed, &full);
    }

    /// Across the cut, the interrupted run and its continuation together
    /// deliver every count-bearing event exactly once: the per-kind event
    /// counts of (partial + continuation) equal the uninterrupted run's.
    #[test]
    fn events_stream_exactly_once_across_the_cut(
        seed in 0u64..40, sa_seed in 0u64..8, cut in 1u64..60,
    ) {
        let system = small_system(seed);
        let analysis = AnalysisParams::default();
        let params = quick_sa(sa_seed);

        let mut before = EventCounter::default();
        let partial = Synthesis::builder(&system)
            .analysis(analysis)
            .strategy(Sa::schedule(params))
            .budget(Budget::evals(cut))
            .observer(&mut before)
            .run()
            .expect("a cut SAS run still records its start incumbent");
        let mut after = EventCounter::default();
        Synthesis::builder(&system)
            .analysis(analysis)
            .strategy(Sa::schedule(params))
            .resume_from(&partial)
            .observer(&mut after)
            .run()
            .expect("the continuation reproduces the checkpoint");
        let mut uninterrupted = EventCounter::default();
        Synthesis::builder(&system)
            .analysis(analysis)
            .strategy(Sa::schedule(params))
            .observer(&mut uninterrupted)
            .run()
            .expect("analyzable");

        prop_assert_eq!(before.evaluated + after.evaluated, uninterrupted.evaluated);
        prop_assert_eq!(before.accepted + after.accepted, uninterrupted.accepted);
        prop_assert_eq!(before.infeasible + after.infeasible, uninterrupted.infeasible);
        prop_assert_eq!(before.incumbents + after.incumbents, uninterrupted.incumbents);
        prop_assert_eq!(before.epochs + after.epochs, uninterrupted.epochs);
    }

    /// A checkpoint the continuation cannot reproduce — here a tampered
    /// trajectory standing in for a mismatched seed/strategy/system — fails
    /// with `ResumeDivergence` instead of silently producing a report from
    /// a different search.
    #[test]
    fn divergent_checkpoint_is_rejected(seed in 0u64..40, sa_seed in 0u64..8) {
        let system = small_system(seed);
        let analysis = AnalysisParams::default();
        let params = quick_sa(sa_seed);

        let mut checkpoint = Synthesis::builder(&system)
            .analysis(analysis)
            .strategy(Sa::schedule(params))
            .budget(Budget::evals(10))
            .run()
            .expect("a cut SAS run still records its start incumbent");
        let last = checkpoint
            .trajectory
            .last_mut()
            .expect("a report always has a trajectory point");
        last.summary.total_buffers += 1;

        let outcome = Synthesis::builder(&system)
            .analysis(analysis)
            .strategy(Sa::schedule(params))
            .resume_from(&checkpoint)
            .run();
        prop_assert!(
            matches!(outcome, Err(SynthesisError::ResumeDivergence { .. })),
            "expected ResumeDivergence, got {:?}",
            outcome.map(|r| r.evaluations)
        );
    }
}

/// A wall-clock-cut run (the nondeterministic preemption the serving layer
/// produces) reports the wall-clock axis and resumes bit-identically.
#[test]
fn wall_clock_cut_resumes_bit_identically() {
    let system = small_system(7);
    let analysis = AnalysisParams::default();
    let params = quick_sa(3);

    // A zero deadline exhausts at the first poll — after the start
    // incumbent, so the partial report is resumable.
    let partial = Synthesis::builder(&system)
        .analysis(analysis)
        .strategy(Sa::schedule(params))
        .budget(Budget::wall_clock(Duration::ZERO))
        .run()
        .expect("the start incumbent is recorded before the first poll");
    assert!(partial.exhausted);
    assert_eq!(partial.exhausted_by, Some(BudgetAxis::WallClock));

    let full = Synthesis::builder(&system)
        .analysis(analysis)
        .strategy(Sa::schedule(params))
        .run()
        .expect("analyzable");
    let resumed = Synthesis::builder(&system)
        .analysis(analysis)
        .strategy(Sa::schedule(params))
        .resume_from(&partial)
        .run()
        .expect("the continuation reproduces the checkpoint");
    assert_bit_identical("SAS/wall-clock", &resumed, &full);
}

/// The two budget axes report distinctly, and `evals_and_time` exhausts on
/// whichever fires first.
#[test]
fn exhausted_axis_is_reported() {
    let system = small_system(11);
    let analysis = AnalysisParams::default();

    let by_evals = Synthesis::builder(&system)
        .analysis(analysis)
        .strategy(Sa::schedule(quick_sa(0)))
        .budget(Budget::evals(5))
        .run()
        .expect("analyzable");
    assert!(by_evals.exhausted);
    assert_eq!(by_evals.exhausted_by, Some(BudgetAxis::Evaluations));

    let by_time = Synthesis::builder(&system)
        .analysis(analysis)
        .strategy(Sa::schedule(quick_sa(0)))
        .budget(Budget::evals_and_time(1_000_000, Duration::ZERO))
        .run()
        .expect("analyzable");
    assert!(by_time.exhausted);
    assert_eq!(by_time.exhausted_by, Some(BudgetAxis::WallClock));

    let natural = Synthesis::builder(&system)
        .analysis(analysis)
        .strategy(Sa::schedule(quick_sa(0)))
        .run()
        .expect("analyzable");
    assert!(!natural.exhausted);
    assert_eq!(natural.exhausted_by, None);

    // Tightening keeps the minimum of stacked wall-clock limits.
    let budget = Budget::evals(10)
        .with_wall_clock(Duration::from_secs(60))
        .with_wall_clock(Duration::from_secs(30));
    assert_eq!(budget.max_evaluations(), Some(10));
    assert_eq!(budget.max_duration(), Some(Duration::from_secs(30)));
}
