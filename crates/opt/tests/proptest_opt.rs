//! Property-based tests of the optimizer machinery: move application never
//! corrupts a configuration, HOPA always yields valid priority assignments,
//! and the heuristics are deterministic.

use proptest::prelude::*;

use mcs_core::{validate_config, AnalysisParams};
use mcs_gen::{generate, GeneratorParams};
use mcs_opt::{
    evaluate, hopa_priorities, neighborhood, straightforward_config, Os, OsParams, Synthesis,
};

/// Runs the OS strategy through the synthesis front door and returns
/// (best evaluation, seed count, evaluations).
fn run_os(system: &mcs_model::System) -> (mcs_opt::Evaluation, usize, u64) {
    let mut strategy = Os::new(OsParams::default());
    let report = Synthesis::builder(system)
        .strategy(&mut strategy)
        .run()
        .expect("analyzable");
    (
        report.best,
        strategy.seed_configs().len(),
        report.evaluations,
    )
}

fn small_system(seed: u64) -> mcs_model::System {
    let mut p = GeneratorParams::paper_sized(2, seed);
    p.processes_per_node = 8;
    p.graphs = 4;
    p.inter_cluster_messages = Some(3);
    generate(&p)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// HOPA assigns complete, per-resource-unique priorities on arbitrary
    /// generated systems (validated by the same checker the analysis uses).
    #[test]
    fn hopa_is_always_valid(seed in 0u64..1_000) {
        let system = small_system(seed);
        let mut config = straightforward_config(&system);
        config.priorities = hopa_priorities(&system, &config.tdma);
        prop_assert!(validate_config(&system, &config).is_ok());
    }

    /// Every neighborhood move yields a configuration that either evaluates
    /// cleanly or is rejected as a structured error — never a panic, and
    /// never an invalid outcome.
    #[test]
    fn moves_never_corrupt_configurations(seed in 0u64..200, pick in 0usize..1_000) {
        let system = small_system(seed);
        let mut config = straightforward_config(&system);
        config.priorities = hopa_priorities(&system, &config.tdma);
        let analysis = AnalysisParams::default();
        let eval = evaluate(&system, config, &analysis).expect("analyzable");
        let moves = neighborhood(&system, &eval);
        prop_assume!(!moves.is_empty());
        let mv = moves[pick % moves.len()];
        let mut mutated = eval.config.clone();
        mv.apply(&mut mutated);
        // Either evaluates cleanly or is rejected as a structured error
        // (e.g. a slot shrunk below its largest frame) — never a panic.
        if let Ok(e) = evaluate(&system, mutated, &analysis) {
            prop_assert!(e.total_buffers > 0 || system.application.messages().is_empty());
        }
    }

    /// OS is a pure function of its inputs.
    #[test]
    fn optimize_schedule_is_deterministic(seed in 0u64..100) {
        let system = small_system(seed);
        let (a, a_seeds, a_evals) = run_os(&system);
        let (b, b_seeds, b_evals) = run_os(&system);
        prop_assert_eq!(a.schedule_cost(), b.schedule_cost());
        prop_assert_eq!(a.total_buffers, b.total_buffers);
        prop_assert_eq!(a_evals, b_evals);
        prop_assert_eq!(a_seeds, b_seeds);
    }

    /// OS never returns a configuration worse than its own starting point —
    /// the straightforward slot layout with HOPA priorities, which is the
    /// first configuration the greedy search evaluates. (Plain SF with
    /// index-order priorities is *not* a guaranteed lower bound: greedy
    /// search over HOPA-prioritized configurations can occasionally lose to
    /// a lucky index ordering.)
    #[test]
    fn os_dominates_its_starting_point(seed in 0u64..100) {
        let system = small_system(seed);
        let analysis = AnalysisParams::default();
        let mut start = straightforward_config(&system);
        start.priorities = hopa_priorities(&system, &start.tdma);
        let start = evaluate(&system, start, &analysis).expect("analyzable");
        let (os, _, _) = run_os(&system);
        prop_assert!(
            (os.schedule_cost(), os.total_buffers)
                <= (start.schedule_cost(), start.total_buffers)
        );
    }
}
