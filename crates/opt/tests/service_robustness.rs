//! Robustness suite for the `mcs::serve` streaming service: panic
//! isolation, retry with backoff, wall-clock deadlines, priority
//! preemption with bit-identical resume, bounded-queue backpressure, and
//! graceful drain/shutdown.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use mcs_core::{AnalysisParams, DeltaSeeds};
use mcs_gen::{generate, GeneratorParams};
use mcs_model::System;
use mcs_opt::synthesis::{SearchCtx, Strategy, SynthesisError};
use mcs_opt::{
    Budget, CancelCause, JobOutcome, JobSpec, MoveSampler, RetryPolicy, Sa, SaParams,
    ServiceConfig, Sf, SubmitError, Synthesis, SynthesisReport, SynthesisService,
};

use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_system(seed: u64) -> System {
    let mut p = GeneratorParams::paper_sized(2, seed);
    p.processes_per_node = 8;
    p.graphs = 4;
    p.inter_cluster_messages = Some(3);
    generate(&p)
}

fn one_worker() -> ServiceConfig {
    ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    }
}

// ---------------------------------------------------------------------------
// Injected strategies
// ---------------------------------------------------------------------------

/// Panics on every run — the poisoned-job injection.
struct Panicking;

impl Strategy for Panicking {
    fn name(&self) -> &'static str {
        "PANIC"
    }
    fn run(&mut self, _ctx: &mut SearchCtx<'_, '_, '_>) -> Result<(), SynthesisError> {
        panic!("injected failure");
    }
}

/// Panics on the first `failures` runs, then behaves like SF.
struct Flaky {
    failures: u32,
    runs: Arc<AtomicU32>,
}

impl Strategy for Flaky {
    fn name(&self) -> &'static str {
        "FLAKY"
    }
    fn run(&mut self, ctx: &mut SearchCtx<'_, '_, '_>) -> Result<(), SynthesisError> {
        if self.runs.fetch_add(1, Ordering::SeqCst) < self.failures {
            panic!("transient failure");
        }
        Sf.run(ctx)
    }
}

/// A deterministic annealer with a fixed per-iteration sleep: its search
/// trajectory is a pure function of its seed (the sleeps only slow it
/// down), so a preempted run can be compared bit-for-bit against an
/// uninterrupted twin — while being slow enough that deadline and
/// preemption tests never race job completion.
struct SleepySearch {
    seed: u64,
    iterations: u32,
    pause: Duration,
}

impl Strategy for SleepySearch {
    fn name(&self) -> &'static str {
        "SLEEPY"
    }
    fn run(&mut self, ctx: &mut SearchCtx<'_, '_, '_>) -> Result<(), SynthesisError> {
        let system = ctx.system();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut sampler = MoveSampler::new(system);
        let mut config = mcs_opt::sa_start(system);
        let mut current = ctx.evaluate(&config)?;
        let mut best = current;
        ctx.record_incumbent(current, &config);
        let mut seeds = DeltaSeeds::new();
        for _ in 0..self.iterations {
            if ctx.exhausted() {
                break;
            }
            thread::sleep(self.pause);
            let Some(mv) = sampler.sample(system, &config, ctx.evaluator(), &current, &mut rng)
            else {
                break;
            };
            let undo = mv.apply_undoable_seeded(&mut config, &mut seeds);
            let Ok(candidate) = ctx.evaluate_delta(&config, &seeds) else {
                undo.record_seeds(&mut seeds);
                undo.revert(&mut config);
                continue;
            };
            seeds.clear();
            if candidate.schedule_cost() <= current.schedule_cost() {
                if candidate.schedule_cost() < best.schedule_cost() {
                    best = candidate;
                    ctx.record_incumbent(candidate, &config);
                }
                current = candidate;
            } else {
                undo.record_seeds(&mut seeds);
                undo.revert(&mut config);
            }
        }
        let _ = best;
        Ok(())
    }
}

/// Sleeps until cancelled or exhausted without ever evaluating — a job
/// that can only end by deadline or cancellation, with no incumbent.
struct Dawdler;

impl Strategy for Dawdler {
    fn name(&self) -> &'static str {
        "DAWDLE"
    }
    fn run(&mut self, ctx: &mut SearchCtx<'_, '_, '_>) -> Result<(), SynthesisError> {
        while !ctx.exhausted() {
            thread::sleep(Duration::from_millis(1));
        }
        Ok(())
    }
}

fn spec(name: &str, system: &Arc<System>, strategy: impl Strategy + 'static) -> JobSpec {
    JobSpec::new(
        name,
        Arc::clone(system),
        AnalysisParams::default(),
        strategy,
    )
}

// ---------------------------------------------------------------------------
// Panic isolation & retry
// ---------------------------------------------------------------------------

#[test]
fn panicking_job_is_isolated_and_every_other_job_completes() {
    let system = Arc::new(small_system(1));
    let service = SynthesisService::start(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    });
    for i in 0..4 {
        service
            .try_submit(spec(&format!("ok/{i}"), &system, Sf))
            .unwrap();
    }
    service
        .try_submit(spec("boom", &system, Panicking))
        .unwrap();
    let mut records = service.shutdown();
    records.sort_by_key(|r| r.id);
    assert_eq!(records.len(), 5);
    for record in &records[..4] {
        assert!(
            matches!(record.outcome, JobOutcome::Completed(_)),
            "{}: expected completion, got {}",
            record.name,
            record.outcome.kind()
        );
    }
    let boom = &records[4];
    assert_eq!(boom.attempts, 1);
    match &boom.outcome {
        JobOutcome::Panicked { message } => assert_eq!(message, "injected failure"),
        other => panic!("expected Panicked, got {}", other.kind()),
    }
    let line = boom.json_line();
    assert!(line.contains("\"outcome\": \"panicked\""), "{line}");
    assert!(line.contains("\"error\": \"injected failure\""), "{line}");
    assert!(line.contains("\"ok\": false"), "{line}");
}

#[test]
fn retry_with_backoff_recovers_a_flaky_job() {
    let system = Arc::new(small_system(2));
    let service = SynthesisService::start(one_worker());
    let runs = Arc::new(AtomicU32::new(0));
    service
        .try_submit(
            spec(
                "flaky",
                &system,
                Flaky {
                    failures: 2,
                    runs: Arc::clone(&runs),
                },
            )
            .retry(RetryPolicy {
                max_retries: 2,
                backoff: Duration::from_millis(1),
            }),
        )
        .unwrap();
    let records = service.shutdown();
    assert_eq!(records.len(), 1);
    assert_eq!(records[0].attempts, 3);
    assert_eq!(runs.load(Ordering::SeqCst), 3);
    assert!(
        matches!(records[0].outcome, JobOutcome::Completed(_)),
        "expected the third attempt to complete, got {}",
        records[0].outcome.kind()
    );
}

#[test]
fn retries_are_bounded() {
    let system = Arc::new(small_system(2));
    let service = SynthesisService::start(one_worker());
    service
        .try_submit(spec("boom", &system, Panicking).retry(RetryPolicy {
            max_retries: 1,
            backoff: Duration::from_millis(1),
        }))
        .unwrap();
    let records = service.shutdown();
    assert_eq!(records.len(), 1);
    assert_eq!(records[0].attempts, 2);
    assert!(matches!(records[0].outcome, JobOutcome::Panicked { .. }));
}

// ---------------------------------------------------------------------------
// Deadlines
// ---------------------------------------------------------------------------

#[test]
fn deadline_times_out_with_a_partial_report() {
    let system = Arc::new(small_system(3));
    let service = SynthesisService::start(one_worker());
    service
        .try_submit(
            spec(
                "slow",
                &system,
                SleepySearch {
                    seed: 5,
                    iterations: 10_000,
                    pause: Duration::from_millis(2),
                },
            )
            .deadline(Duration::from_millis(60)),
        )
        .unwrap();
    let records = service.shutdown();
    assert_eq!(records.len(), 1);
    match &records[0].outcome {
        JobOutcome::TimedOut {
            partial: Some(report),
        } => {
            assert_eq!(
                report.exhausted_by,
                Some(mcs_opt::BudgetAxis::WallClock),
                "the partial report must name the wall-clock axis"
            );
            assert!(report.exhausted);
        }
        other => panic!("expected TimedOut with partial, got {}", other.kind()),
    }
    let line = records[0].json_line();
    assert!(line.contains("\"outcome\": \"timed_out\""), "{line}");
    assert!(line.contains("\"exhausted_by\": \"wall_clock\""), "{line}");
}

#[test]
fn deadline_without_incumbent_times_out_without_partial() {
    let system = Arc::new(small_system(3));
    let service = SynthesisService::start(one_worker());
    service
        .try_submit(spec("dawdle", &system, Dawdler).deadline(Duration::from_millis(30)))
        .unwrap();
    let records = service.shutdown();
    assert_eq!(records.len(), 1);
    assert!(
        matches!(records[0].outcome, JobOutcome::TimedOut { partial: None }),
        "expected TimedOut without partial, got {}",
        records[0].outcome.kind()
    );
}

// ---------------------------------------------------------------------------
// Preemption & resume
// ---------------------------------------------------------------------------

#[test]
fn preempted_job_resumes_bit_identical_to_an_uninterrupted_run() {
    let system = Arc::new(small_system(4));
    let sleepy = || SleepySearch {
        seed: 9,
        iterations: 300,
        pause: Duration::from_millis(2),
    };

    let service = SynthesisService::start(one_worker());
    let low = service
        .try_submit(spec("low", &system, sleepy()).priority(0))
        .unwrap();
    while service.running() == 0 {
        thread::sleep(Duration::from_millis(1));
    }
    thread::sleep(Duration::from_millis(40));
    // Every worker is busy: this submission preempts the running
    // lower-priority search.
    service
        .try_submit(spec("high", &system, Sf).priority(5))
        .unwrap();
    let mut records = service.shutdown();
    records.sort_by_key(|r| r.id);
    assert_eq!(records.len(), 2);
    assert_eq!(records[0].id, low);
    let partial = match records.remove(0).outcome {
        JobOutcome::Cancelled {
            partial: Some(partial),
            cause: CancelCause::Preempted,
        } => partial,
        other => panic!(
            "expected the low-priority job preempted with a partial, got {}",
            other.kind()
        ),
    };
    assert!(
        matches!(records[0].outcome, JobOutcome::Completed(_)),
        "the high-priority job completes"
    );

    // Resume the preempted search through the service and compare to an
    // uninterrupted twin.
    let service = SynthesisService::start(one_worker());
    service
        .try_submit(spec("low/resumed", &system, sleepy()).resume_from(*partial))
        .unwrap();
    let mut records = service.shutdown();
    let resumed = match records.remove(0).outcome {
        JobOutcome::Completed(report) => report,
        other => panic!(
            "expected the continuation to complete, got {}",
            other.kind()
        ),
    };
    let full = Synthesis::builder(&system)
        .strategy(sleepy())
        .run()
        .expect("analyzable");
    assert_bit_identical(&resumed, &full);
}

fn assert_bit_identical(resumed: &SynthesisReport, full: &SynthesisReport) {
    assert_eq!(resumed.best.config, full.best.config);
    assert_eq!(resumed.best.degree, full.best.degree);
    assert_eq!(resumed.best.total_buffers, full.best.total_buffers);
    assert_eq!(resumed.evaluations, full.evaluations);
    assert_eq!(resumed.trajectory, full.trajectory);
    assert_eq!(resumed.exhausted, full.exhausted);
    assert_eq!(resumed.exhausted_by, full.exhausted_by);
}

// ---------------------------------------------------------------------------
// Backpressure
// ---------------------------------------------------------------------------

#[test]
fn bounded_queue_pushes_back_on_the_producer() {
    let system = Arc::new(small_system(5));
    let service = SynthesisService::start(ServiceConfig {
        workers: 1,
        queue_capacity: 1,
        ..ServiceConfig::default()
    });
    // Occupy the single worker, then fill the single queue slot.
    let blocker = service
        .try_submit(spec("blocker", &system, Dawdler))
        .unwrap();
    while service.running() == 0 {
        thread::sleep(Duration::from_millis(1));
    }
    service.try_submit(spec("queued", &system, Sf)).unwrap();

    let rejected = service.try_submit(spec("rejected", &system, Sf));
    let Err(SubmitError::QueueFull(job)) = rejected else {
        panic!("expected QueueFull");
    };
    assert_eq!(job.name(), "rejected");

    let timed_out = service.submit(*job, Duration::from_millis(30));
    assert!(
        matches!(timed_out, Err(SubmitError::Timeout(_))),
        "the queue stays full while the blocker runs"
    );

    // Unblock: the dawdler is cancelled, the queued job runs, and a
    // subsequent blocking submit finds room.
    assert!(service.cancel(blocker));
    let accepted = service.submit(timed_out.unwrap_err().into_job(), Duration::from_secs(10));
    assert!(accepted.is_ok(), "space frees up once the blocker dies");

    let mut records = service.shutdown();
    records.sort_by_key(|r| r.id);
    assert_eq!(records.len(), 3);
    assert!(matches!(
        records[0].outcome,
        JobOutcome::Cancelled {
            cause: CancelCause::Explicit,
            ..
        }
    ));
    assert!(matches!(records[1].outcome, JobOutcome::Completed(_)));
    assert!(matches!(records[2].outcome, JobOutcome::Completed(_)));
}

// ---------------------------------------------------------------------------
// Drain & shutdown
// ---------------------------------------------------------------------------

#[test]
fn drain_returns_every_outstanding_record() {
    let system = Arc::new(small_system(6));
    let service = SynthesisService::start(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    });
    for i in 0..6 {
        service
            .try_submit(spec(&format!("job/{i}"), &system, Sf))
            .unwrap();
    }
    // Stream a couple, then drain the rest.
    let first = service
        .next_record(Duration::from_secs(30))
        .expect("a record");
    assert!(matches!(first.outcome, JobOutcome::Completed(_)));
    let mut rest = service.drain();
    assert_eq!(service.outstanding(), 0);
    assert_eq!(rest.len(), 5);
    rest.sort_by_key(|r| r.id);
    for record in &rest {
        assert!(matches!(record.outcome, JobOutcome::Completed(_)));
    }
    // The service still accepts work after a drain.
    service.try_submit(spec("late", &system, Sf)).unwrap();
    let records = service.shutdown();
    assert_eq!(records.len(), 1);
}

#[test]
fn immediate_shutdown_cancels_queued_and_running_jobs() {
    let system = Arc::new(small_system(6));
    let service = SynthesisService::start(one_worker());
    service
        .try_submit(spec("running", &system, Dawdler))
        .unwrap();
    while service.running() == 0 {
        thread::sleep(Duration::from_millis(1));
    }
    for i in 0..3 {
        service
            .try_submit(spec(&format!("queued/{i}"), &system, Sf))
            .unwrap();
    }
    let mut records = service.shutdown_now();
    records.sort_by_key(|r| r.id);
    assert_eq!(records.len(), 4);
    assert!(matches!(
        records[0].outcome,
        JobOutcome::Cancelled {
            cause: CancelCause::Shutdown,
            ..
        }
    ));
    for record in &records[1..] {
        assert_eq!(record.attempts, 0, "{}: never ran", record.name);
        assert!(matches!(
            record.outcome,
            JobOutcome::Cancelled {
                partial: None,
                cause: CancelCause::Shutdown,
            }
        ));
    }
}

#[test]
fn submissions_after_shutdown_are_rejected() {
    let system = Arc::new(small_system(6));
    let service = SynthesisService::start(one_worker());
    // Shutting down from another handle is not possible (shutdown consumes
    // the service), so exercise the accepting flag via drop ordering:
    // cancel + shutdown_now leaves no window — instead check the
    // eval-budget classification along the way.
    service
        .try_submit(
            spec(
                "budgeted",
                &system,
                SleepySearch {
                    seed: 1,
                    iterations: 50,
                    pause: Duration::from_millis(0),
                },
            )
            .budget(Budget::evals(10)),
        )
        .unwrap();
    let records = service.shutdown();
    assert_eq!(records.len(), 1);
    // Exhausting the evaluation axis is a *normal* completion — the report
    // itself records the truncation.
    match &records[0].outcome {
        JobOutcome::Completed(report) => {
            assert!(report.exhausted);
            assert_eq!(report.exhausted_by, Some(mcs_opt::BudgetAxis::Evaluations));
        }
        other => panic!("expected completion, got {}", other.kind()),
    }
}

// ---------------------------------------------------------------------------
// The batch runner still rides on the service
// ---------------------------------------------------------------------------

#[test]
fn experiment_runner_reports_structured_failures_instead_of_aborting() {
    use mcs_opt::{ExperimentJob, ExperimentRunner};
    let system = Arc::new(small_system(7));
    let analysis = AnalysisParams::default();
    let mut runner = ExperimentRunner::new();
    runner.push(ExperimentJob::new(
        "ok".to_string(),
        Arc::clone(&system),
        analysis,
        Sf,
    ));
    runner.push(ExperimentJob::new(
        "boom".to_string(),
        Arc::clone(&system),
        analysis,
        Panicking,
    ));
    runner.push(ExperimentJob::new(
        "sas".to_string(),
        Arc::clone(&system),
        analysis,
        Sa::schedule(SaParams {
            iterations: 20,
            seed: 0,
            ..SaParams::default()
        }),
    ));
    let records = runner.run();
    assert_eq!(records.len(), 3);
    assert_eq!(records[0].instance, "ok");
    assert!(records[0].report.is_ok());
    assert_eq!(records[1].instance, "boom");
    assert!(
        matches!(records[1].report, Err(SynthesisError::Panicked(_))),
        "the poisoned job fails structurally without sinking the batch"
    );
    assert!(records[2].report.is_ok());
}
