//! API-equivalence suite for the `Synthesis`/`Strategy` front door: every
//! strategy run through `Synthesis::run()` must be **bit-identical** (same
//! seed, same budget) to the legacy free-function drivers it replaced.
//!
//! The reference implementations below are *frozen verbatim copies* of the
//! pre-`Synthesis` loops (`sa_schedule`/`sa_resources`/`optimize_schedule`/
//! `optimize_resources`/SF-via-`evaluate`), kept here as the comparison
//! baseline. The deprecated public shims have been removed; these frozen
//! copies are what pins the search trajectories across refactors.

use proptest::prelude::*;

use mcs_core::{AnalysisParams, DeltaSeeds, EvalSummary, Evaluator};
use mcs_gen::{generate, GeneratorParams};
use mcs_model::{NodeId, System, SystemConfig, TdmaConfig, TdmaSlot};
use mcs_opt::{
    evaluate, hopa_priorities, minimal_slot_capacities, neighborhood, recommended_lengths,
    sa_start, straightforward_config, Evaluation, MoveSampler, Or, OrParams, Os, OsParams, Sa,
    SaParams, Sf, Synthesis,
};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn small_system(seed: u64) -> System {
    let mut p = GeneratorParams::paper_sized(2, seed);
    p.processes_per_node = 8;
    p.graphs = 4;
    p.inter_cluster_messages = Some(3);
    generate(&p)
}

fn small_multirate(seed: u64) -> System {
    let mut p = GeneratorParams::multi_rate(2, seed);
    p.processes_per_node = 8;
    p.graphs = 4;
    p.inter_cluster_messages = Some(3);
    generate(&p)
}

fn quick_sa(seed: u64) -> SaParams {
    SaParams {
        iterations: 60,
        seed,
        ..SaParams::default()
    }
}

// ---------------------------------------------------------------------------
// Frozen legacy drivers (pre-Synthesis, copied verbatim modulo return type)
// ---------------------------------------------------------------------------

/// The legacy generic annealer: one fresh `Evaluator`, `MoveSampler`
/// neighbor draws, apply/undo with delta-seed accumulation. Returns the
/// best (summary, configuration) ever visited.
fn legacy_anneal(
    system: &System,
    start: SystemConfig,
    analysis: &AnalysisParams,
    cost: impl Fn(&EvalSummary) -> f64,
    params: &SaParams,
) -> (EvalSummary, SystemConfig) {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut evaluator = Evaluator::new(system, *analysis);
    let mut sampler = MoveSampler::new(system);
    let mut config = start;
    let mut current = evaluator
        .evaluate(&config)
        .expect("the SA start configuration must be analyzable");
    let mut best = current;
    let mut best_config = config.clone();
    let mut temperature = params.initial_temperature;

    let mut seeds = DeltaSeeds::new();
    for _ in 0..params.iterations {
        let Some(mv) = sampler.sample(system, &config, &evaluator, &current, &mut rng) else {
            break;
        };
        let undo = mv.apply_undoable_seeded(&mut config, &mut seeds);
        temperature *= params.cooling;
        let Ok(candidate) = evaluator.evaluate_delta(&config, &seeds) else {
            undo.record_seeds(&mut seeds);
            undo.revert(&mut config);
            continue;
        };
        seeds.clear();
        let delta = cost(&candidate) - cost(&current);
        let accept = delta <= 0.0 || {
            let t = temperature.max(f64::MIN_POSITIVE);
            rng.gen::<f64>() < (-delta / t).exp()
        };
        if accept {
            if cost(&candidate) < cost(&best) {
                best = candidate;
                best_config.clone_from(&config);
            }
            current = candidate;
        } else {
            undo.record_seeds(&mut seeds);
            undo.revert(&mut config);
        }
    }
    (best, best_config)
}

/// The legacy resource-optimization cost (same ordering as
/// `Evaluation::resource_cost`).
fn legacy_resource_cost(summary: &EvalSummary) -> i128 {
    if summary.is_schedulable() {
        i128::from(summary.total_buffers)
    } else {
        i128::MAX / 4 + summary.schedule_cost().min(i128::MAX / 8)
    }
}

struct LegacySeedPool {
    limit: usize,
    by_degree: Vec<(i128, u64, SystemConfig)>,
    by_buffers: Vec<(u64, i128, SystemConfig)>,
}

impl LegacySeedPool {
    fn new(limit: usize) -> Self {
        LegacySeedPool {
            limit: limit.max(2),
            by_degree: Vec::new(),
            by_buffers: Vec::new(),
        }
    }

    fn offer(&mut self, summary: &EvalSummary, config: &SystemConfig) {
        let half = self.limit.div_ceil(2);
        self.by_degree.push((
            summary.schedule_cost(),
            summary.total_buffers,
            config.clone(),
        ));
        self.by_degree.sort_by_key(|a| (a.0, a.1));
        self.by_degree.truncate(half);
        if summary.is_schedulable() {
            self.by_buffers.push((
                summary.total_buffers,
                summary.schedule_cost(),
                config.clone(),
            ));
            self.by_buffers.sort_by_key(|a| (a.0, a.1));
            self.by_buffers.truncate(half);
        }
    }

    fn into_configs(self, best: &SystemConfig) -> Vec<SystemConfig> {
        let mut configs = vec![best.clone()];
        for (_, _, c) in self
            .by_degree
            .into_iter()
            .chain(self.by_buffers.into_iter().map(|(a, b, c)| (b, a, c)))
        {
            if !configs.contains(&c) {
                configs.push(c);
            }
        }
        configs.truncate(self.limit);
        configs
    }
}

struct LegacyOs {
    best: (EvalSummary, SystemConfig),
    seeds: Vec<SystemConfig>,
    evaluations: u32,
}

/// The legacy greedy OS loop: fix the TDMA round slot by slot, trying every
/// unassigned node and every recommended length, HOPA priorities per
/// candidate, structural delta seeds.
fn legacy_optimize_schedule(
    system: &System,
    analysis: &AnalysisParams,
    params: &OsParams,
) -> LegacyOs {
    let mut evaluator = Evaluator::new(system, *analysis);
    let caps = minimal_slot_capacities(system);
    let order: Vec<NodeId> = system.architecture.ttp_nodes().map(|n| n.id()).collect();
    let mut slots: Vec<TdmaSlot> = order
        .iter()
        .map(|&node| TdmaSlot {
            node,
            capacity_bytes: caps[&node],
        })
        .collect();

    let mut evaluations = 0;
    let mut best: Option<(EvalSummary, SystemConfig)> = None;
    let mut seeds = LegacySeedPool::new(params.seed_limit);
    let structural = DeltaSeeds::structural();

    for position in 0..slots.len() {
        let mut best_here: Option<(EvalSummary, SystemConfig, usize, u32)> = None;
        for j in position..slots.len() {
            slots.swap(position, j);
            let node = slots[position].node;
            let lengths = recommended_lengths(system, node);
            for &len in lengths.iter().take(params.max_slot_candidates.max(1)) {
                let saved = slots[position].capacity_bytes;
                slots[position].capacity_bytes = len.max(caps[&node]);
                let tdma = TdmaConfig::new(slots.clone());
                let priorities = hopa_priorities(system, &tdma);
                let config = SystemConfig::new(tdma, priorities);
                evaluations += 1;
                if let Ok(summary) = evaluator.evaluate_delta(&config, &structural) {
                    seeds.offer(&summary, &config);
                    let better = match &best_here {
                        None => true,
                        Some((cur, _, _, _)) => {
                            (summary.schedule_cost(), summary.total_buffers)
                                < (cur.schedule_cost(), cur.total_buffers)
                        }
                    };
                    if better {
                        best_here = Some((summary, config, j, slots[position].capacity_bytes));
                    }
                }
                slots[position].capacity_bytes = saved;
            }
            slots.swap(position, j);
        }
        if let Some((summary, config, j, len)) = best_here {
            slots.swap(position, j);
            slots[position].capacity_bytes = len;
            let better = match &best {
                None => true,
                Some((cur, _)) => {
                    (summary.schedule_cost(), summary.total_buffers)
                        < (cur.schedule_cost(), cur.total_buffers)
                }
            };
            if better {
                best = Some((summary, config));
            }
        }
    }

    let best = best.unwrap_or_else(|| {
        let config = straightforward_config(system);
        let summary = evaluator
            .evaluate(&config)
            .expect("the straightforward configuration must be analyzable");
        (summary, config)
    });
    LegacyOs {
        seeds: seeds.into_configs(&best.1),
        best,
        evaluations,
    }
}

/// Materializes an `Evaluation` from the evaluator's last run (the test
/// crate's stand-in for the crate-private `materialize`).
fn materialize_last(
    evaluator: &Evaluator<'_>,
    config: SystemConfig,
    summary: EvalSummary,
) -> Evaluation {
    Evaluation {
        config,
        degree: summary.degree,
        total_buffers: summary.total_buffers,
        outcome: evaluator.outcome(),
    }
}

struct LegacyOr {
    best: (EvalSummary, SystemConfig),
    os: LegacyOs,
    evaluations: u32,
}

/// The legacy OR pipeline: legacy OS for seeds, then a hill climb from
/// every seed with a second evaluator, apply/undo neighbor scans and
/// delta-seed accumulation.
fn legacy_optimize_resources(
    system: &System,
    analysis: &AnalysisParams,
    params: &OrParams,
) -> LegacyOr {
    let os = legacy_optimize_schedule(system, analysis, &params.os);
    let mut evaluations = 0;
    if !os.best.0.is_schedulable() {
        return LegacyOr {
            best: os.best.clone(),
            os,
            evaluations,
        };
    }

    let mut evaluator = Evaluator::new(system, *analysis);
    let mut global_best = os.best.clone();
    for seed in &os.seeds {
        let Ok(summary) = evaluator.evaluate(seed) else {
            continue;
        };
        let mut current_summary = summary;
        let mut current = materialize_last(&evaluator, seed.clone(), summary);
        let mut seeds = DeltaSeeds::new();
        for _ in 0..params.max_iterations {
            let moves = neighborhood(system, &current);
            let stride = (moves.len() / params.neighbor_sample.max(1)).max(1);
            let mut work = current.config.clone();
            let mut best_neighbor: Option<(EvalSummary, SystemConfig)> = None;
            for mv in moves.into_iter().step_by(stride) {
                let undo = mv.apply_undoable_seeded(&mut work, &mut seeds);
                evaluations += 1;
                if let Ok(summary) = evaluator.evaluate_delta(&work, &seeds) {
                    seeds.clear();
                    if summary.is_schedulable() {
                        let better = match &best_neighbor {
                            None => true,
                            Some((b, _)) => summary.total_buffers < b.total_buffers,
                        };
                        if better {
                            best_neighbor = Some((summary, work.clone()));
                        }
                    }
                }
                undo.record_seeds(&mut seeds);
                undo.revert(&mut work);
            }
            match best_neighbor {
                Some((summary, config)) if summary.total_buffers < current.total_buffers => {
                    let summary = evaluator
                        .evaluate(&config)
                        .expect("accepted neighbor was analyzable");
                    seeds.clear();
                    current_summary = summary;
                    current = materialize_last(&evaluator, config, summary);
                }
                _ => break,
            }
        }
        if current.is_schedulable() && current.total_buffers < global_best.0.total_buffers {
            global_best = (current_summary, current.config);
        }
    }
    LegacyOr {
        best: global_best,
        os,
        evaluations,
    }
}

// ---------------------------------------------------------------------------
// Equivalence properties: new API vs frozen legacy drivers
// ---------------------------------------------------------------------------

fn assert_same_incumbent(context: &str, new: &Evaluation, legacy: &(EvalSummary, SystemConfig)) {
    assert_eq!(
        new.config, legacy.1,
        "{context}: incumbent configurations diverged"
    );
    assert_eq!(
        new.degree, legacy.0.degree,
        "{context}: incumbent δΓ diverged"
    );
    assert_eq!(
        new.total_buffers, legacy.0.total_buffers,
        "{context}: incumbent s_total diverged"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// `Sf` through `Synthesis::run()` is bit-identical to the legacy
    /// SF-via-`evaluate` baseline.
    #[test]
    fn sf_matches_legacy(seed in 0u64..200) {
        let system = small_system(seed);
        let analysis = AnalysisParams::default();
        let legacy = evaluate(&system, straightforward_config(&system), &analysis)
            .expect("SF analyzable");
        let new = Synthesis::builder(&system)
            .analysis(analysis)
            .strategy(Sf)
            .run()
            .expect("SF analyzable")
            .best;
        prop_assert_eq!(new.config, legacy.config);
        prop_assert_eq!(new.degree, legacy.degree);
        prop_assert_eq!(new.total_buffers, legacy.total_buffers);
    }

    /// `Sa::schedule` (SAS) through `Synthesis::run()` is bit-identical to
    /// the legacy `sa_schedule` loop on the same seed.
    #[test]
    fn sas_matches_legacy(seed in 0u64..100, sa_seed in 0u64..16) {
        let system = small_system(seed);
        let analysis = AnalysisParams::default();
        let params = quick_sa(sa_seed);
        let legacy = legacy_anneal(
            &system,
            sa_start(&system),
            &analysis,
            |e| e.schedule_cost() as f64,
            &params,
        );
        let new = Synthesis::builder(&system)
            .analysis(analysis)
            .strategy(Sa::schedule(params))
            .run()
            .expect("analyzable")
            .best;
        assert_same_incumbent("SAS", &new, &legacy);
    }

    /// `Sa::resources` (SAR) through `Synthesis::run()` is bit-identical to
    /// the legacy `sa_resources` loop on the same seed.
    #[test]
    fn sar_matches_legacy(seed in 0u64..100, sa_seed in 0u64..16) {
        let system = small_system(seed);
        let analysis = AnalysisParams::default();
        let params = quick_sa(sa_seed);
        let legacy = legacy_anneal(
            &system,
            sa_start(&system),
            &analysis,
            |e| legacy_resource_cost(e) as f64,
            &params,
        );
        let new = Synthesis::builder(&system)
            .analysis(analysis)
            .strategy(Sa::resources(params))
            .run()
            .expect("analyzable")
            .best;
        assert_same_incumbent("SAR", &new, &legacy);
    }

    /// `Os` through `Synthesis::run()` is bit-identical to the legacy
    /// `optimize_schedule` loop: same incumbent, same seed pool, same
    /// evaluation count.
    #[test]
    fn os_matches_legacy(seed in 0u64..100) {
        let system = small_system(seed);
        let analysis = AnalysisParams::default();
        let legacy = legacy_optimize_schedule(&system, &analysis, &OsParams::default());
        let mut strategy = Os::new(OsParams::default());
        let report = Synthesis::builder(&system)
            .analysis(analysis)
            .strategy(&mut strategy)
            .run()
            .expect("analyzable");
        assert_same_incumbent("OS", &report.best, &legacy.best);
        prop_assert_eq!(strategy.seed_configs(), &legacy.seeds[..]);
        prop_assert_eq!(report.evaluations, u64::from(legacy.evaluations));
    }

    /// `Or` through `Synthesis::run()` is bit-identical to the legacy
    /// `optimize_resources` pipeline: same incumbent, same step-1 result,
    /// same climb evaluation count.
    #[test]
    fn or_matches_legacy(seed in 0u64..60) {
        let system = small_system(seed);
        let analysis = AnalysisParams::default();
        let params = OrParams {
            max_iterations: 3,
            neighbor_sample: 16,
            ..OrParams::default()
        };
        let legacy = legacy_optimize_resources(&system, &analysis, &params);
        let mut strategy = Or::new(params);
        let report = Synthesis::builder(&system)
            .analysis(analysis)
            .strategy(&mut strategy)
            .run()
            .expect("analyzable");
        assert_same_incumbent("OR", &report.best, &legacy.best);
        let details = strategy.take_details().expect("details recorded");
        assert_same_incumbent("OR/os-step", &details.os_best, &legacy.os.best);
        prop_assert_eq!(&details.os_seeds[..], &legacy.os.seeds[..]);
        prop_assert_eq!(details.os_evaluations, u64::from(legacy.os.evaluations));
        prop_assert_eq!(details.climb_evaluations, u64::from(legacy.evaluations));
    }

    /// The equivalences hold on multi-rate ({1, 2, 4}) instances too.
    #[test]
    fn sas_and_os_match_legacy_on_multirate(seed in 0u64..40) {
        let system = small_multirate(seed);
        let analysis = AnalysisParams::default();
        let params = quick_sa(seed);
        let legacy_sa = legacy_anneal(
            &system,
            sa_start(&system),
            &analysis,
            |e| e.schedule_cost() as f64,
            &params,
        );
        let new_sa = Synthesis::builder(&system)
            .analysis(analysis)
            .strategy(Sa::schedule(params))
            .run()
            .expect("analyzable")
            .best;
        assert_same_incumbent("SAS/multirate", &new_sa, &legacy_sa);

        let legacy_os = legacy_optimize_schedule(&system, &analysis, &OsParams::default());
        let new_os = Synthesis::builder(&system)
            .analysis(analysis)
            .strategy(Os::new(OsParams::default()))
            .run()
            .expect("analyzable")
            .best;
        assert_same_incumbent("OS/multirate", &new_os, &legacy_os.best);
    }
}
