//! Equivalence suite for the batched candidate-evaluation path: a batch of
//! candidates run through [`Evaluator::evaluate_batch`] must be
//! **bit-identical** to sequential `evaluate_delta` calls from the same base
//! state — which are themselves bit-identical to full `evaluate` calls (the
//! contract the `delta_rta_equivalence` suite pins). On top of the core
//! contract, the suite pins the one consumer whose batched mode is opt-in:
//! `Sa::batch(width)` must reproduce the *entire* seeded event stream of the
//! sequential annealer, draw for draw, for every width.
//!
//! Covered here:
//! * batch results vs a sequential delta trajectory and vs fresh full
//!   evaluations, across all four move families (slot swaps, slot resizes,
//!   priority swaps, φ pin/unpin);
//! * degenerate batches — width 1, duplicate candidates, infeasible
//!   members (slot capacity forced under the minimum) — and multi-rate
//!   instances;
//! * [`Evaluator::adopt_lane`]: the adopted primary state carries the exact
//!   timings a sequential evaluation would have left, and serves as a valid
//!   delta base afterwards;
//! * `Sa::batch(w)`: identical `SearchEvent` vectors, evaluation counts and
//!   final incumbents for several widths and seeds.

use proptest::prelude::*;

use mcs_core::{
    AnalysisError, AnalysisParams, BatchRequest, BatchScratch, DeltaSeeds, EvalSummary, Evaluator,
    SchedulabilityDegree,
};
use mcs_gen::{generate, GeneratorParams};
use mcs_model::{System, SystemConfig, TdmaConfig};
use mcs_opt::{
    evaluate, neighborhood, sa_start, Move, Observer, Sa, SaParams, SearchEvent, Synthesis,
};

fn small_system(seed: u64) -> System {
    let mut p = GeneratorParams::paper_sized(2, seed);
    p.processes_per_node = 8;
    p.graphs = 4;
    p.inter_cluster_messages = Some(3);
    generate(&p)
}

fn small_multirate(seed: u64) -> System {
    let mut p = GeneratorParams::multi_rate(2, seed);
    p.processes_per_node = 8;
    p.graphs = 4;
    p.inter_cluster_messages = Some(3);
    generate(&p)
}

/// A stride sample of the materialized neighborhood: covers every move
/// family the instance offers without evaluating thousands of candidates.
fn sampled_moves(system: &System, base: &SystemConfig, analysis: &AnalysisParams) -> Vec<Move> {
    let evaluation = evaluate(system, base.clone(), analysis).expect("base analyzable");
    let moves = neighborhood(system, &evaluation);
    let stride = (moves.len() / 24).max(1);
    moves.into_iter().step_by(stride).collect()
}

/// One [`BatchRequest`] per move: the base configuration with the move
/// applied, seeded with exactly the move's own entities (the base is the
/// evaluator's last completed analysis, so the carried seed set is empty).
fn requests_for(base: &SystemConfig, moves: &[Move]) -> Vec<BatchRequest> {
    moves
        .iter()
        .map(|mv| {
            let mut request = BatchRequest {
                config: base.clone(),
                seeds: DeltaSeeds::new(),
            };
            let _undo = mv.apply_undoable_seeded(&mut request.config, &mut request.seeds);
            request
        })
        .collect()
}

/// The sequential reference trajectory the batch replaces: one evaluator
/// walking the candidates with apply-style delta calls and SA-style seed
/// accumulation across the implicit reverts.
fn sequential_results(
    evaluator: &mut Evaluator<'_>,
    requests: &[BatchRequest],
) -> Vec<Result<EvalSummary, AnalysisError>> {
    let mut carried = DeltaSeeds::new();
    let mut seeds = DeltaSeeds::new();
    requests
        .iter()
        .map(|request| {
            seeds.clear();
            seeds.merge(&carried);
            seeds.merge(&request.seeds);
            let result = evaluator.evaluate_delta(&request.config, &seeds);
            // Reverting to `base` re-seeds the undone entities; carrying the
            // candidate's own seeds over-approximates that exactly like
            // `MoveUndo::record_seeds` would.
            if result.is_ok() {
                carried.clear();
            }
            carried.merge(&request.seeds);
            result
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Batched evaluation is bit-identical to the sequential delta
    /// trajectory AND to fresh full evaluations, across the sampled
    /// neighborhood of the SA start configuration.
    #[test]
    fn batch_matches_sequential_and_full(seed in 0u64..100) {
        let system = small_system(seed);
        let analysis = AnalysisParams::default();
        let base = sa_start(&system);
        let moves = sampled_moves(&system, &base, &analysis);
        prop_assume!(!moves.is_empty());
        let requests = requests_for(&base, &moves);

        let mut sequential = Evaluator::new(&system, analysis);
        sequential.evaluate(&base).expect("base analyzable");
        let expected = sequential_results(&mut sequential, &requests);

        let mut batched = Evaluator::new(&system, analysis);
        batched.evaluate(&base).expect("base analyzable");
        let (d0, f0) = batched.delta_stats();
        let mut scratch = BatchScratch::new();
        let results = batched.evaluate_batch(&mut scratch, &requests);

        prop_assert_eq!(&results, &expected);
        let (d1, f1) = batched.delta_stats();

        // Each result — and each lane's holistic-pass count, folded into the
        // primary's aggregate — matches a from-base reference evaluator
        // making the very call the lane made.
        let mut reference_gain = (0u64, 0u64);
        for (request, result) in requests.iter().zip(&results) {
            let mut fresh = Evaluator::new(&system, analysis);
            fresh.evaluate(&base).expect("base analyzable");
            let (rd0, rf0) = fresh.delta_stats();
            prop_assert_eq!(result, &fresh.evaluate_delta(&request.config, &request.seeds));
            let (rd1, rf1) = fresh.delta_stats();
            reference_gain.0 += rd1 - rd0;
            reference_gain.1 += rf1 - rf0;
        }
        prop_assert_eq!(
            (d1 - d0, f1 - f0),
            reference_gain,
            "the folded pass counts match the per-candidate references"
        );

        // Re-running a second (smaller) batch reuses the lanes.
        let second = &requests[..requests.len().div_ceil(2)];
        let lanes_before = scratch.lanes();
        let results = batched.evaluate_batch(&mut scratch, second);
        prop_assert_eq!(scratch.lanes(), lanes_before);
        for (request, result) in second.iter().zip(&results) {
            let mut fresh = Evaluator::new(&system, analysis);
            prop_assert_eq!(result, &fresh.evaluate(&request.config));
        }
    }

    /// Adopting a lane leaves the primary exactly where a sequential
    /// evaluation of that candidate would have: same analyzed timings, and
    /// a valid delta base for the next move.
    #[test]
    fn adopt_lane_matches_the_sequential_state(seed in 0u64..100) {
        let system = small_system(seed);
        let analysis = AnalysisParams::default();
        let base = sa_start(&system);
        let moves = sampled_moves(&system, &base, &analysis);
        prop_assume!(!moves.is_empty());
        let requests = requests_for(&base, &moves);

        let mut batched = Evaluator::new(&system, analysis);
        batched.evaluate(&base).expect("base analyzable");
        let mut scratch = BatchScratch::new();
        let results = batched.evaluate_batch(&mut scratch, &requests);
        let Some(adopted) = results.iter().position(|r| r.is_ok()) else {
            return Ok(());
        };
        batched.adopt_lane(&mut scratch, adopted);

        let mut sequential = Evaluator::new(&system, analysis);
        sequential
            .evaluate(&requests[adopted].config)
            .expect("adopted lane result was Ok");

        // Bit-identical analyzed timings (response times, offsets, jitter).
        let batched_outcome = batched.outcome();
        let sequential_outcome = sequential.outcome();
        prop_assert_eq!(&batched_outcome.process_timing, &sequential_outcome.process_timing);
        prop_assert_eq!(&batched_outcome.message_timing, &sequential_outcome.message_timing);

        // And an equivalent delta base: evaluating back to `base`, seeded
        // with the adopted move's entities, agrees bit for bit.
        let mut seeds = DeltaSeeds::new();
        seeds.merge(&requests[adopted].seeds);
        prop_assert_eq!(
            batched.evaluate_delta(&base, &seeds),
            sequential.evaluate_delta(&base, &seeds)
        );
    }

    /// Degenerate batches: width 1, duplicate members and infeasible
    /// members (a slot capacity forced below the minimum) all match the
    /// sequential results.
    #[test]
    fn degenerate_batches_match(seed in 0u64..100) {
        let system = small_system(seed);
        let analysis = AnalysisParams::default();
        let base = sa_start(&system);
        let moves = sampled_moves(&system, &base, &analysis);
        prop_assume!(!moves.is_empty());

        // Width 1.
        let single = requests_for(&base, &moves[..1]);
        let mut batched = Evaluator::new(&system, analysis);
        batched.evaluate(&base).expect("base analyzable");
        let mut scratch = BatchScratch::new();
        let results = batched.evaluate_batch(&mut scratch, &single);
        let mut sequential = Evaluator::new(&system, analysis);
        sequential.evaluate(&base).expect("base analyzable");
        prop_assert_eq!(
            &results[0],
            &sequential.evaluate_delta(&single[0].config, &single[0].seeds)
        );

        // Duplicates and an infeasible member, mixed into one batch: every
        // lane still matches a from-scratch full evaluation, and duplicate
        // candidates produce identical results.
        let mut mixed = requests_for(&base, &moves[..moves.len().min(4)]);
        mixed.push(mixed[0].clone());
        let mut starved = base.clone();
        let mut slots = starved.tdma.slots().to_vec();
        slots[0].capacity_bytes = 1;
        starved.tdma = TdmaConfig::new(slots);
        mixed.push(BatchRequest {
            config: starved,
            seeds: DeltaSeeds::structural(),
        });
        let results = batched.evaluate_batch(&mut scratch, &mixed);
        prop_assert_eq!(&results[0], &results[mixed.len() - 2]);
        for (request, result) in mixed.iter().zip(&results) {
            let mut fresh = Evaluator::new(&system, analysis);
            prop_assert_eq!(result, &fresh.evaluate(&request.config));
        }
    }

    /// The core equivalence holds on multi-rate ({1, 2, 4}) instances.
    #[test]
    fn batch_matches_on_multirate(seed in 0u64..40) {
        let system = small_multirate(seed);
        let analysis = AnalysisParams::default();
        let base = sa_start(&system);
        let moves = sampled_moves(&system, &base, &analysis);
        prop_assume!(!moves.is_empty());
        let requests = requests_for(&base, &moves);

        let mut sequential = Evaluator::new(&system, analysis);
        sequential.evaluate(&base).expect("base analyzable");
        let expected = sequential_results(&mut sequential, &requests);

        let mut batched = Evaluator::new(&system, analysis);
        batched.evaluate(&base).expect("base analyzable");
        let mut scratch = BatchScratch::new();
        let results = batched.evaluate_batch(&mut scratch, &requests);
        prop_assert_eq!(&results, &expected);
    }
}

// ---------------------------------------------------------------------------
// Sa::batch(width): the seeded event stream is unchanged
// ---------------------------------------------------------------------------

/// Records the full event stream, in emission order.
#[derive(Default)]
struct Recorder(Vec<SearchEvent>);

impl Observer for Recorder {
    fn on_event(&mut self, event: &SearchEvent) {
        self.0.push(*event);
    }
}

/// Runs SAS (or SAR) with the given batch width and records everything.
fn sa_stream(
    system: &System,
    params: SaParams,
    resources: bool,
    width: usize,
) -> (
    Vec<SearchEvent>,
    u64,
    SystemConfig,
    (SchedulabilityDegree, u64),
) {
    let strategy = if resources {
        Sa::resources(params)
    } else {
        Sa::schedule(params)
    };
    let mut events = Recorder::default();
    let report = Synthesis::builder(system)
        .analysis(AnalysisParams::default())
        .strategy(strategy.batch(width))
        .observer(&mut events)
        .run()
        .expect("the SA start configuration is analyzable");
    let costs = (report.best.degree, report.best.total_buffers);
    (events.0, report.evaluations, report.best.config, costs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// `Sa::batch(w)` reproduces the sequential annealer's seeded event
    /// stream — every epoch, evaluation, accept/reject flag and incumbent,
    /// in order — plus the final report, for widths across and beyond the
    /// speculation sweet spot.
    #[test]
    fn sa_batch_reproduces_the_sequential_event_stream(
        seed in 0u64..40,
        sa_seed in 0u64..8,
        width in 2usize..9,
        objective in 0u64..2,
    ) {
        let resources = objective == 1;
        let system = small_system(seed);
        let params = SaParams {
            iterations: 60,
            seed: sa_seed,
            ..SaParams::default()
        };
        let (events, evaluations, config, summary) = sa_stream(&system, params, resources, 1);
        let (b_events, b_evaluations, b_config, b_summary) =
            sa_stream(&system, params, resources, width);
        prop_assert_eq!(evaluations, b_evaluations, "budget accounting diverged");
        prop_assert_eq!(config, b_config, "incumbent configurations diverged");
        prop_assert_eq!(summary, b_summary, "incumbent summaries diverged");
        prop_assert_eq!(events, b_events, "event streams diverged");
    }
}

/// A width of 0 or 1 is exactly the sequential proposal loop (no
/// speculation machinery engaged), and widths far beyond the iteration
/// count stay equivalent — the window is clamped to the remaining budget.
#[test]
fn sa_batch_extreme_widths_match() {
    let system = small_system(7);
    let params = SaParams {
        iterations: 40,
        seed: 3,
        ..SaParams::default()
    };
    let reference = sa_stream(&system, params, false, 1);
    for width in [0, 1, 64, 1024] {
        let candidate = sa_stream(&system, params, false, width);
        assert_eq!(
            reference.0, candidate.0,
            "width {width}: event streams diverged"
        );
        assert_eq!(
            reference.1, candidate.1,
            "width {width}: evaluation counts diverged"
        );
        assert_eq!(
            reference.2, candidate.2,
            "width {width}: incumbents diverged"
        );
    }
}
