//! The delta-RTA contract: interleaved [`Evaluator::evaluate_delta`] calls
//! must produce **bit-identical** results to a fresh full evaluation after
//! every move — δΓ, `s_total`, every per-entity timing, every queue bound,
//! the schedule tables and the convergence metadata — across generated
//! systems, random move sequences and random accept/reject decisions
//! (rejections exercise the seed accumulation across reverted moves).
//!
//! This is what licenses the dependency closure of `mcs_core::delta`: a
//! clean entity it fails to mark would silently drift the delta path away
//! from the full fixed point, and this suite would catch it.

use proptest::prelude::*;

use mcs_core::{AnalysisParams, DeltaSeeds, Evaluator};
use mcs_gen::{generate, GeneratorParams};
use mcs_opt::{evaluate, hopa_priorities, neighborhood, straightforward_config};

fn small_system(seed: u64) -> mcs_model::System {
    let mut p = GeneratorParams::paper_sized(2, seed);
    p.processes_per_node = 8;
    p.graphs = 4;
    p.inter_cluster_messages = Some(3);
    generate(&p)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Walk a random move sequence with random accept/reject decisions.
    /// The delta evaluator accumulates seeds exactly like the search loops
    /// do: record the move's seeds on apply, clear them after a successful
    /// evaluation, record the undo's seeds when reverting a rejected or
    /// infeasible candidate. After every evaluation, the delta evaluator
    /// must agree with a fresh full evaluation down to the last bit.
    #[test]
    fn delta_evaluation_matches_fresh_evaluation(
        seed in 0u64..500,
        picks in proptest::collection::vec((0usize..1_000, any::<bool>()), 1..8),
    ) {
        let system = small_system(seed);
        let analysis = AnalysisParams::default();
        let mut config = straightforward_config(&system);
        config.priorities = hopa_priorities(&system, &config.tdma);

        let mut delta = Evaluator::new(&system, analysis);
        let mut seeds = DeltaSeeds::new();
        let mut current = evaluate(&system, config.clone(), &analysis).expect("analyzable");
        delta.evaluate(&config).expect("analyzable");
        for &(pick, accept) in &picks {
            let moves = neighborhood(&system, &current);
            prop_assume!(!moves.is_empty());
            let mv = moves[pick % moves.len()];
            let undo = mv.apply_undoable_seeded(&mut config, &mut seeds);

            let fresh = evaluate(&system, config.clone(), &analysis);
            let warm = delta.evaluate_delta(&config, &seeds);
            match (fresh, warm) {
                (Ok(fresh), Ok(summary)) => {
                    seeds.clear();
                    prop_assert_eq!(summary.degree, fresh.degree);
                    prop_assert_eq!(summary.total_buffers, fresh.total_buffers);
                    prop_assert_eq!(summary.converged, fresh.outcome.converged);
                    prop_assert_eq!(summary.iterations, fresh.outcome.iterations);
                    let outcome = delta.outcome();
                    prop_assert_eq!(&outcome.schedule, &fresh.outcome.schedule);
                    prop_assert_eq!(&outcome.process_timing, &fresh.outcome.process_timing);
                    prop_assert_eq!(&outcome.message_timing, &fresh.outcome.message_timing);
                    prop_assert_eq!(&outcome.queues, &fresh.outcome.queues);
                    prop_assert_eq!(&outcome.graph_response, &fresh.outcome.graph_response);
                    if accept {
                        current = fresh;
                        continue;
                    }
                }
                (Err(fresh), Err(warm)) => prop_assert_eq!(fresh, warm),
                (fresh, warm) => prop_assert!(
                    false,
                    "feasibility disagreement on {:?}: fresh {:?} vs delta {:?}", mv, fresh, warm
                ),
            }
            // Rejected or infeasible: revert in place, keeping the seeds
            // covering the distance to the evaluator's last analysis.
            undo.record_seeds(&mut seeds);
            undo.revert(&mut config);
        }
    }

    /// Re-evaluating the same configuration through the delta path (empty
    /// seed set) is a fixed point: summaries are identical call to call.
    #[test]
    fn repeated_delta_evaluation_is_stable(seed in 0u64..200) {
        let system = small_system(seed);
        let analysis = AnalysisParams::default();
        let mut config = straightforward_config(&system);
        config.priorities = hopa_priorities(&system, &config.tdma);
        let mut evaluator = Evaluator::new(&system, analysis);
        let first = evaluator.evaluate(&config).expect("analyzable");
        let seeds = DeltaSeeds::new();
        for _ in 0..3 {
            prop_assert_eq!(evaluator.evaluate_delta(&config, &seeds).expect("analyzable"), first);
        }
    }
}

/// Non-permutation priority changes (a process demoted to a *fresh* level
/// rather than swapped) perturb hp sets above the entity's new position —
/// outside the closure's priority bands — so `evaluate_delta` must detect
/// them and take the full path. Regression test for exactly that fallback.
#[test]
fn non_permutation_priority_change_falls_back_to_full() {
    let system = small_system(7);
    let analysis = AnalysisParams::default();
    let mut config = straightforward_config(&system);
    config.priorities = hopa_priorities(&system, &config.tdma);

    let mut delta = Evaluator::new(&system, analysis);
    delta.evaluate(&config).expect("analyzable");

    // Demote every prioritized ET process in turn to a fresh (unused)
    // priority level, seeding only that process — a legal use of the API
    // that is *not* a permutation of the base assignment.
    let app = &system.application;
    let mut fresh_level = 1_000_000u32;
    for p in app.processes() {
        let Some(old) = config.priorities.process(p.id()) else {
            continue;
        };
        fresh_level += 1;
        config
            .priorities
            .set_process(p.id(), mcs_model::Priority::new(fresh_level));
        let mut seeds = DeltaSeeds::new();
        seeds.push_process(p.id());

        let fresh = evaluate(&system, config.clone(), &analysis).expect("analyzable");
        let warm = delta.evaluate_delta(&config, &seeds).expect("analyzable");
        assert_eq!(
            warm.degree,
            fresh.degree,
            "δΓ drifted demoting {:?}",
            p.id()
        );
        assert_eq!(warm.total_buffers, fresh.total_buffers);
        assert_eq!(delta.outcome().process_timing, fresh.outcome.process_timing);
        assert_eq!(delta.outcome().message_timing, fresh.outcome.message_timing);
        let _ = old;
    }
}

/// Long deterministic walks over pure priority-swap sequences — the move
/// family the delta path accelerates — asserting both bit-identity and that
/// the delta fast path is actually taken (not just falling back).
#[test]
fn priority_swap_walk_stays_identical_and_hits_the_delta_path() {
    let system = small_system(42);
    let analysis = AnalysisParams::default();
    let mut config = straightforward_config(&system);
    config.priorities = hopa_priorities(&system, &config.tdma);

    let mut delta = Evaluator::new(&system, analysis);
    let mut seeds = DeltaSeeds::new();
    delta.evaluate(&config).expect("analyzable");
    let mut current = evaluate(&system, config.clone(), &analysis).expect("analyzable");

    for round in 0..40 {
        let moves: Vec<_> = neighborhood(&system, &current)
            .into_iter()
            .filter(|m| {
                matches!(
                    m,
                    mcs_opt::Move::SwapProcessPriorities(_, _)
                        | mcs_opt::Move::SwapMessagePriorities(_, _)
                )
            })
            .collect();
        assert!(!moves.is_empty(), "priority neighborhood must be nonempty");
        let mv = moves[(round * 7 + 3) % moves.len()];
        let undo = mv.apply_undoable_seeded(&mut config, &mut seeds);
        let fresh = evaluate(&system, config.clone(), &analysis).expect("analyzable");
        let warm = delta.evaluate_delta(&config, &seeds).expect("analyzable");
        seeds.clear();
        assert_eq!(warm.degree, fresh.degree, "δΓ drifted at round {round}");
        assert_eq!(warm.total_buffers, fresh.total_buffers);
        assert_eq!(warm.iterations, fresh.outcome.iterations);
        assert_eq!(delta.outcome().process_timing, fresh.outcome.process_timing);
        assert_eq!(delta.outcome().message_timing, fresh.outcome.message_timing);
        if round % 3 == 0 {
            current = fresh; // accept every third move
        } else {
            undo.record_seeds(&mut seeds);
            undo.revert(&mut config);
        }
    }
    let (delta_hits, full) = delta.delta_stats();
    assert!(
        delta_hits > 0,
        "the delta fast path was never taken ({delta_hits} delta vs {full} full)"
    );
}
