//! The reusable-context contract: a reused [`Evaluator`] must produce
//! **bit-identical** results to a fresh per-call evaluation — δΓ, `s_total`,
//! every per-entity timing, every queue bound, the schedule tables and the
//! convergence metadata — across generated systems and random move
//! sequences. This is what licenses every cache in the evaluator (schedule
//! memo, warm-started kernels, pass memos, config-derived tables): none of
//! them may leak state between configurations.

use proptest::prelude::*;

use mcs_core::{AnalysisParams, Evaluator};
use mcs_gen::{generate, GeneratorParams};
use mcs_opt::{evaluate, hopa_priorities, neighborhood, straightforward_config};

fn small_system(seed: u64) -> mcs_model::System {
    let mut p = GeneratorParams::paper_sized(2, seed);
    p.processes_per_node = 8;
    p.graphs = 4;
    p.inter_cluster_messages = Some(3);
    generate(&p)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Walk a random move sequence; after every move, the reused evaluator
    /// (carrying caches from all previous configurations) must agree with a
    /// fresh evaluation down to the last bit — including on *which* moves
    /// are infeasible.
    #[test]
    fn reused_evaluator_matches_fresh_evaluation(
        seed in 0u64..500,
        picks in proptest::collection::vec(0usize..1_000, 1..6),
    ) {
        let system = small_system(seed);
        let analysis = AnalysisParams::default();
        let mut config = straightforward_config(&system);
        config.priorities = hopa_priorities(&system, &config.tdma);

        let mut reused = Evaluator::new(&system, analysis);
        let mut current = evaluate(&system, config, &analysis).expect("analyzable");
        for &pick in &picks {
            let moves = neighborhood(&system, &current);
            prop_assume!(!moves.is_empty());
            let mv = moves[pick % moves.len()];
            let mut next = current.config.clone();
            mv.apply(&mut next);

            let fresh = evaluate(&system, next.clone(), &analysis);
            let warm = reused.evaluate(&next);
            match (fresh, warm) {
                (Ok(fresh), Ok(summary)) => {
                    prop_assert_eq!(summary.degree, fresh.degree);
                    prop_assert_eq!(summary.total_buffers, fresh.total_buffers);
                    prop_assert_eq!(summary.converged, fresh.outcome.converged);
                    prop_assert_eq!(summary.iterations, fresh.outcome.iterations);
                    let outcome = reused.outcome();
                    prop_assert_eq!(&outcome.schedule, &fresh.outcome.schedule);
                    prop_assert_eq!(&outcome.process_timing, &fresh.outcome.process_timing);
                    prop_assert_eq!(&outcome.message_timing, &fresh.outcome.message_timing);
                    prop_assert_eq!(&outcome.queues, &fresh.outcome.queues);
                    prop_assert_eq!(&outcome.graph_response, &fresh.outcome.graph_response);
                    current = fresh;
                }
                (Err(fresh), Err(warm)) => prop_assert_eq!(fresh, warm),
                (fresh, warm) => prop_assert!(
                    false,
                    "feasibility disagreement on {mv:?}: fresh {fresh:?} vs reused {warm:?}"
                ),
            }
        }
    }

    /// Re-evaluating the same configuration through all warm caches is a
    /// fixed point: summaries are identical call to call.
    #[test]
    fn repeated_evaluation_is_stable(seed in 0u64..200) {
        let system = small_system(seed);
        let analysis = AnalysisParams::default();
        let mut config = straightforward_config(&system);
        config.priorities = hopa_priorities(&system, &config.tdma);
        let mut evaluator = Evaluator::new(&system, analysis);
        let first = evaluator.evaluate(&config).expect("analyzable");
        for _ in 0..3 {
            prop_assert_eq!(evaluator.evaluate(&config).expect("analyzable"), first);
        }
    }
}
