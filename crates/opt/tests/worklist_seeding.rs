//! Worklist-seeding properties of the unified fixed-point engine: the full
//! and the delta evaluation paths are two seedings of one value-driven
//! worklist (see `mcs_core::holistic`), so they must agree bit-for-bit on
//! **multi-period** instances too — the workload class whose phase-group
//! structure the value gating actually prunes inside priority bands (the
//! single-period walks live in `delta_rta_equivalence.rs`, which this suite
//! deliberately leaves untouched).

use proptest::prelude::*;

use mcs_core::{AnalysisParams, DeltaSeeds, Evaluator};
use mcs_gen::{figure4_multirate, generate, GeneratorParams, PeriodMultipliers};
use mcs_opt::{evaluate, hopa_priorities, neighborhood, straightforward_config};

fn small_multirate_system(seed: u64) -> mcs_model::System {
    let mut p = GeneratorParams::paper_sized(2, seed);
    p.processes_per_node = 8;
    p.graphs = 6;
    p.inter_cluster_messages = Some(3);
    p.period_multipliers = PeriodMultipliers::new(&[1, 2, 4]);
    generate(&p)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random move walks with random accept/reject decisions over
    /// multi-period instances: the delta seeding must reproduce the full
    /// seeding — summary, timings, queues, schedules — after every move.
    #[test]
    fn multiperiod_delta_walk_matches_fresh_evaluation(
        seed in 0u64..300,
        picks in proptest::collection::vec((0usize..1_000, any::<bool>()), 1..7),
    ) {
        let system = small_multirate_system(seed);
        let analysis = AnalysisParams::default();
        let mut config = straightforward_config(&system);
        config.priorities = hopa_priorities(&system, &config.tdma);

        let mut delta = Evaluator::new(&system, analysis);
        let mut seeds = DeltaSeeds::new();
        let mut current = evaluate(&system, config.clone(), &analysis).expect("analyzable");
        delta.evaluate(&config).expect("analyzable");
        for &(pick, accept) in &picks {
            let moves = neighborhood(&system, &current);
            prop_assume!(!moves.is_empty());
            let mv = moves[pick % moves.len()];
            let undo = mv.apply_undoable_seeded(&mut config, &mut seeds);

            let fresh = evaluate(&system, config.clone(), &analysis);
            let warm = delta.evaluate_delta(&config, &seeds);
            match (fresh, warm) {
                (Ok(fresh), Ok(summary)) => {
                    seeds.clear();
                    prop_assert_eq!(summary.degree, fresh.degree);
                    prop_assert_eq!(summary.total_buffers, fresh.total_buffers);
                    prop_assert_eq!(summary.converged, fresh.outcome.converged);
                    prop_assert_eq!(summary.iterations, fresh.outcome.iterations);
                    let outcome = delta.outcome();
                    prop_assert_eq!(&outcome.schedule, &fresh.outcome.schedule);
                    prop_assert_eq!(&outcome.process_timing, &fresh.outcome.process_timing);
                    prop_assert_eq!(&outcome.message_timing, &fresh.outcome.message_timing);
                    prop_assert_eq!(&outcome.queues, &fresh.outcome.queues);
                    prop_assert_eq!(&outcome.graph_response, &fresh.outcome.graph_response);
                    if accept {
                        current = fresh;
                        continue;
                    }
                }
                (Err(fresh), Err(warm)) => prop_assert_eq!(fresh, warm),
                (fresh, warm) => prop_assert!(
                    false,
                    "feasibility disagreement on {:?}: fresh {:?} vs delta {:?}", mv, fresh, warm
                ),
            }
            undo.record_seeds(&mut seeds);
            undo.revert(&mut config);
        }
    }

    /// Re-running the engine on an unchanged configuration is a fixed point
    /// for both seedings: the full path reproduces itself and the delta
    /// path (empty seeds) reproduces the full path, on multi-period
    /// instances.
    #[test]
    fn multiperiod_reevaluation_is_stable(seed in 0u64..150) {
        let system = small_multirate_system(seed);
        let analysis = AnalysisParams::default();
        let mut config = straightforward_config(&system);
        config.priorities = hopa_priorities(&system, &config.tdma);
        let mut evaluator = Evaluator::new(&system, analysis);
        let first = evaluator.evaluate(&config).expect("analyzable");
        prop_assert_eq!(evaluator.evaluate(&config).expect("analyzable"), first);
        let seeds = DeltaSeeds::new();
        for _ in 0..3 {
            prop_assert_eq!(evaluator.evaluate_delta(&config, &seeds).expect("analyzable"), first);
        }
    }
}

/// Deterministic priority-swap walk on a multi-period instance, asserting
/// bit-identity *and* that the delta seeding actually takes the worklist
/// fast path (rather than falling back to the full seeding every move).
#[test]
fn multiperiod_priority_swaps_hit_the_delta_seeding() {
    let system = small_multirate_system(42);
    let analysis = AnalysisParams::default();
    let mut config = straightforward_config(&system);
    config.priorities = hopa_priorities(&system, &config.tdma);

    let mut delta = Evaluator::new(&system, analysis);
    let mut seeds = DeltaSeeds::new();
    delta.evaluate(&config).expect("analyzable");
    let mut current = evaluate(&system, config.clone(), &analysis).expect("analyzable");

    for round in 0..30 {
        let moves: Vec<_> = neighborhood(&system, &current)
            .into_iter()
            .filter(|m| {
                matches!(
                    m,
                    mcs_opt::Move::SwapProcessPriorities(_, _)
                        | mcs_opt::Move::SwapMessagePriorities(_, _)
                )
            })
            .collect();
        assert!(!moves.is_empty(), "priority neighborhood must be nonempty");
        let mv = moves[(round * 7 + 3) % moves.len()];
        let undo = mv.apply_undoable_seeded(&mut config, &mut seeds);
        let fresh = evaluate(&system, config.clone(), &analysis).expect("analyzable");
        let warm = delta.evaluate_delta(&config, &seeds).expect("analyzable");
        seeds.clear();
        assert_eq!(warm.degree, fresh.degree, "δΓ drifted at round {round}");
        assert_eq!(warm.total_buffers, fresh.total_buffers);
        assert_eq!(warm.iterations, fresh.outcome.iterations);
        assert_eq!(delta.outcome().process_timing, fresh.outcome.process_timing);
        assert_eq!(delta.outcome().message_timing, fresh.outcome.message_timing);
        if round % 3 == 0 {
            current = fresh;
        } else {
            undo.record_seeds(&mut seeds);
            undo.revert(&mut config);
        }
    }
    let (delta_hits, full) = delta.delta_stats();
    assert!(
        delta_hits > 0,
        "the delta seeding was never taken ({delta_hits} delta vs {full} full)"
    );
}

/// The hand-built multi-rate Figure 4 scenario: the worklist engine agrees
/// with the one-shot analysis on every configuration, and a priority-swap
/// delta between them stays bit-identical.
#[test]
fn figure4_multirate_full_and_delta_agree() {
    let fig = figure4_multirate(mcs_model::Time::from_millis(200));
    let analysis = AnalysisParams::default();
    let mut evaluator = Evaluator::new(&fig.system, analysis);
    for config in [&fig.config_a, &fig.config_b, &fig.config_c] {
        let summary = evaluator.evaluate(config).expect("analyzable");
        let oneshot =
            mcs_core::multi_cluster_scheduling(&fig.system, config, &analysis).expect("analyzable");
        assert_eq!(summary.converged, oneshot.converged);
        assert_eq!(evaluator.outcome().process_timing, oneshot.process_timing);
        assert_eq!(evaluator.outcome().message_timing, oneshot.message_timing);
        assert_eq!(evaluator.outcome().queues, oneshot.queues);
    }
    // (a) → (c) is the worked P2/P3 priority swap: drive it as a delta.
    evaluator.evaluate(&fig.config_a).expect("analyzable");
    let mut seeds = DeltaSeeds::new();
    seeds.push_process(mcs_gen::figure4_ids::P2);
    seeds.push_process(mcs_gen::figure4_ids::P3);
    let warm = evaluator
        .evaluate_delta(&fig.config_c, &seeds)
        .expect("analyzable");
    let fresh = evaluate(&fig.system, fig.config_c.clone(), &analysis).expect("analyzable");
    assert_eq!(warm.degree, fresh.degree);
    assert_eq!(warm.total_buffers, fresh.total_buffers);
    assert_eq!(
        evaluator.outcome().process_timing,
        fresh.outcome.process_timing
    );
    assert_eq!(
        evaluator.outcome().message_timing,
        fresh.outcome.message_timing
    );
}
