//! `mcs::serve` — the resilient streaming synthesis service.
//!
//! [`ExperimentRunner`](crate::ExperimentRunner) serves a *static* batch:
//! every job is known up front, the pool drains it, the program ends. This
//! module is the always-on evolution of that shape — the serving-robustness
//! layer an inference stack needs: admission control, deadlines, isolation
//! and resume. A [`SynthesisService`] owns a fixed worker pool fed from a
//! bounded priority queue; jobs are submitted while earlier ones run, and
//! every job ends in a structured [`JobRecord`] streamed back to the
//! consumer (with a stable JSON-lines rendering via
//! [`mcs_core::json_line`]).
//!
//! # Contracts
//!
//! **Admission control (bounded queue).** The submission queue holds at
//! most [`ServiceConfig::queue_capacity`] jobs. [`SynthesisService::try_submit`]
//! never blocks — a full queue returns [`SubmitError::QueueFull`] with the
//! job handed back; [`SynthesisService::submit`] blocks until space frees
//! up or a timeout expires. Backpressure therefore reaches the producer
//! instead of growing an unbounded backlog.
//!
//! **Priorities and preemption.** Queued jobs are served
//! highest-[`JobSpec::priority`] first (FIFO within a priority). When
//! preemption is enabled (the default) and a job is submitted while every
//! worker is busy, the lowest-priority *running* job with a priority
//! strictly below the newcomer's is cooperatively cancelled through its
//! [`CancelToken`] — it winds down at its next budget poll and yields a
//! [`JobOutcome::Cancelled`] record (cause
//! [`CancelCause::Preempted`]) carrying its partial report, from which the
//! client can [resume](JobSpec::resume_from).
//!
//! **Deadlines.** A [`JobSpec::deadline`] overlays a wall-clock axis onto
//! the job's [`Budget`] (per attempt, measured from execution start — queue
//! wait does not count). A run past its deadline winds down cooperatively
//! and records [`JobOutcome::TimedOut`] with the partial report. Like the
//! budget itself, deadlines are cooperative: a strategy that never polls
//! [`SearchCtx::exhausted`](crate::SearchCtx::exhausted) cannot be stopped.
//!
//! **Panic isolation.** Each attempt runs under
//! [`std::panic::catch_unwind`]; a panicking strategy produces a
//! [`JobOutcome::Panicked`] record instead of tearing down the worker or
//! the pool. Every attempt constructs a fresh
//! [`Evaluator`](mcs_core::Evaluator), so a panic cannot leak poisoned
//! analysis state into later jobs.
//!
//! **Retry with backoff.** Panicked attempts are retried up to
//! [`RetryPolicy::max_retries`] times with exponential backoff
//! (analysis *errors* are deterministic and never retried; timeouts and
//! cancellations are resumable instead). [`JobRecord::attempts`] reports
//! the attempts consumed.
//!
//! **Resumable jobs.** A preempted or timed-out job's partial
//! [`SynthesisReport`] re-seeds a continuation via
//! [`JobSpec::resume_from`], which drives
//! [`Synthesis::resume_from`] — the continuation deterministically replays
//! the interrupted prefix (verifying it against the checkpoint trajectory)
//! and produces a report bit-identical to a never-interrupted run,
//! regardless of where the cut fell.
//!
//! **Streaming and drain.** Records are streamed in completion order
//! through [`SynthesisService::next_record`] (each carries its [`JobId`]
//! for client-side reordering). [`SynthesisService::drain`] waits for the
//! backlog to empty; [`SynthesisService::shutdown`] additionally stops
//! admission and joins the workers (graceful: queued jobs still run);
//! [`SynthesisService::shutdown_now`] cancels queued and running jobs
//! first. Dropping the service performs a graceful shutdown.
//!
//! # Example
//!
//! ```no_run
//! use std::sync::Arc;
//! use std::time::Duration;
//!
//! use mcs_core::AnalysisParams;
//! use mcs_gen::{generate, GeneratorParams};
//! use mcs_opt::serve::{JobSpec, ServiceConfig, SynthesisService};
//! use mcs_opt::{Budget, Sa, SaParams};
//!
//! let service = SynthesisService::start(ServiceConfig::default());
//! let system = Arc::new(generate(&GeneratorParams::paper_sized(2, 7)));
//! let id = service
//!     .try_submit(
//!         JobSpec::new("nodes=2,seed=7", system, AnalysisParams::default(),
//!                      Sa::schedule(SaParams::default()))
//!             .budget(Budget::evals(100_000))
//!             .deadline(Duration::from_secs(5))
//!             .priority(1),
//!     )
//!     .expect("queue has room");
//! for record in service.shutdown() {
//!     println!("{}", record.json_line());
//! }
//! # let _ = id;
//! ```

use std::any::Any;
use std::collections::{BinaryHeap, HashMap};
use std::panic::{self, AssertUnwindSafe};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread;
use std::time::{Duration, Instant};

use mcs_core::AnalysisParams;
use mcs_model::System;

use crate::synthesis::{
    Budget, BudgetAxis, CancelToken, Strategy, Synthesis, SynthesisError, SynthesisReport,
};

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Bounded retry for retryable (panicked) job outcomes.
///
/// Attempt `k` (1-based) that panics is retried after
/// `backoff × 2^(k−1)` (capped at 8× the base) while `k ≤ max_retries`.
/// The default policy performs no retries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Additional attempts after the first (0 = no retry).
    pub max_retries: u32,
    /// Base backoff before the first retry; doubles per retry.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 0,
            backoff: Duration::from_millis(25),
        }
    }
}

impl RetryPolicy {
    /// The backoff to sleep before retrying after failed attempt
    /// `attempt` (1-based): exponential, capped at 8× the base.
    pub fn backoff_for(&self, attempt: u32) -> Duration {
        let factor = 1u32 << attempt.saturating_sub(1).min(3);
        self.backoff * factor
    }
}

/// Configuration of a [`SynthesisService`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Worker threads in the pool. Default: `RAYON_NUM_THREADS` if set
    /// (the knob the batch sweeps already document), else
    /// [`std::thread::available_parallelism`].
    pub workers: usize,
    /// Maximum queued (not yet running) jobs; submissions beyond it hit
    /// backpressure. Default 64.
    pub queue_capacity: usize,
    /// Service-wide retry policy; [`JobSpec::retry`] overrides per job.
    pub retry: RetryPolicy,
    /// Whether submitting a high-priority job may preempt a running
    /// lower-priority one (default `true`).
    pub preemption: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        let workers = std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        ServiceConfig {
            workers,
            queue_capacity: 64,
            retry: RetryPolicy::default(),
            preemption: true,
        }
    }
}

// ---------------------------------------------------------------------------
// Jobs
// ---------------------------------------------------------------------------

/// Identifier of a submitted job, assigned in submission order — sorting
/// records by id reproduces submission order from the completion stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// One unit of work for the service: a system, a strategy and the job's
/// serving envelope (budget, deadline, priority, retry, resume seed).
pub struct JobSpec {
    name: String,
    strategy_label: String,
    system: Arc<System>,
    analysis: AnalysisParams,
    strategy: Box<dyn Strategy>,
    budget: Budget,
    deadline: Option<Duration>,
    priority: u8,
    resume: Option<SynthesisReport>,
    retry: Option<RetryPolicy>,
    tag: u64,
}

impl std::fmt::Debug for JobSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobSpec").finish_non_exhaustive()
    }
}

impl JobSpec {
    /// Creates a job with default envelope: unlimited budget, no deadline,
    /// priority 0, service retry policy, fresh (non-resumed) search.
    pub fn new(
        name: impl Into<String>,
        system: Arc<System>,
        analysis: AnalysisParams,
        strategy: impl Strategy + 'static,
    ) -> Self {
        JobSpec {
            name: name.into(),
            strategy_label: strategy.name().to_string(),
            system,
            analysis,
            strategy: Box::new(strategy),
            budget: Budget::UNLIMITED,
            deadline: None,
            priority: 0,
            resume: None,
            retry: None,
            tag: 0,
        }
    }

    /// Overrides the strategy label carried into the record.
    pub fn labelled(mut self, label: impl Into<String>) -> Self {
        self.strategy_label = label.into();
        self
    }

    /// Sets the job's [`Budget`] (evaluation and/or wall-clock axes).
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Caps wall-clock time per attempt (measured from execution start;
    /// queue wait does not count). Tightens any wall-clock axis the budget
    /// already carries.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the job's priority (higher runs first; default 0). May preempt
    /// running lower-priority jobs — see the [module docs](self).
    pub fn priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Seeds the job as a continuation of an interrupted run (the partial
    /// report of a preempted/timed-out job). The strategy and analysis
    /// parameters must match the interrupted run; see
    /// [`Synthesis::resume_from`] for the bit-identity contract.
    pub fn resume_from(mut self, checkpoint: SynthesisReport) -> Self {
        self.resume = Some(checkpoint);
        self
    }

    /// Overrides the service-wide [`RetryPolicy`] for this job.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// Attaches an opaque correlation tag, carried verbatim into the
    /// [`JobRecord`] (and its JSON line when non-zero). Campaign drivers
    /// use it to pair records with their cells without parsing names.
    pub fn tag(mut self, tag: u64) -> Self {
        self.tag = tag;
        self
    }

    /// The job's name (instance label).
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// Why a running job was cancelled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CancelCause {
    /// A higher-priority submission preempted it.
    Preempted,
    /// The service was shut down ([`SynthesisService::shutdown_now`]).
    Shutdown,
    /// [`SynthesisService::cancel`] was called on it.
    Explicit,
}

impl CancelCause {
    /// A stable lower-case name for machine-readable records.
    pub fn as_str(&self) -> &'static str {
        match self {
            CancelCause::Preempted => "preempted",
            CancelCause::Shutdown => "shutdown",
            CancelCause::Explicit => "explicit",
        }
    }
}

/// How one job ended. Partial reports (preempted/timed-out runs that had
/// already recorded an incumbent) re-seed continuations via
/// [`JobSpec::resume_from`].
#[derive(Debug)]
pub enum JobOutcome {
    /// The strategy finished (naturally or by exhausting its evaluation
    /// budget — the report's `exhausted`/`exhausted_by` distinguish).
    Completed(Box<SynthesisReport>),
    /// The run failed with a structured error (unanalyzable start, no
    /// incumbent before exhaustion, resume divergence).
    Failed(SynthesisError),
    /// The wall-clock deadline passed before the strategy finished;
    /// `partial` carries whatever incumbent the run had recorded.
    TimedOut {
        /// The partial report, `None` if no incumbent was recorded yet.
        partial: Option<Box<SynthesisReport>>,
    },
    /// The job was cancelled (preemption, explicit cancel or shutdown).
    Cancelled {
        /// The partial report, `None` if the job never ran or had no
        /// incumbent yet.
        partial: Option<Box<SynthesisReport>>,
        /// Why it was cancelled.
        cause: CancelCause,
    },
    /// Every attempt panicked; the message is the last panic payload.
    Panicked {
        /// The panic message (payload rendered to a string).
        message: String,
    },
}

impl JobOutcome {
    /// A stable lower-case outcome name (`"completed"`, `"failed"`,
    /// `"timed_out"`, `"cancelled"`, `"panicked"`).
    pub fn kind(&self) -> &'static str {
        match self {
            JobOutcome::Completed(_) => "completed",
            JobOutcome::Failed(_) => "failed",
            JobOutcome::TimedOut { .. } => "timed_out",
            JobOutcome::Cancelled { .. } => "cancelled",
            JobOutcome::Panicked { .. } => "panicked",
        }
    }

    /// The full or partial report, if any exists.
    pub fn report(&self) -> Option<&SynthesisReport> {
        match self {
            JobOutcome::Completed(report) => Some(report),
            JobOutcome::TimedOut { partial } | JobOutcome::Cancelled { partial, .. } => {
                partial.as_deref()
            }
            JobOutcome::Failed(_) | JobOutcome::Panicked { .. } => None,
        }
    }

    /// Converts the outcome into the `Result` shape a direct
    /// [`Synthesis::run`] would have produced: complete and partial
    /// reports are `Ok` (their `exhausted_by` axis tells truncation
    /// apart), panics become [`SynthesisError::Panicked`], and truncated
    /// runs without an incumbent map to [`SynthesisError::NoIncumbent`].
    pub fn into_report(self) -> Result<SynthesisReport, SynthesisError> {
        match self {
            JobOutcome::Completed(report) => Ok(*report),
            JobOutcome::TimedOut {
                partial: Some(report),
            }
            | JobOutcome::Cancelled {
                partial: Some(report),
                ..
            } => Ok(*report),
            JobOutcome::TimedOut { partial: None }
            | JobOutcome::Cancelled { partial: None, .. } => Err(SynthesisError::NoIncumbent),
            JobOutcome::Failed(e) => Err(e),
            JobOutcome::Panicked { message } => Err(SynthesisError::Panicked(message)),
        }
    }
}

/// The structured record of one finished job, streamed to the consumer.
#[derive(Debug)]
pub struct JobRecord {
    /// The job's id (submission order).
    pub id: JobId,
    /// The job's name (instance label).
    pub name: String,
    /// The job's strategy label.
    pub strategy: String,
    /// The job's priority.
    pub priority: u8,
    /// Execution attempts consumed (0 for a job cancelled while queued).
    pub attempts: u32,
    /// Wall-clock from first execution start to the final outcome, in
    /// microseconds (0 for a job cancelled while queued).
    pub elapsed_micros: u64,
    /// The correlation tag from [`JobSpec::tag`] (0 when unset).
    pub tag: u64,
    /// How the job ended.
    pub outcome: JobOutcome,
}

impl JobRecord {
    /// Renders the record as one stable JSON line (see
    /// [`mcs_core::json_line`]): `job`, `name`, `strategy`, `priority`,
    /// `attempts`, `outcome`, `ok`, then the report fields
    /// (`schedulable`, `schedule_cost`, `total_buffers`, `evaluations`,
    /// `exhausted`, `exhausted_by`) when a full or partial report exists,
    /// `cause` for cancellations, `error` for failures/panics, and
    /// `elapsed_micros`.
    pub fn json_line(&self) -> String {
        use mcs_core::JsonField as F;
        let error = match &self.outcome {
            JobOutcome::Failed(e) => Some(e.to_string()),
            JobOutcome::Panicked { message } => Some(message.clone()),
            _ => None,
        };
        let mut fields = vec![
            ("job", F::UInt(self.id.0)),
            ("name", F::Str(&self.name)),
            ("strategy", F::Str(&self.strategy)),
            ("priority", F::UInt(u64::from(self.priority))),
            ("attempts", F::UInt(u64::from(self.attempts))),
            ("outcome", F::Str(self.outcome.kind())),
            (
                "ok",
                F::Bool(matches!(self.outcome, JobOutcome::Completed(_))),
            ),
        ];
        if let Some(report) = self.outcome.report() {
            fields.push(("schedulable", F::Bool(report.best.is_schedulable())));
            fields.push(("schedule_cost", F::Int(report.best.schedule_cost())));
            fields.push(("total_buffers", F::UInt(report.best.total_buffers)));
            fields.push(("evaluations", F::UInt(report.evaluations)));
            fields.push(("exhausted", F::Bool(report.exhausted)));
            if let Some(axis) = report.exhausted_by {
                fields.push(("exhausted_by", F::Str(axis.as_str())));
            }
        }
        if let JobOutcome::Cancelled { cause, .. } = &self.outcome {
            fields.push(("cause", F::Str(cause.as_str())));
        }
        if let Some(error) = &error {
            fields.push(("error", F::Str(error)));
        }
        if self.tag != 0 {
            fields.push(("tag", F::UInt(self.tag)));
        }
        fields.push(("elapsed_micros", F::UInt(self.elapsed_micros)));
        mcs_core::json_line(&fields)
    }
}

// ---------------------------------------------------------------------------
// Submission errors
// ---------------------------------------------------------------------------

/// Why a submission was rejected; every variant hands the job back (boxed —
/// a spec is a heavyweight bundle) so the producer can retry, reroute or
/// drop it.
pub enum SubmitError {
    /// The bounded queue is full ([`SynthesisService::try_submit`]).
    QueueFull(Box<JobSpec>),
    /// The queue stayed full for the whole timeout
    /// ([`SynthesisService::submit`]).
    Timeout(Box<JobSpec>),
    /// The service no longer accepts jobs (shutdown in progress).
    ShuttingDown(Box<JobSpec>),
}

impl SubmitError {
    /// Takes the rejected job back.
    pub fn into_job(self) -> JobSpec {
        match self {
            SubmitError::QueueFull(job)
            | SubmitError::Timeout(job)
            | SubmitError::ShuttingDown(job) => *job,
        }
    }

    fn describe(&self) -> (&'static str, &JobSpec) {
        match self {
            SubmitError::QueueFull(job) => ("queue full", job),
            SubmitError::Timeout(job) => ("submission timed out", job),
            SubmitError::ShuttingDown(job) => ("service is shutting down", job),
        }
    }
}

impl std::fmt::Debug for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (reason, job) = self.describe();
        write!(f, "SubmitError({reason}, job {:?})", job.name)
    }
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (reason, job) = self.describe();
        write!(f, "could not submit job {:?}: {reason}", job.name)
    }
}

impl std::error::Error for SubmitError {}

// ---------------------------------------------------------------------------
// Shared service state
// ---------------------------------------------------------------------------

/// A queued job, ordered highest-priority first, FIFO within a priority.
struct QueuedJob {
    id: JobId,
    spec: JobSpec,
}

impl PartialEq for QueuedJob {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}
impl Eq for QueuedJob {}
impl PartialOrd for QueuedJob {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedJob {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.spec.priority, std::cmp::Reverse(self.id))
            .cmp(&(other.spec.priority, std::cmp::Reverse(other.id)))
    }
}

/// What the submit path needs to know about a running job to preempt or
/// cancel it.
struct RunningEntry {
    id: JobId,
    priority: u8,
    token: CancelToken,
    cancel_cause: Option<CancelCause>,
}

struct State {
    queue: BinaryHeap<QueuedJob>,
    next_id: u64,
    accepting: bool,
    shutdown: bool,
    /// Per-worker slot of the currently running job.
    running: Vec<Option<RunningEntry>>,
    /// Workers currently parked on the `not_empty` condvar.
    idle_workers: usize,
    /// Jobs submitted but not yet recorded (queued + running).
    outstanding: usize,
    /// Queued jobs cancelled before a worker picked them up.
    cancelled_queued: HashMap<JobId, CancelCause>,
}

struct Shared {
    state: Mutex<State>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    retry: RetryPolicy,
    preemption: bool,
}

impl Shared {
    /// Locks the state, recovering from poisoning: workers isolate panics
    /// with `catch_unwind` and only hold the lock for plain bookkeeping,
    /// so a poisoned mutex carries no torn invariants worth dying for.
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

// ---------------------------------------------------------------------------
// The service
// ---------------------------------------------------------------------------

/// The always-on streaming synthesis service. See the [module docs](self)
/// for the full contract map.
pub struct SynthesisService {
    shared: Arc<Shared>,
    records: Mutex<Receiver<JobRecord>>,
    /// The service's own sender (used to emit records for jobs cancelled
    /// while queued); dropped on shutdown to disconnect the stream.
    tx: Option<Sender<JobRecord>>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl std::fmt::Debug for SynthesisService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SynthesisService").finish_non_exhaustive()
    }
}

impl SynthesisService {
    /// Starts the worker pool and returns the service handle.
    pub fn start(config: ServiceConfig) -> Self {
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: BinaryHeap::new(),
                next_id: 0,
                accepting: true,
                shutdown: false,
                running: (0..workers).map(|_| None).collect(),
                idle_workers: 0,
                outstanding: 0,
                cancelled_queued: HashMap::new(),
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: config.queue_capacity.max(1),
            retry: config.retry,
            preemption: config.preemption,
        });
        let (tx, rx) = mpsc::channel();
        let handles = (0..workers)
            .map(|slot| {
                let shared = Arc::clone(&shared);
                let tx = tx.clone();
                thread::Builder::new()
                    .name(format!("mcs-serve-{slot}"))
                    .spawn(move || worker_loop(&shared, &tx, slot))
                    .expect("spawning a service worker thread")
            })
            .collect();
        SynthesisService {
            shared,
            records: Mutex::new(rx),
            tx: Some(tx),
            workers: handles,
        }
    }

    /// Submits a job without blocking.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] when the bounded queue is at capacity,
    /// [`SubmitError::ShuttingDown`] after shutdown began; both hand the
    /// job back.
    pub fn try_submit(&self, job: JobSpec) -> Result<JobId, SubmitError> {
        let mut st = self.shared.lock();
        if !st.accepting {
            return Err(SubmitError::ShuttingDown(Box::new(job)));
        }
        if st.queue.len() >= self.shared.capacity {
            return Err(SubmitError::QueueFull(Box::new(job)));
        }
        Ok(self.enqueue_locked(&mut st, job))
    }

    /// Submits a job, blocking up to `timeout` for queue space
    /// (backpressure).
    ///
    /// # Errors
    ///
    /// [`SubmitError::Timeout`] when the queue stayed full for the whole
    /// timeout, [`SubmitError::ShuttingDown`] after shutdown began; both
    /// hand the job back.
    pub fn submit(&self, job: JobSpec, timeout: Duration) -> Result<JobId, SubmitError> {
        let deadline = Instant::now() + timeout;
        let mut st = self.shared.lock();
        loop {
            if !st.accepting {
                return Err(SubmitError::ShuttingDown(Box::new(job)));
            }
            if st.queue.len() < self.shared.capacity {
                return Ok(self.enqueue_locked(&mut st, job));
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(SubmitError::Timeout(Box::new(job)));
            }
            let (guard, _) = self
                .shared
                .not_full
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            st = guard;
        }
    }

    fn enqueue_locked(&self, st: &mut State, job: JobSpec) -> JobId {
        let id = JobId(st.next_id);
        st.next_id += 1;
        st.outstanding += 1;
        let priority = job.priority;
        st.queue.push(QueuedJob { id, spec: job });
        self.shared.not_empty.notify_one();
        if self.shared.preemption && st.idle_workers == 0 {
            // Every worker is busy: bump the weakest running job below the
            // newcomer's priority (best effort — a worker between jobs is
            // counted busy for a moment).
            if let Some(entry) = st
                .running
                .iter_mut()
                .flatten()
                .filter(|e| e.cancel_cause.is_none() && e.priority < priority)
                .min_by_key(|e| (e.priority, std::cmp::Reverse(e.id)))
            {
                entry.cancel_cause = Some(CancelCause::Preempted);
                entry.token.cancel();
            }
        }
        id
    }

    /// Cancels a queued or running job. Queued jobs yield a
    /// [`JobOutcome::Cancelled`] record without running; running jobs wind
    /// down cooperatively. Returns `false` when the id is unknown or
    /// already finished.
    pub fn cancel(&self, id: JobId) -> bool {
        let mut st = self.shared.lock();
        if let Some(entry) = st.running.iter_mut().flatten().find(|entry| entry.id == id) {
            if entry.cancel_cause.is_none() {
                entry.cancel_cause = Some(CancelCause::Explicit);
            }
            entry.token.cancel();
            return true;
        }
        if st.queue.iter().any(|queued| queued.id == id) {
            st.cancelled_queued.insert(id, CancelCause::Explicit);
            return true;
        }
        false
    }

    /// Jobs waiting in the queue.
    pub fn pending(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// Jobs currently executing.
    pub fn running(&self) -> usize {
        self.shared.lock().running.iter().flatten().count()
    }

    /// Jobs submitted but not yet recorded (queued + running).
    pub fn outstanding(&self) -> usize {
        self.shared.lock().outstanding
    }

    /// Receives the next finished job's record, waiting up to `timeout`.
    /// Records arrive in completion order; sort by [`JobRecord::id`] to
    /// recover submission order.
    pub fn next_record(&self, timeout: Duration) -> Option<JobRecord> {
        self.records
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .recv_timeout(timeout)
            .ok()
    }

    /// Waits until every submitted job has finished and returns all
    /// records not yet consumed through [`next_record`](Self::next_record).
    /// The service keeps accepting submissions (including while draining).
    pub fn drain(&self) -> Vec<JobRecord> {
        let rx = self
            .records
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let mut records = Vec::new();
        loop {
            if self.shared.lock().outstanding == 0 {
                break;
            }
            match rx.recv_timeout(Duration::from_millis(20)) {
                Ok(record) => records.push(record),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        // Workers enqueue a job's record *before* marking it done, so once
        // outstanding hits zero the channel holds every remaining record.
        while let Ok(record) = rx.try_recv() {
            records.push(record);
        }
        records
    }

    /// Graceful shutdown: stops admission, lets the workers finish every
    /// queued job, joins them and returns all unconsumed records.
    pub fn shutdown(mut self) -> Vec<JobRecord> {
        self.shutdown_inner(false)
    }

    /// Immediate shutdown: stops admission, cancels queued jobs (they
    /// record [`JobOutcome::Cancelled`] with [`CancelCause::Shutdown`]
    /// without running) and cooperatively cancels running jobs, then joins
    /// the workers and returns all unconsumed records.
    pub fn shutdown_now(mut self) -> Vec<JobRecord> {
        self.shutdown_inner(true)
    }

    fn shutdown_inner(&mut self, now: bool) -> Vec<JobRecord> {
        let dropped = {
            let mut st = self.shared.lock();
            st.accepting = false;
            st.shutdown = true;
            if now {
                let dropped: Vec<QueuedJob> = std::mem::take(&mut st.queue).into_sorted_vec();
                st.outstanding -= dropped.len();
                for entry in st.running.iter_mut().flatten() {
                    if entry.cancel_cause.is_none() {
                        entry.cancel_cause = Some(CancelCause::Shutdown);
                    }
                    entry.token.cancel();
                }
                dropped
            } else {
                Vec::new()
            }
        };
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
        if let Some(tx) = &self.tx {
            for queued in dropped {
                let _ = tx.send(JobRecord {
                    id: queued.id,
                    name: queued.spec.name,
                    strategy: queued.spec.strategy_label,
                    priority: queued.spec.priority,
                    attempts: 0,
                    elapsed_micros: 0,
                    tag: queued.spec.tag,
                    outcome: JobOutcome::Cancelled {
                        partial: None,
                        cause: CancelCause::Shutdown,
                    },
                });
            }
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        self.tx = None;
        let rx = self
            .records
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        rx.try_iter().collect()
    }
}

impl Drop for SynthesisService {
    /// Graceful shutdown (queued jobs still run); records not yet consumed
    /// are discarded. Call [`shutdown`](Self::shutdown) to keep them.
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            let _ = self.shutdown_inner(false);
        }
    }
}

// ---------------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------------

fn worker_loop(shared: &Shared, tx: &Sender<JobRecord>, slot: usize) {
    loop {
        let queued = {
            let mut st = shared.lock();
            loop {
                if let Some(queued) = st.queue.pop() {
                    break Some(queued);
                }
                if st.shutdown {
                    break None;
                }
                st.idle_workers += 1;
                st = shared
                    .not_empty
                    .wait(st)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                st.idle_workers -= 1;
            }
        };
        let Some(queued) = queued else {
            return;
        };
        shared.not_full.notify_one();
        let cancelled = shared.lock().cancelled_queued.remove(&queued.id);
        let record = match cancelled {
            Some(cause) => JobRecord {
                id: queued.id,
                name: queued.spec.name,
                strategy: queued.spec.strategy_label,
                priority: queued.spec.priority,
                attempts: 0,
                elapsed_micros: 0,
                tag: queued.spec.tag,
                outcome: JobOutcome::Cancelled {
                    partial: None,
                    cause,
                },
            },
            None => execute_job(shared, slot, queued),
        };
        // Record first, then retire: `drain` relies on every record being
        // in the channel by the time `outstanding` reaches zero.
        let _ = tx.send(record);
        shared.lock().outstanding -= 1;
    }
}

fn execute_job(shared: &Shared, slot: usize, queued: QueuedJob) -> JobRecord {
    let QueuedJob { id, mut spec } = queued;
    let retry = spec.retry.unwrap_or(shared.retry);
    let started = Instant::now();
    let mut attempts = 0u32;
    let outcome = loop {
        attempts += 1;
        let token = CancelToken::new();
        {
            let mut st = shared.lock();
            st.running[slot] = Some(RunningEntry {
                id,
                priority: spec.priority,
                token: token.clone(),
                cancel_cause: None,
            });
        }
        let budget = match spec.deadline {
            Some(deadline) => spec.budget.with_wall_clock(deadline),
            None => spec.budget,
        };
        let attempt_started = Instant::now();
        // Strategies keep their mutable search state local to `run`, and
        // every attempt builds a fresh `Evaluator`, so resuming the loop
        // after a caught panic observes no torn state.
        let run = panic::catch_unwind(AssertUnwindSafe(|| {
            let mut builder = Synthesis::builder(&spec.system)
                .analysis(spec.analysis)
                .budget(budget)
                .cancel(token.clone());
            if let Some(checkpoint) = &spec.resume {
                builder = builder.resume_from(checkpoint);
            }
            builder.strategy(&mut spec.strategy).run()
        }));
        let cancel_cause = {
            let mut st = shared.lock();
            st.running[slot].take().and_then(|entry| entry.cancel_cause)
        };
        match run {
            Err(payload) => {
                let message = panic_message(payload.as_ref());
                if attempts <= retry.max_retries {
                    thread::sleep(retry.backoff_for(attempts));
                    continue;
                }
                break JobOutcome::Panicked { message };
            }
            Ok(Ok(report)) => {
                break match report.exhausted_by {
                    Some(BudgetAxis::WallClock) => JobOutcome::TimedOut {
                        partial: Some(Box::new(report)),
                    },
                    Some(BudgetAxis::Cancelled) => JobOutcome::Cancelled {
                        partial: Some(Box::new(report)),
                        cause: cancel_cause.unwrap_or(CancelCause::Explicit),
                    },
                    // Evaluation-budget exhaustion is a normal completion;
                    // the report itself says `exhausted`.
                    Some(BudgetAxis::Evaluations) | None => JobOutcome::Completed(Box::new(report)),
                };
            }
            Ok(Err(e)) => {
                if token.is_cancelled() || cancel_cause.is_some() {
                    break JobOutcome::Cancelled {
                        partial: None,
                        cause: cancel_cause.unwrap_or(CancelCause::Explicit),
                    };
                }
                let deadline_passed = budget
                    .max_duration()
                    .is_some_and(|d| attempt_started.elapsed() >= d);
                if deadline_passed && matches!(e, SynthesisError::NoIncumbent) {
                    break JobOutcome::TimedOut { partial: None };
                }
                break JobOutcome::Failed(e);
            }
        }
    };
    JobRecord {
        id,
        name: spec.name,
        strategy: spec.strategy_label,
        priority: spec.priority,
        attempts,
        elapsed_micros: started.elapsed().as_micros() as u64,
        tag: spec.tag,
        outcome,
    }
}

fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(message) = payload.downcast_ref::<&str>() {
        (*message).to_string()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
