//! `OptimizeResources` (OR) — the buffer-minimization hill climber of paper
//! Figure 7.
//!
//! Step 1 runs [`optimize_schedule`](crate::optimize_schedule) to obtain a
//! schedulable system and a pool of seed solutions. Step 2 hill-climbs from
//! every seed over the move set of [`crate::neighborhood`], at each
//! iteration performing the move that minimizes `s_total` without making
//! the system unschedulable, until no improvement remains or the iteration
//! limit is hit.
//!
//! Neighbors are explored with apply/undo semantics against one working
//! configuration and evaluated through a reused
//! [`Evaluator`] — no `SystemConfig` clone and no outcome materialization
//! per candidate.

use mcs_core::{AnalysisParams, DeltaSeeds, EvalSummary, Evaluator};
use mcs_model::{System, SystemConfig};

use crate::cost::{materialize, Evaluation};
use crate::moves::neighborhood;
use crate::os::{optimize_schedule, OsParams, OsResult};

/// Tuning of the OR hill climber.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OrParams {
    /// OS settings used for step 1 (seed generation).
    pub os: OsParams,
    /// Iteration limit per seed.
    pub max_iterations: u32,
    /// Cap on neighbors evaluated per iteration (evenly sampled when the
    /// neighborhood is larger).
    pub neighbor_sample: usize,
}

impl Default for OrParams {
    fn default() -> Self {
        OrParams {
            os: OsParams::default(),
            max_iterations: 12,
            neighbor_sample: 64,
        }
    }
}

/// The result of `OptimizeResources`.
#[derive(Clone, Debug)]
pub struct OrResult {
    /// The best (schedulable, minimal `s_total`) configuration found.
    pub best: Evaluation,
    /// The step-1 result the climb started from.
    pub os: OsResult,
    /// Number of `MultiClusterScheduling` evaluations performed in step 2.
    pub evaluations: u32,
}

/// Runs `OptimizeResources`.
///
/// If step 1 fails to find any schedulable configuration (the paper would
/// go back and modify the mapping/architecture, which is outside ψ), the
/// OS result is returned unchanged — callers can detect this through
/// [`Evaluation::is_schedulable`].
pub fn optimize_resources(
    system: &System,
    analysis: &AnalysisParams,
    params: &OrParams,
) -> OrResult {
    let os = optimize_schedule(system, analysis, &params.os);
    let mut evaluations = 0;
    if !os.best.is_schedulable() {
        return OrResult {
            best: os.best.clone(),
            os,
            evaluations,
        };
    }

    let mut evaluator = Evaluator::new(system, *analysis);
    let mut global_best = os.best.clone();
    for seed in &os.seeds {
        let Ok(summary) = evaluator.evaluate(seed) else {
            continue;
        };
        let mut current = materialize(&evaluator, seed.clone(), summary);
        // Delta-RTA seed accumulation across the in-place neighbor scan
        // (cleared after every successful evaluation, re-fed on revert).
        let mut seeds = DeltaSeeds::new();
        for _ in 0..params.max_iterations {
            let moves = neighborhood(system, &current);
            let stride = (moves.len() / params.neighbor_sample.max(1)).max(1);
            let mut work = current.config.clone();
            let mut best_neighbor: Option<(EvalSummary, SystemConfig)> = None;
            for mv in moves.into_iter().step_by(stride) {
                let undo = mv.apply_undoable_seeded(&mut work, &mut seeds);
                evaluations += 1;
                if let Ok(summary) = evaluator.evaluate_delta(&work, &seeds) {
                    seeds.clear();
                    if summary.is_schedulable() {
                        let better = match &best_neighbor {
                            None => true,
                            Some((b, _)) => summary.total_buffers < b.total_buffers,
                        };
                        if better {
                            best_neighbor = Some((summary, work.clone()));
                        }
                    }
                }
                undo.record_seeds(&mut seeds);
                undo.revert(&mut work);
            }
            match best_neighbor {
                Some((summary, config)) if summary.total_buffers < current.total_buffers => {
                    // Accepted: materialize the outcome for the next
                    // neighborhood instantiation. The full evaluation resets
                    // the delta base to the accepted configuration.
                    let summary = evaluator
                        .evaluate(&config)
                        .expect("accepted neighbor was analyzable");
                    seeds.clear();
                    current = materialize(&evaluator, config, summary);
                }
                _ => break,
            }
        }
        if current.is_schedulable() && current.total_buffers < global_best.total_buffers {
            global_best = current;
        }
    }
    OrResult {
        best: global_best,
        os,
        evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_gen::{figure4, generate, GeneratorParams};
    use mcs_model::Time;

    #[test]
    fn or_never_worsens_the_buffer_need() {
        let fig = figure4(Time::from_millis(240));
        let analysis = AnalysisParams::default();
        let or = optimize_resources(&fig.system, &analysis, &OrParams::default());
        assert!(or.best.is_schedulable());
        assert!(
            or.best.total_buffers <= or.os.best.total_buffers,
            "OR {} must not exceed OS {}",
            or.best.total_buffers,
            or.os.best.total_buffers
        );
    }

    #[test]
    fn or_keeps_the_system_schedulable_on_random_workloads() {
        let system = generate(&GeneratorParams::paper_sized(2, 29));
        let analysis = AnalysisParams::default();
        let params = OrParams {
            max_iterations: 3,
            neighbor_sample: 16,
            ..OrParams::default()
        };
        let or = optimize_resources(&system, &analysis, &params);
        if or.os.best.is_schedulable() {
            assert!(or.best.is_schedulable());
            assert!(or.best.total_buffers <= or.os.best.total_buffers);
        }
    }
}
