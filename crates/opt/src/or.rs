//! `OptimizeResources` (OR) — the buffer-minimization hill climber of paper
//! Figure 7.
//!
//! Step 1 runs the [`Os`] strategy to obtain a schedulable system and a
//! pool of seed solutions. Step 2 hill-climbs from every seed over the move
//! set of [`crate::neighborhood`], at each iteration performing the move
//! that minimizes `s_total` without making the system unschedulable, until
//! no improvement remains or the iteration limit is hit.
//!
//! [`Or`] is the [`Strategy`] packaging of the pipeline for
//! [`Synthesis`](crate::Synthesis): both steps share the context's
//! [`Evaluator`](mcs_core::Evaluator), neighbors are explored with
//! apply/undo semantics against one working configuration, and no
//! `SystemConfig` clone or outcome materialization happens per candidate.

use mcs_core::{DeltaSeeds, EvalSummary};
use mcs_model::SystemConfig;

use crate::cost::{materialize, Evaluation};
use crate::moves::{neighborhood_into, Move};
use crate::os::{Os, OsParams, OsResult};
use crate::synthesis::{SearchCtx, SearchEvent, Strategy, SynthesisError};

/// Tuning of the OR hill climber.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OrParams {
    /// OS settings used for step 1 (seed generation).
    pub os: OsParams,
    /// Iteration limit per seed.
    pub max_iterations: u32,
    /// Cap on neighbors evaluated per iteration (evenly sampled when the
    /// neighborhood is larger).
    pub neighbor_sample: usize,
}

impl Default for OrParams {
    fn default() -> Self {
        OrParams {
            os: OsParams::default(),
            max_iterations: 12,
            neighbor_sample: 64,
        }
    }
}

/// The result of the legacy `OptimizeResources` entry point.
#[derive(Clone, Debug)]
pub struct OrResult {
    /// The best (schedulable, minimal `s_total`) configuration found.
    pub best: Evaluation,
    /// The step-1 result the climb started from.
    pub os: OsResult,
    /// Number of `MultiClusterScheduling` evaluations performed in step 2.
    pub evaluations: u32,
}

/// What the OR pipeline learned along the way, available through
/// [`Or::details`] after a run.
#[derive(Clone, Debug)]
pub struct OrDetails {
    /// The step-1 (OS) incumbent, fully materialized.
    pub os_best: Evaluation,
    /// The seed pool handed to the hill climber.
    pub os_seeds: Vec<SystemConfig>,
    /// Evaluations spent in step 1.
    pub os_evaluations: u64,
    /// Neighbor evaluations spent in step 2 (the count the legacy
    /// `OrResult::evaluations` reported).
    pub climb_evaluations: u64,
}

/// The OR pipeline as a [`Strategy`].
///
/// If step 1 fails to find any schedulable configuration (the paper would
/// go back and modify the mapping/architecture, which is outside ψ), the
/// OS incumbent is returned unchanged — callers can detect this through
/// [`Evaluation::is_schedulable`] on the report.
#[derive(Debug, Default)]
pub struct Or {
    params: OrParams,
    details: Option<OrDetails>,
}

impl Or {
    /// Creates the strategy.
    pub fn new(params: OrParams) -> Self {
        Or {
            params,
            details: None,
        }
    }

    /// Step-level details of the last run (`None` before any run).
    pub fn details(&self) -> Option<&OrDetails> {
        self.details.as_ref()
    }

    /// Takes the details of the last run.
    pub fn take_details(&mut self) -> Option<OrDetails> {
        self.details.take()
    }
}

impl Strategy for Or {
    fn name(&self) -> &'static str {
        "OR"
    }

    fn run(&mut self, ctx: &mut SearchCtx<'_, '_, '_>) -> Result<(), SynthesisError> {
        let system = ctx.system();
        ctx.emit(SearchEvent::Phase {
            name: "optimize-schedule",
        });
        let mut os = Os::new(self.params.os);
        os.run(ctx)?;
        let os_evaluations = ctx.evaluations();
        let os_seeds = os.take_seeds();
        let (os_summary, os_config) = {
            let (summary, config) = ctx
                .incumbent()
                .expect("the OS strategy always records an incumbent");
            (*summary, config.clone())
        };
        // Materialize the step-1 incumbent (one extra analysis) so the
        // details carry its full outcome, as the legacy pipeline did.
        let check = ctx.evaluate(&os_config)?;
        debug_assert_eq!(check, os_summary);
        let os_best = materialize(ctx.evaluator(), os_config, check);

        let mut climb_evaluations = 0u64;
        if os_summary.is_schedulable() {
            ctx.emit(SearchEvent::Phase { name: "hill-climb" });
            let mut global_best = os_summary;
            // Neighborhood and sample buffers, reused across iterations and
            // seeds (no per-step allocation).
            let mut moves: Vec<Move> = Vec::new();
            let mut sampled: Vec<Move> = Vec::new();
            for seed in &os_seeds {
                if ctx.exhausted() {
                    break;
                }
                let Ok(summary) = ctx.evaluate(seed) else {
                    continue;
                };
                let mut current_summary = summary;
                let mut current = materialize(ctx.evaluator(), seed.clone(), summary);
                // Delta-RTA seeds carried since the last completed
                // evaluation (always relative to `current`: every accepted
                // step re-anchors with a full evaluation).
                let mut seeds = DeltaSeeds::new();
                for _ in 0..self.params.max_iterations {
                    if ctx.exhausted() {
                        break;
                    }
                    neighborhood_into(system, &current, &mut moves);
                    let stride = (moves.len() / self.params.neighbor_sample.max(1)).max(1);
                    sampled.clear();
                    sampled.extend(moves.iter().copied().step_by(stride));
                    // Fan the sampled neighborhood out as one batch, then
                    // consume in scan order: per-candidate results, budget
                    // accounting and the event stream are exactly the
                    // sequential loop's.
                    ctx.evaluate_candidates(&current.config, &seeds, &sampled);
                    let mut best_neighbor: Option<(EvalSummary, SystemConfig)> = None;
                    for index in 0..sampled.len() {
                        if ctx.exhausted() {
                            break;
                        }
                        climb_evaluations += 1;
                        match ctx.consume_candidate(index) {
                            Ok(summary) => {
                                seeds.clear();
                                let mut better = false;
                                if summary.is_schedulable() {
                                    better = match &best_neighbor {
                                        None => true,
                                        Some((b, _)) => summary.total_buffers < b.total_buffers,
                                    };
                                    if better {
                                        best_neighbor =
                                            Some((summary, ctx.candidate_config(index).clone()));
                                    }
                                }
                                ctx.emit(SearchEvent::Evaluated {
                                    evaluations: ctx.evaluations(),
                                    summary,
                                    accepted: better,
                                });
                            }
                            Err(_) => ctx.emit(SearchEvent::Infeasible {
                                evaluations: ctx.evaluations(),
                            }),
                        }
                    }
                    match best_neighbor {
                        Some((summary, config))
                            if summary.total_buffers < current.total_buffers =>
                        {
                            // Accepted: materialize the outcome for the
                            // next neighborhood instantiation. The full
                            // evaluation resets the delta base to the
                            // accepted configuration.
                            let summary = ctx
                                .evaluate(&config)
                                .expect("accepted neighbor was analyzable");
                            seeds.clear();
                            current_summary = summary;
                            current = materialize(ctx.evaluator(), config, summary);
                        }
                        _ => break,
                    }
                }
                if current.is_schedulable() && current.total_buffers < global_best.total_buffers {
                    global_best = current_summary;
                    ctx.record_incumbent(current_summary, &current.config);
                }
            }
        }
        self.details = Some(OrDetails {
            os_best,
            os_seeds,
            os_evaluations,
            climb_evaluations,
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthesis::Synthesis;
    use mcs_gen::{figure4, generate, GeneratorParams};
    use mcs_model::System;
    use mcs_model::Time;

    fn run_or(system: &System, params: OrParams) -> (Evaluation, OrDetails) {
        let mut strategy = Or::new(params);
        let report = Synthesis::builder(system)
            .strategy(&mut strategy)
            .run()
            .expect("analyzable");
        let details = strategy.take_details().expect("details recorded");
        (report.best, details)
    }

    #[test]
    fn or_never_worsens_the_buffer_need() {
        let fig = figure4(Time::from_millis(240));
        let (best, details) = run_or(&fig.system, OrParams::default());
        assert!(best.is_schedulable());
        assert!(
            best.total_buffers <= details.os_best.total_buffers,
            "OR {} must not exceed OS {}",
            best.total_buffers,
            details.os_best.total_buffers
        );
    }

    #[test]
    fn or_keeps_the_system_schedulable_on_random_workloads() {
        let system = generate(&GeneratorParams::paper_sized(2, 29));
        let params = OrParams {
            max_iterations: 3,
            neighbor_sample: 16,
            ..OrParams::default()
        };
        let (best, details) = run_or(&system, params);
        if details.os_best.is_schedulable() {
            assert!(best.is_schedulable());
            assert!(best.total_buffers <= details.os_best.total_buffers);
        }
    }
}
