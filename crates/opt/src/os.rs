//! `OptimizeSchedule` (OS) — the greedy bus-access and priority synthesis
//! heuristic of paper Figure 8.
//!
//! Starting from the straightforward slot order with minimal lengths, the
//! heuristic fixes the TDMA round slot by slot: for every position it tries
//! every still-unassigned node and every *recommended length* for that
//! node's slot, assigns HOPA priorities, runs `MultiClusterScheduling`, and
//! keeps the combination maximizing the degree of schedulability. Along the
//! way it records the best configurations seen — by δΓ and by `s_total` —
//! as *seed solutions* for the resource optimizer.
//!
//! [`Os`] is the [`Strategy`] packaging of the heuristic for
//! [`Synthesis`](crate::Synthesis): all candidate evaluations run through
//! the context's shared [`Evaluator`](mcs_core::Evaluator), and only
//! summaries are compared in the search; the driver materializes the full
//! outcome once for the winning configuration.

use mcs_core::{DeltaSeeds, EvalSummary};
use mcs_model::{MessageRoute, NodeId, System, SystemConfig, TdmaConfig, TdmaSlot};

use crate::cost::Evaluation;
use crate::hopa::hopa_priorities;
use crate::sf::minimal_slot_capacities;
use crate::synthesis::{SearchCtx, SearchEvent, Strategy, SynthesisError};

/// Tuning of the OS heuristic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OsParams {
    /// Maximum recommended slot lengths tried per (position, node) pair.
    pub max_slot_candidates: usize,
    /// Maximum number of seed solutions handed to `OptimizeResources`.
    pub seed_limit: usize,
}

impl Default for OsParams {
    fn default() -> Self {
        OsParams {
            max_slot_candidates: 3,
            seed_limit: 6,
        }
    }
}

/// The result of the legacy `OptimizeSchedule` entry point.
#[derive(Clone, Debug)]
pub struct OsResult {
    /// The best configuration found (by δΓ, ties broken by `s_total`).
    pub best: Evaluation,
    /// Seed configurations for the second optimization step: the best by
    /// δΓ and the schedulable ones with the smallest `s_total`.
    pub seeds: Vec<SystemConfig>,
    /// Number of `MultiClusterScheduling` evaluations performed.
    pub evaluations: u32,
}

/// Recommended slot lengths for `node` (paper §5.1, after Eles et al.
/// 2000): the
/// cumulative sizes of the node's outgoing TTP frames, largest first — i.e.
/// "fit the k largest messages into one round".
pub fn recommended_lengths(system: &System, node: NodeId) -> Vec<u32> {
    let app = &system.application;
    let mut sizes: Vec<u32> = app
        .messages()
        .iter()
        .filter(|m| {
            let route = system.route(m.id());
            let sender = if route == MessageRoute::EtcToTtc {
                system.architecture.gateway()
            } else {
                app.process(m.source()).node()
            };
            route.uses_ttp() && sender == node
        })
        .map(|m| m.size_bytes())
        .collect();
    if sizes.is_empty() {
        return vec![1];
    }
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    let mut lengths = Vec::new();
    let mut sum = 0;
    for s in sizes {
        sum += s;
        if lengths.last() != Some(&sum) {
            lengths.push(sum);
        }
    }
    lengths
}

/// The OS heuristic as a [`Strategy`].
///
/// After a run, the seed pool for `OptimizeResources` is available through
/// [`Os::seed_configs`] (the incumbent first, then the best-by-δΓ and
/// smallest-`s_total` schedulable configurations seen).
///
/// Infeasible intermediate configurations (a candidate length below the
/// node's largest frame can never occur by construction, but e.g. a
/// degenerate architecture could fail scheduling) are skipped rather than
/// propagated; the straightforward configuration guarantees at least one
/// feasible evaluation.
#[derive(Debug, Default)]
pub struct Os {
    params: OsParams,
    seeds: Vec<SystemConfig>,
}

impl Os {
    /// Creates the strategy.
    pub fn new(params: OsParams) -> Self {
        Os {
            params,
            seeds: Vec::new(),
        }
    }

    /// The seed pool of the last run (empty before any run).
    pub fn seed_configs(&self) -> &[SystemConfig] {
        &self.seeds
    }

    /// Takes the seed pool of the last run.
    pub fn take_seeds(&mut self) -> Vec<SystemConfig> {
        std::mem::take(&mut self.seeds)
    }
}

impl Strategy for Os {
    fn name(&self) -> &'static str {
        "OS"
    }

    fn run(&mut self, ctx: &mut SearchCtx<'_, '_, '_>) -> Result<(), SynthesisError> {
        let system = ctx.system();
        let caps = minimal_slot_capacities(system);
        let order: Vec<NodeId> = system.architecture.ttp_nodes().map(|n| n.id()).collect();
        let mut slots: Vec<TdmaSlot> = order
            .iter()
            .map(|&node| TdmaSlot {
                node,
                capacity_bytes: caps[&node],
            })
            .collect();

        let mut best: Option<(EvalSummary, SystemConfig)> = None;
        let mut pool = SeedPool::new(self.params.seed_limit);
        // Every OS candidate changes the TDMA round (slot order or length),
        // so the delta path degenerates to the full fixed point by design;
        // the structural seed set documents that through the uniform entry
        // point — the batch still wins core-level parallelism across lanes.
        let structural = DeltaSeeds::structural();
        // Candidate counts per tried `j`, reused across positions.
        let mut groups: Vec<(usize, usize)> = Vec::new();

        'positions: for position in 0..slots.len() {
            if ctx.exhausted() {
                // Between candidates the slot vector is consistent;
                // keep whatever the committed prefix achieved.
                break 'positions;
            }
            // Fan out the whole position scan as one batch: every remaining
            // node at this position × every recommended length for it.
            ctx.begin_candidates();
            groups.clear();
            for j in position..slots.len() {
                slots.swap(position, j);
                let node = slots[position].node;
                let lengths = recommended_lengths(system, node);
                let saved = slots[position].capacity_bytes;
                let mut count = 0;
                for &len in lengths.iter().take(self.params.max_slot_candidates.max(1)) {
                    slots[position].capacity_bytes = len.max(caps[&node]);
                    let tdma = TdmaConfig::new(slots.clone());
                    let priorities = hopa_priorities(system, &tdma);
                    let config = SystemConfig::new(tdma, priorities);
                    ctx.push_candidate(&config, &structural);
                    count += 1;
                }
                slots[position].capacity_bytes = saved;
                slots.swap(position, j);
                groups.push((j, count));
            }
            ctx.evaluate_candidates_queued();

            // Consume in scan order: results, budget accounting and the
            // event stream are exactly the sequential loop's — speculative
            // candidates past an exhausted budget are never consumed.
            let mut best_here: Option<(EvalSummary, SystemConfig, usize, u32)> = None;
            let mut index = 0;
            for (group, &(j, count)) in groups.iter().enumerate() {
                if group > 0 && ctx.exhausted() {
                    break 'positions;
                }
                for _ in 0..count {
                    if let Ok(summary) = ctx.consume_candidate(index) {
                        pool.offer(&summary, ctx.candidate_config(index));
                        let better = match &best_here {
                            None => true,
                            Some((cur, _, _, _)) => {
                                (summary.schedule_cost(), summary.total_buffers)
                                    < (cur.schedule_cost(), cur.total_buffers)
                            }
                        };
                        ctx.emit(SearchEvent::Evaluated {
                            evaluations: ctx.evaluations(),
                            summary,
                            accepted: better,
                        });
                        if better {
                            let config = ctx.candidate_config(index).clone();
                            let capacity = config.tdma.slots()[position].capacity_bytes;
                            best_here = Some((summary, config, j, capacity));
                        }
                    } else {
                        ctx.emit(SearchEvent::Infeasible {
                            evaluations: ctx.evaluations(),
                        });
                    }
                    index += 1;
                }
            }
            // Commit the best node/length for this position.
            if let Some((summary, config, j, len)) = best_here {
                slots.swap(position, j);
                slots[position].capacity_bytes = len;
                let better = match &best {
                    None => true,
                    Some((cur, _)) => {
                        (summary.schedule_cost(), summary.total_buffers)
                            < (cur.schedule_cost(), cur.total_buffers)
                    }
                };
                if better {
                    ctx.record_incumbent(summary, &config);
                    best = Some((summary, config));
                }
            }
        }

        let best_config = match best {
            Some((_, config)) => config,
            None => {
                // Degenerate fallback: evaluate the straightforward
                // configuration.
                let config = crate::sf::straightforward_config(system);
                let summary = ctx.evaluate(&config)?;
                ctx.record_incumbent(summary, &config);
                config
            }
        };
        self.seeds = pool.into_configs(&best_config);
        Ok(())
    }
}

/// Keeps the best seen configurations along two axes: δΓ and `s_total`.
struct SeedPool {
    limit: usize,
    by_degree: Vec<(i128, u64, SystemConfig)>,
    by_buffers: Vec<(u64, i128, SystemConfig)>,
}

impl SeedPool {
    fn new(limit: usize) -> Self {
        SeedPool {
            limit: limit.max(2),
            by_degree: Vec::new(),
            by_buffers: Vec::new(),
        }
    }

    fn offer(&mut self, summary: &EvalSummary, config: &SystemConfig) {
        let half = self.limit.div_ceil(2);
        self.by_degree.push((
            summary.schedule_cost(),
            summary.total_buffers,
            config.clone(),
        ));
        self.by_degree.sort_by_key(|a| (a.0, a.1));
        self.by_degree.truncate(half);
        if summary.is_schedulable() {
            self.by_buffers.push((
                summary.total_buffers,
                summary.schedule_cost(),
                config.clone(),
            ));
            self.by_buffers.sort_by_key(|a| (a.0, a.1));
            self.by_buffers.truncate(half);
        }
    }

    fn into_configs(self, best: &SystemConfig) -> Vec<SystemConfig> {
        let mut configs = vec![best.clone()];
        for (_, _, c) in self
            .by_degree
            .into_iter()
            .chain(self.by_buffers.into_iter().map(|(a, b, c)| (b, a, c)))
        {
            if !configs.contains(&c) {
                configs.push(c);
            }
        }
        configs.truncate(self.limit);
        configs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::evaluate;
    use crate::synthesis::Synthesis;
    use mcs_core::AnalysisParams;
    use mcs_gen::{figure4, generate, GeneratorParams};
    use mcs_model::Time;

    fn run_os(system: &System) -> (Evaluation, Vec<SystemConfig>, u64) {
        let mut strategy = Os::new(OsParams::default());
        let report = Synthesis::builder(system)
            .strategy(&mut strategy)
            .run()
            .expect("analyzable");
        (report.best, strategy.take_seeds(), report.evaluations)
    }

    #[test]
    fn os_beats_or_matches_the_straightforward_baseline() {
        let system = generate(&GeneratorParams::paper_sized(2, 17));
        let analysis = AnalysisParams::default();
        let sf = evaluate(
            &system,
            crate::sf::straightforward_config(&system),
            &analysis,
        )
        .expect("SF analyzable");
        let (best, seeds, evaluations) = run_os(&system);
        assert!(
            best.schedule_cost() <= sf.schedule_cost(),
            "OS {} must not lose to SF {}",
            best.schedule_cost(),
            sf.schedule_cost()
        );
        assert!(evaluations > 0);
        assert!(!seeds.is_empty());
    }

    #[test]
    fn os_finds_a_schedulable_figure4_configuration() {
        // With D = 240 ms, configurations (b) and (c) are schedulable; the
        // greedy search must find one at least as good.
        let fig = figure4(Time::from_millis(240));
        let (best, _, _) = run_os(&fig.system);
        assert!(best.is_schedulable());
    }

    #[test]
    fn recommended_lengths_are_cumulative_message_sizes() {
        let fig = figure4(Time::from_millis(200));
        // N1 sends m1 (4 B) and m2 (4 B): lengths 4, 8.
        let n1 = fig
            .system
            .application
            .process(mcs_gen::figure4_ids::P1)
            .node();
        assert_eq!(recommended_lengths(&fig.system, n1), vec![4, 8]);
        // The gateway carries m3 (4 B).
        assert_eq!(
            recommended_lengths(&fig.system, fig.system.architecture.gateway()),
            vec![4]
        );
    }
}
