//! `OptimizeSchedule` (OS) — the greedy bus-access and priority synthesis
//! heuristic of paper Figure 8.
//!
//! Starting from the straightforward slot order with minimal lengths, the
//! heuristic fixes the TDMA round slot by slot: for every position it tries
//! every still-unassigned node and every *recommended length* for that
//! node's slot, assigns HOPA priorities, runs `MultiClusterScheduling`, and
//! keeps the combination maximizing the degree of schedulability. Along the
//! way it records the best configurations seen — by δΓ and by `s_total` —
//! as *seed solutions* for the resource optimizer.
//!
//! All candidate evaluations run through one reused
//! [`Evaluator`], and only summaries are compared in the search; the full
//! outcome is materialized once for the winning configuration.

use mcs_core::{AnalysisParams, DeltaSeeds, EvalSummary, Evaluator};
use mcs_model::{MessageRoute, NodeId, System, SystemConfig, TdmaConfig, TdmaSlot};

use crate::cost::{materialize, Evaluation};
use crate::hopa::hopa_priorities;
use crate::sf::minimal_slot_capacities;

/// Tuning of the OS heuristic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OsParams {
    /// Maximum recommended slot lengths tried per (position, node) pair.
    pub max_slot_candidates: usize,
    /// Maximum number of seed solutions handed to `OptimizeResources`.
    pub seed_limit: usize,
}

impl Default for OsParams {
    fn default() -> Self {
        OsParams {
            max_slot_candidates: 3,
            seed_limit: 6,
        }
    }
}

/// The result of `OptimizeSchedule`.
#[derive(Clone, Debug)]
pub struct OsResult {
    /// The best configuration found (by δΓ, ties broken by `s_total`).
    pub best: Evaluation,
    /// Seed configurations for the second optimization step: the best by
    /// δΓ and the schedulable ones with the smallest `s_total`.
    pub seeds: Vec<SystemConfig>,
    /// Number of `MultiClusterScheduling` evaluations performed.
    pub evaluations: u32,
}

/// Recommended slot lengths for `node` (paper §5.1, after Eles et al.
/// 2000): the
/// cumulative sizes of the node's outgoing TTP frames, largest first — i.e.
/// "fit the k largest messages into one round".
pub fn recommended_lengths(system: &System, node: NodeId) -> Vec<u32> {
    let app = &system.application;
    let mut sizes: Vec<u32> = app
        .messages()
        .iter()
        .filter(|m| {
            let route = system.route(m.id());
            let sender = if route == MessageRoute::EtcToTtc {
                system.architecture.gateway()
            } else {
                app.process(m.source()).node()
            };
            route.uses_ttp() && sender == node
        })
        .map(|m| m.size_bytes())
        .collect();
    if sizes.is_empty() {
        return vec![1];
    }
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    let mut lengths = Vec::new();
    let mut sum = 0;
    for s in sizes {
        sum += s;
        if lengths.last() != Some(&sum) {
            lengths.push(sum);
        }
    }
    lengths
}

/// Runs the OS heuristic.
///
/// Infeasible intermediate configurations (a candidate length below the
/// node's largest frame can never occur by construction, but e.g. a
/// degenerate architecture could fail scheduling) are skipped rather than
/// propagated; the straightforward configuration guarantees at least one
/// feasible evaluation.
pub fn optimize_schedule(
    system: &System,
    analysis: &AnalysisParams,
    params: &OsParams,
) -> OsResult {
    let mut evaluator = Evaluator::new(system, *analysis);
    let caps = minimal_slot_capacities(system);
    let order: Vec<NodeId> = system.architecture.ttp_nodes().map(|n| n.id()).collect();
    let mut slots: Vec<TdmaSlot> = order
        .iter()
        .map(|&node| TdmaSlot {
            node,
            capacity_bytes: caps[&node],
        })
        .collect();

    let mut evaluations = 0;
    let mut best: Option<(EvalSummary, SystemConfig)> = None;
    let mut seeds = SeedPool::new(params.seed_limit);
    // Every OS candidate changes the TDMA round (slot order or length), so
    // the delta path degenerates to the full fixed point by design; the
    // structural seed set documents that through the uniform entry point.
    let structural = DeltaSeeds::structural();

    for position in 0..slots.len() {
        let mut best_here: Option<(EvalSummary, SystemConfig, usize, u32)> = None;
        for j in position..slots.len() {
            slots.swap(position, j);
            let node = slots[position].node;
            let lengths = recommended_lengths(system, node);
            for &len in lengths.iter().take(params.max_slot_candidates.max(1)) {
                let saved = slots[position].capacity_bytes;
                slots[position].capacity_bytes = len.max(caps[&node]);
                let tdma = TdmaConfig::new(slots.clone());
                let priorities = hopa_priorities(system, &tdma);
                let config = SystemConfig::new(tdma, priorities);
                evaluations += 1;
                if let Ok(summary) = evaluator.evaluate_delta(&config, &structural) {
                    seeds.offer(&summary, &config);
                    let better = match &best_here {
                        None => true,
                        Some((cur, _, _, _)) => {
                            (summary.schedule_cost(), summary.total_buffers)
                                < (cur.schedule_cost(), cur.total_buffers)
                        }
                    };
                    if better {
                        best_here = Some((summary, config, j, slots[position].capacity_bytes));
                    }
                }
                slots[position].capacity_bytes = saved;
            }
            slots.swap(position, j);
        }
        // Commit the best node/length for this position.
        if let Some((summary, config, j, len)) = best_here {
            slots.swap(position, j);
            slots[position].capacity_bytes = len;
            let better = match &best {
                None => true,
                Some((cur, _)) => {
                    (summary.schedule_cost(), summary.total_buffers)
                        < (cur.schedule_cost(), cur.total_buffers)
                }
            };
            if better {
                best = Some((summary, config));
            }
        }
    }

    let best = match best {
        Some((_, config)) => {
            // Materialize the winner's outcome (one extra analysis; the
            // search itself only compared summaries).
            let summary = evaluator
                .evaluate(&config)
                .expect("the best configuration was analyzable when visited");
            materialize(&evaluator, config, summary)
        }
        None => {
            // Degenerate fallback: evaluate the straightforward configuration.
            let config = crate::sf::straightforward_config(system);
            let summary = evaluator
                .evaluate(&config)
                .expect("the straightforward configuration must be analyzable");
            materialize(&evaluator, config, summary)
        }
    };
    OsResult {
        seeds: seeds.into_configs(&best),
        best,
        evaluations,
    }
}

/// Keeps the best seen configurations along two axes: δΓ and `s_total`.
struct SeedPool {
    limit: usize,
    by_degree: Vec<(i128, u64, SystemConfig)>,
    by_buffers: Vec<(u64, i128, SystemConfig)>,
}

impl SeedPool {
    fn new(limit: usize) -> Self {
        SeedPool {
            limit: limit.max(2),
            by_degree: Vec::new(),
            by_buffers: Vec::new(),
        }
    }

    fn offer(&mut self, summary: &EvalSummary, config: &SystemConfig) {
        let half = self.limit.div_ceil(2);
        self.by_degree.push((
            summary.schedule_cost(),
            summary.total_buffers,
            config.clone(),
        ));
        self.by_degree.sort_by_key(|a| (a.0, a.1));
        self.by_degree.truncate(half);
        if summary.is_schedulable() {
            self.by_buffers.push((
                summary.total_buffers,
                summary.schedule_cost(),
                config.clone(),
            ));
            self.by_buffers.sort_by_key(|a| (a.0, a.1));
            self.by_buffers.truncate(half);
        }
    }

    fn into_configs(self, best: &Evaluation) -> Vec<SystemConfig> {
        let mut configs = vec![best.config.clone()];
        for (_, _, c) in self
            .by_degree
            .into_iter()
            .chain(self.by_buffers.into_iter().map(|(a, b, c)| (b, a, c)))
        {
            if !configs.contains(&c) {
                configs.push(c);
            }
        }
        configs.truncate(self.limit);
        configs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::evaluate;
    use mcs_gen::{figure4, generate, GeneratorParams};
    use mcs_model::Time;

    #[test]
    fn os_beats_or_matches_the_straightforward_baseline() {
        let system = generate(&GeneratorParams::paper_sized(2, 17));
        let analysis = AnalysisParams::default();
        let sf = evaluate(
            &system,
            crate::sf::straightforward_config(&system),
            &analysis,
        )
        .expect("SF analyzable");
        let os = optimize_schedule(&system, &analysis, &OsParams::default());
        assert!(
            os.best.schedule_cost() <= sf.schedule_cost(),
            "OS {} must not lose to SF {}",
            os.best.schedule_cost(),
            sf.schedule_cost()
        );
        assert!(os.evaluations > 0);
        assert!(!os.seeds.is_empty());
    }

    #[test]
    fn os_finds_a_schedulable_figure4_configuration() {
        // With D = 240 ms, configurations (b) and (c) are schedulable; the
        // greedy search must find one at least as good.
        let fig = figure4(Time::from_millis(240));
        let os = optimize_schedule(
            &fig.system,
            &AnalysisParams::default(),
            &OsParams::default(),
        );
        assert!(os.best.is_schedulable());
    }

    #[test]
    fn recommended_lengths_are_cumulative_message_sizes() {
        let fig = figure4(Time::from_millis(200));
        // N1 sends m1 (4 B) and m2 (4 B): lengths 4, 8.
        let n1 = fig
            .system
            .application
            .process(mcs_gen::figure4_ids::P1)
            .node();
        assert_eq!(recommended_lengths(&fig.system, n1), vec![4, 8]);
        // The gateway carries m3 (4 B).
        assert_eq!(
            recommended_lengths(&fig.system, fig.system.architecture.gateway()),
            vec![4]
        );
    }
}
