//! # mcs-opt
//!
//! Synthesis heuristics for multi-cluster systems (paper §5–6), served
//! through **one front door**: the strategy-driven [`Synthesis`] driver
//! (see the [`synthesis`] module for the full tour). The paper's family of
//! heuristics are [`Strategy`] impls:
//!
//! * [`Hopa`] — HOPA-style deadline-distribution priority assignment for
//!   ET processes and CAN messages ([`hopa_priorities`] is the underlying
//!   assignment function);
//! * [`Os`] (OS) — greedy TDMA slot-sequence/slot-length synthesis
//!   maximizing the degree of schedulability δΓ;
//! * [`Or`] (OR) — hill climbing from OS seed solutions, minimizing the
//!   total buffer need `s_total` under schedulability;
//! * [`Sf`] (SF), [`Sa::schedule`] (SAS) and [`Sa::resources`] (SAR) — the
//!   evaluation baselines.
//!
//! On top of single runs, [`Portfolio`] races strategies on one instance
//! across rayon workers and [`ExperimentRunner`] serves whole batches of
//! (instance × strategy) jobs — the layer the paper-reproduction sweeps
//! and any future traffic sit on.
//!
//! The free functions of the pre-`Synthesis` API (`optimize_schedule`,
//! `optimize_resources`, `sa_schedule`, `sa_resources`, `anneal`) have
//! been removed; the strategy-equivalence suite pins today's strategies
//! against frozen copies of those originals instead.
//!
//! # Search-loop machinery
//!
//! Every strategy evaluates configurations through the **shared**
//! [`mcs_core::Evaluator`] its [`SearchCtx`] borrows (the reusable
//! analysis context: system-invariant tables built once, fixed-point
//! scratch cleared between runs) and reads only the cheap
//! [`mcs_core::EvalSummary`] per candidate; full [`Evaluation`]s (with the
//! outcome maps) are materialized only for accepted and final
//! configurations.
//!
//! **The apply/undo move contract.** [`Move::apply_undoable`] applies a
//! design transformation and returns a [`MoveUndo`] whose
//! [`revert`](MoveUndo::revert) restores the configuration *bit-for-bit* —
//! including the two lossy cases plain re-application would get wrong: a
//! slot resize clamped at the 1-byte floor (the undo restores the recorded
//! previous capacity) and a pin move overwriting an existing pin (the undo
//! restores the previous pin value, or removes the pin if there was none).
//! Search loops therefore keep **one** working [`SystemConfig`] per climb
//! and explore every neighbor in place; the simulated-annealing baselines
//! clone a configuration only when recording a new incumbent. Undo tokens
//! must be reverted in LIFO order when stacked.
//!
//! **The delta-evaluation workflow.** Every search loop evaluates through
//! [`SearchCtx::evaluate_delta`], handing it an accumulated
//! [`mcs_core::DeltaSeeds`] set that over-approximates the difference
//! between the configuration being evaluated and the evaluator's last
//! completed analysis: [`Move::apply_undoable_seeded`] records a move's
//! seed entities on apply, the set is cleared after every successful
//! evaluation, and [`MoveUndo::record_seeds`] re-adds the undone entities
//! whenever a rejected or infeasible candidate is reverted. Priority swaps
//! seed the swapped entities, TDMA moves are structural (always the full
//! fixed point), and pin moves need no seeds at all — they act purely
//! through the static scheduler's release bounds, which the delta
//! evaluator re-derives itself.
//!
//! The SA baselines additionally draw their neighbors through
//! [`MoveSampler`], which picks one random move with the same distribution
//! as drawing uniformly from the materialized [`neighborhood`] — without
//! building the O(n²) move set.
//!
//! [`SystemConfig`]: mcs_model::SystemConfig
//!
//! # Examples
//!
//! ```no_run
//! use mcs_core::AnalysisParams;
//! use mcs_gen::{generate, GeneratorParams};
//! use mcs_opt::{Budget, Os, OsParams, Synthesis};
//!
//! let system = generate(&GeneratorParams::paper_sized(2, 1));
//! let report = Synthesis::builder(&system)
//!     .analysis(AnalysisParams::default())
//!     .strategy(Os::new(OsParams::default()))
//!     .budget(Budget::evals(10_000))
//!     .run()
//!     .expect("the straightforward start is analyzable");
//! println!(
//!     "schedulable: {}, buffers: {} B, {} evaluations",
//!     report.best.is_schedulable(),
//!     report.best.total_buffers,
//!     report.evaluations
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod annealing;
mod cost;
mod hopa;
mod moves;
mod or;
mod os;
mod sampler;
mod sensitivity;
pub mod serve;
mod sf;
pub mod synthesis;

pub use annealing::{sa_start, Sa, SaParams};
pub use cost::{evaluate, resource_cost, Evaluation};
pub use hopa::{hopa_priorities, Hopa};
pub use moves::{neighborhood, neighborhood_into, Move, MoveUndo};
pub use or::{Or, OrDetails, OrParams, OrResult};
pub use os::{recommended_lengths, Os, OsParams, OsResult};
pub use sampler::MoveSampler;
pub use sensitivity::{criticality_ranking, wcet_slack, WcetSlack};
pub use serve::{
    CancelCause, JobId, JobOutcome, JobRecord, JobSpec, RetryPolicy, ServiceConfig, SubmitError,
    SynthesisService,
};
pub use sf::{minimal_slot_capacities, straightforward_config, Sf};
pub use synthesis::{
    Budget, BudgetAxis, CancelToken, EventCounter, ExperimentJob, ExperimentRecord,
    ExperimentRunner, Objective, Observer, Portfolio, PortfolioReport, SearchCtx, SearchEvent,
    Selection, Strategy, Synthesis, SynthesisError, SynthesisReport, TrajectoryPoint,
};
