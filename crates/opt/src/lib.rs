//! # mcs-opt
//!
//! Synthesis heuristics for multi-cluster systems (paper §5–6):
//!
//! * [`hopa_priorities`] — HOPA-style deadline-distribution priority
//!   assignment for ET processes and CAN messages;
//! * [`optimize_schedule`] (OS) — greedy TDMA slot-sequence/slot-length
//!   synthesis maximizing the degree of schedulability δΓ;
//! * [`optimize_resources`] (OR) — hill climbing from OS seed solutions,
//!   minimizing the total buffer need `s_total` under schedulability;
//! * [`straightforward_config`] (SF), [`sa_schedule`] (SAS) and
//!   [`sa_resources`] (SAR) — the evaluation baselines.
//!
//! # Examples
//!
//! ```no_run
//! use mcs_core::AnalysisParams;
//! use mcs_gen::{generate, GeneratorParams};
//! use mcs_opt::{optimize_schedule, OsParams};
//!
//! let system = generate(&GeneratorParams::paper_sized(2, 1));
//! let os = optimize_schedule(&system, &AnalysisParams::default(), &OsParams::default());
//! println!(
//!     "schedulable: {}, buffers: {} B",
//!     os.best.is_schedulable(),
//!     os.best.total_buffers
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod annealing;
mod cost;
mod hopa;
mod moves;
mod or;
mod os;
mod sensitivity;
mod sf;

pub use annealing::{anneal, sa_resources, sa_schedule, sa_start, SaParams};
pub use cost::{evaluate, Evaluation};
pub use hopa::hopa_priorities;
pub use moves::{neighborhood, Move};
pub use or::{optimize_resources, OrParams, OrResult};
pub use os::{optimize_schedule, recommended_lengths, OsParams, OsResult};
pub use sensitivity::{criticality_ranking, wcet_slack, WcetSlack};
pub use sf::{minimal_slot_capacities, straightforward_config};
