//! Simulated-annealing baselines (paper §6): SAS minimizes the degree of
//! schedulability δΓ, SAR minimizes the total buffer need `s_total`. Both
//! explore the same move set as the heuristics; with long runs they provide
//! the near-optimal reference values of Figure 9.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mcs_core::AnalysisParams;
use mcs_model::{System, SystemConfig};

use crate::cost::{evaluate, Evaluation};
use crate::hopa::hopa_priorities;
use crate::moves::neighborhood;
use crate::sf::straightforward_config;

/// Simulated-annealing parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SaParams {
    /// Number of move evaluations.
    pub iterations: u32,
    /// Initial temperature, in cost units.
    pub initial_temperature: f64,
    /// Multiplicative cooling factor per iteration (0 < c < 1).
    pub cooling: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SaParams {
    /// A CI-scale budget. The paper ran "very long and expensive" SA (up to
    /// three hours per instance); scale `iterations` up for paper-scale
    /// reference runs.
    fn default() -> Self {
        SaParams {
            iterations: 300,
            initial_temperature: 1e7,
            cooling: 0.97,
            seed: 0,
        }
    }
}

/// Generic simulated annealing over configuration moves.
///
/// `cost` maps an evaluation to the scalar being minimized. Returns the best
/// evaluation ever visited (not the final state).
pub fn anneal(
    system: &System,
    start: SystemConfig,
    analysis: &AnalysisParams,
    cost: impl Fn(&Evaluation) -> f64,
    params: &SaParams,
) -> Evaluation {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut current =
        evaluate(system, start, analysis).expect("the SA start configuration must be analyzable");
    let mut best = current.clone();
    let mut temperature = params.initial_temperature;

    for _ in 0..params.iterations {
        let moves = neighborhood(system, &current);
        if moves.is_empty() {
            break;
        }
        let mv = moves[rng.gen_range(0..moves.len())];
        let mut config = current.config.clone();
        mv.apply(&mut config);
        temperature *= params.cooling;
        let Ok(candidate) = evaluate(system, config, analysis) else {
            continue; // infeasible neighbor
        };
        let delta = cost(&candidate) - cost(&current);
        let accept = delta <= 0.0 || {
            let t = temperature.max(f64::MIN_POSITIVE);
            rng.gen::<f64>() < (-delta / t).exp()
        };
        if accept {
            if cost(&candidate) < cost(&best) {
                best = candidate.clone();
            }
            current = candidate;
        }
    }
    best
}

/// The starting point both SA baselines use: straightforward slot order
/// with HOPA priorities.
pub fn sa_start(system: &System) -> SystemConfig {
    let mut config = straightforward_config(system);
    config.priorities = hopa_priorities(system, &config.tdma);
    config
}

/// SA Schedule (SAS): anneals on δΓ.
pub fn sa_schedule(system: &System, analysis: &AnalysisParams, params: &SaParams) -> Evaluation {
    anneal(
        system,
        sa_start(system),
        analysis,
        |e| e.schedule_cost() as f64,
        params,
    )
}

/// SA Resources (SAR): anneals on `s_total`, ranking unschedulable
/// configurations after every schedulable one.
pub fn sa_resources(system: &System, analysis: &AnalysisParams, params: &SaParams) -> Evaluation {
    anneal(
        system,
        sa_start(system),
        analysis,
        |e| e.resource_cost() as f64,
        params,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_gen::figure4;
    use mcs_model::Time;

    fn quick() -> SaParams {
        SaParams {
            iterations: 60,
            seed: 5,
            ..SaParams::default()
        }
    }

    #[test]
    fn sas_improves_on_its_start() {
        let fig = figure4(Time::from_millis(240));
        let analysis = AnalysisParams::default();
        let start = evaluate(&fig.system, sa_start(&fig.system), &analysis).expect("valid");
        let sas = sa_schedule(&fig.system, &analysis, &quick());
        assert!(sas.schedule_cost() <= start.schedule_cost());
    }

    #[test]
    fn sar_returns_a_schedulable_solution_when_one_is_reachable() {
        let fig = figure4(Time::from_millis(240));
        let analysis = AnalysisParams::default();
        let sar = sa_resources(&fig.system, &analysis, &quick());
        assert!(sar.is_schedulable());
        assert!(sar.total_buffers > 0);
    }

    #[test]
    fn annealing_is_deterministic_in_the_seed() {
        let fig = figure4(Time::from_millis(240));
        let analysis = AnalysisParams::default();
        let a = sa_schedule(&fig.system, &analysis, &quick());
        let b = sa_schedule(&fig.system, &analysis, &quick());
        assert_eq!(a.schedule_cost(), b.schedule_cost());
        assert_eq!(a.total_buffers, b.total_buffers);
    }
}
