//! Simulated-annealing baselines (paper §6): SAS minimizes the degree of
//! schedulability δΓ, SAR minimizes the total buffer need `s_total`. Both
//! explore the same move families as the heuristics; with long runs they
//! provide the near-optimal reference values of Figure 9.
//!
//! The inner loop is built for throughput: one reused
//! [`Evaluator`] (allocation-free analysis state), one lazily sampled move
//! per iteration ([`crate::MoveSampler`], no materialized neighborhood) and
//! apply/undo move semantics (no `SystemConfig` clone per iteration — the
//! configuration is only cloned when a new best is recorded).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mcs_core::{AnalysisParams, DeltaSeeds, EvalSummary, Evaluator};
use mcs_model::{System, SystemConfig};

use crate::cost::{materialize, resource_cost, Evaluation};
use crate::hopa::hopa_priorities;
use crate::sampler::MoveSampler;
use crate::sf::straightforward_config;

/// Simulated-annealing parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SaParams {
    /// Number of move evaluations.
    pub iterations: u32,
    /// Initial temperature, in cost units.
    pub initial_temperature: f64,
    /// Multiplicative cooling factor per iteration (0 < c < 1).
    pub cooling: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SaParams {
    /// A CI-scale budget. The paper ran "very long and expensive" SA (up to
    /// three hours per instance); scale `iterations` up for paper-scale
    /// reference runs.
    fn default() -> Self {
        SaParams {
            iterations: 300,
            initial_temperature: 1e7,
            cooling: 0.97,
            seed: 0,
        }
    }
}

/// Generic simulated annealing over configuration moves.
///
/// `cost` maps an evaluation summary to the scalar being minimized. Returns
/// the best evaluation ever visited (not the final state).
///
/// # Panics
///
/// Panics if `start` is not analyzable.
pub fn anneal(
    system: &System,
    start: SystemConfig,
    analysis: &AnalysisParams,
    cost: impl Fn(&EvalSummary) -> f64,
    params: &SaParams,
) -> Evaluation {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut evaluator = Evaluator::new(system, *analysis);
    let mut sampler = MoveSampler::new(system);
    let mut config = start;
    let mut current = evaluator
        .evaluate(&config)
        .expect("the SA start configuration must be analyzable");
    let mut best = current;
    let mut best_config = config.clone();
    let mut temperature = params.initial_temperature;

    // Delta-RTA seed accumulation: `seeds` always over-approximates the
    // difference between `config` and the evaluator's last completed
    // analysis — cleared after every successful evaluation, re-fed with the
    // undo's entities whenever a candidate is reverted.
    let mut seeds = DeltaSeeds::new();
    for _ in 0..params.iterations {
        let Some(mv) = sampler.sample(system, &config, &evaluator, &current, &mut rng) else {
            break;
        };
        let undo = mv.apply_undoable_seeded(&mut config, &mut seeds);
        temperature *= params.cooling;
        let Ok(candidate) = evaluator.evaluate_delta(&config, &seeds) else {
            // Infeasible neighbor: the evaluator's state is unchanged, so
            // the seeds keep accumulating across the revert.
            undo.record_seeds(&mut seeds);
            undo.revert(&mut config);
            continue;
        };
        seeds.clear();
        let delta = cost(&candidate) - cost(&current);
        let accept = delta <= 0.0 || {
            let t = temperature.max(f64::MIN_POSITIVE);
            rng.gen::<f64>() < (-delta / t).exp()
        };
        if accept {
            if cost(&candidate) < cost(&best) {
                best = candidate;
                best_config.clone_from(&config);
            }
            current = candidate;
        } else {
            undo.record_seeds(&mut seeds);
            undo.revert(&mut config);
        }
    }
    // Materialize the best visited configuration (one extra analysis, so
    // the hot loop never builds outcome maps).
    let summary = evaluator
        .evaluate(&best_config)
        .expect("the best configuration was analyzable when visited");
    debug_assert_eq!(summary, best);
    materialize(&evaluator, best_config, summary)
}

/// The starting point both SA baselines use: straightforward slot order
/// with HOPA priorities.
pub fn sa_start(system: &System) -> SystemConfig {
    let mut config = straightforward_config(system);
    config.priorities = hopa_priorities(system, &config.tdma);
    config
}

/// SA Schedule (SAS): anneals on δΓ.
pub fn sa_schedule(system: &System, analysis: &AnalysisParams, params: &SaParams) -> Evaluation {
    anneal(
        system,
        sa_start(system),
        analysis,
        |e| e.schedule_cost() as f64,
        params,
    )
}

/// SA Resources (SAR): anneals on `s_total`, ranking unschedulable
/// configurations after every schedulable one.
pub fn sa_resources(system: &System, analysis: &AnalysisParams, params: &SaParams) -> Evaluation {
    anneal(
        system,
        sa_start(system),
        analysis,
        |e| resource_cost(e) as f64,
        params,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::evaluate;
    use mcs_gen::figure4;
    use mcs_model::Time;

    fn quick() -> SaParams {
        SaParams {
            iterations: 60,
            seed: 5,
            ..SaParams::default()
        }
    }

    #[test]
    fn sas_improves_on_its_start() {
        let fig = figure4(Time::from_millis(240));
        let analysis = AnalysisParams::default();
        let start = evaluate(&fig.system, sa_start(&fig.system), &analysis).expect("valid");
        let sas = sa_schedule(&fig.system, &analysis, &quick());
        assert!(sas.schedule_cost() <= start.schedule_cost());
    }

    #[test]
    fn sar_returns_a_schedulable_solution_when_one_is_reachable() {
        let fig = figure4(Time::from_millis(240));
        let analysis = AnalysisParams::default();
        let sar = sa_resources(&fig.system, &analysis, &quick());
        assert!(sar.is_schedulable());
        assert!(sar.total_buffers > 0);
    }

    #[test]
    fn annealing_is_deterministic_in_the_seed() {
        let fig = figure4(Time::from_millis(240));
        let analysis = AnalysisParams::default();
        let a = sa_schedule(&fig.system, &analysis, &quick());
        let b = sa_schedule(&fig.system, &analysis, &quick());
        assert_eq!(a.schedule_cost(), b.schedule_cost());
        assert_eq!(a.total_buffers, b.total_buffers);
    }

    #[test]
    fn annealing_never_worsens_with_more_budget_of_the_best() {
        // The returned evaluation is the best ever visited: running more
        // iterations with the same seed can only improve (or match) it.
        let fig = figure4(Time::from_millis(240));
        let analysis = AnalysisParams::default();
        let short = sa_schedule(&fig.system, &analysis, &quick());
        let long = sa_schedule(
            &fig.system,
            &analysis,
            &SaParams {
                iterations: 120,
                ..quick()
            },
        );
        assert!(long.schedule_cost() <= short.schedule_cost());
    }
}
