//! Simulated-annealing baselines (paper §6): SAS minimizes the degree of
//! schedulability δΓ, SAR minimizes the total buffer need `s_total`. Both
//! explore the same move families as the heuristics; with long runs they
//! provide the near-optimal reference values of Figure 9.
//!
//! [`Sa`] is the [`Strategy`] packaging of the annealer for
//! [`Synthesis`](crate::Synthesis). The inner loop is built for throughput:
//! the context's shared [`Evaluator`](mcs_core::Evaluator)
//! (allocation-free analysis state, delta-RTA), one lazily sampled move per
//! iteration ([`crate::MoveSampler`], no materialized neighborhood) and
//! apply/undo move semantics (no `SystemConfig` clone per iteration — the
//! configuration is only cloned when a new incumbent is recorded).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mcs_core::{DeltaSeeds, EvalSummary};
use mcs_model::{System, SystemConfig};

use crate::hopa::hopa_priorities;
use crate::moves::Move;
use crate::sampler::MoveSampler;
use crate::sf::straightforward_config;
use crate::synthesis::{Objective, SearchCtx, SearchEvent, Strategy, SynthesisError};

/// Simulated-annealing parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SaParams {
    /// Number of move evaluations.
    pub iterations: u32,
    /// Initial temperature, in cost units.
    pub initial_temperature: f64,
    /// Multiplicative cooling factor per iteration (0 < c < 1).
    pub cooling: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SaParams {
    /// A CI-scale budget. The paper ran "very long and expensive" SA (up to
    /// three hours per instance); scale `iterations` up for paper-scale
    /// reference runs.
    fn default() -> Self {
        SaParams {
            iterations: 300,
            initial_temperature: 1e7,
            cooling: 0.97,
            seed: 0,
        }
    }
}

/// What an [`Sa`] run minimizes. `'c` is the borrow of a custom cost
/// closure (`'static` for the built-in objectives).
enum SaCost<'c> {
    Objective(Objective),
    Custom(Box<dyn Fn(&EvalSummary) -> f64 + Send + 'c>),
}

impl SaCost<'_> {
    fn of(&self, summary: &EvalSummary) -> f64 {
        match self {
            SaCost::Objective(objective) => objective.cost(summary) as f64,
            SaCost::Custom(f) => f(summary),
        }
    }
}

/// Simulated annealing as a [`Strategy`]: [`Sa::schedule`] (SAS) anneals on
/// δΓ, [`Sa::resources`] (SAR) on `s_total`, [`Sa::custom`] on any summary
/// cost (whose closure borrow is the `'c` parameter — `'static` for the
/// built-in objectives). Starts from [`sa_start`] unless overridden with
/// [`Sa::with_start`].
///
/// A seeded run is fully deterministic (see the
/// [module docs](crate::synthesis) for the determinism contract); the
/// budget truncates the iteration loop cooperatively. Re-running the same
/// instance repeats the identical search (the start override is kept, not
/// consumed).
pub struct Sa<'c> {
    params: SaParams,
    cost: SaCost<'c>,
    start: Option<SystemConfig>,
    width: usize,
    name: &'static str,
}

impl<'c> std::fmt::Debug for Sa<'c> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sa").finish_non_exhaustive()
    }
}

impl<'c> Sa<'c> {
    /// SA Schedule (SAS): anneals on δΓ.
    pub fn schedule(params: SaParams) -> Sa<'static> {
        Sa {
            params,
            cost: SaCost::Objective(Objective::Schedule),
            start: None,
            width: 1,
            name: "SAS",
        }
    }

    /// SA Resources (SAR): anneals on `s_total`, ranking unschedulable
    /// configurations after every schedulable one.
    pub fn resources(params: SaParams) -> Sa<'static> {
        Sa {
            params,
            cost: SaCost::Objective(Objective::Resources),
            start: None,
            width: 1,
            name: "SAR",
        }
    }

    /// Anneals on an arbitrary summary cost.
    pub fn custom(params: SaParams, cost: impl Fn(&EvalSummary) -> f64 + Send + 'c) -> Sa<'c> {
        Sa {
            params,
            cost: SaCost::Custom(Box::new(cost)),
            start: None,
            width: 1,
            name: "SA",
        }
    }

    /// Overrides the start configuration (default: [`sa_start`]).
    pub fn with_start(mut self, start: SystemConfig) -> Self {
        self.start = Some(start);
        self
    }

    /// Enables batched proposals: up to `width` moves are sampled along the
    /// all-reject continuation of the trajectory and pre-evaluated as one
    /// data-parallel candidate batch
    /// ([`SearchCtx::evaluate_candidates`]-family), then consumed in
    /// sampler order for as long as the authoritative trajectory agrees
    /// with the speculation. The accept/reject trajectory — and with it the
    /// seeded event stream, budget accounting and final report — is
    /// **unchanged** from the sequential run: the speculation only decides
    /// *where* each candidate's fixed point is computed, never *which*
    /// candidates are visited (enforced by the `batch_equivalence` suite).
    ///
    /// A `width` of 0 or 1 keeps the sequential proposal loop.
    pub fn batch(mut self, width: usize) -> Self {
        self.width = width.max(1);
        self
    }
}

impl Strategy for Sa<'_> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn run(&mut self, ctx: &mut SearchCtx<'_, '_, '_>) -> Result<(), SynthesisError> {
        let system = ctx.system();
        let mut rng = StdRng::seed_from_u64(self.params.seed);
        let mut sampler = MoveSampler::new(system);
        let mut config = self.start.clone().unwrap_or_else(|| sa_start(system));
        let mut current = ctx.evaluate(&config)?;
        let mut best = current;
        ctx.record_incumbent(current, &config);
        let mut temperature = self.params.initial_temperature;

        // Delta-RTA seed accumulation: `seeds` always over-approximates the
        // difference between `config` and the evaluator's last completed
        // analysis — cleared after every successful evaluation, re-fed with
        // the undo's entities whenever a candidate is reverted.
        let mut seeds = DeltaSeeds::new();
        // Batched mode: the speculation window. `window[window_pos..]` holds
        // moves sampled along the all-reject continuation, each with a
        // pre-evaluated candidate at the same index of the current batch.
        // The window stays valid only while the authoritative trajectory
        // keeps rejecting feasible candidates — the one outcome that leaves
        // the base configuration, the accepted summary AND the rng replica
        // aligned with the speculation (a worsening reject consumes exactly
        // the one accept draw the speculation burned). Every other outcome
        // invalidates the remainder.
        let mut window: Vec<Move> = Vec::new();
        let mut window_pos = 0usize;
        let mut spec_seeds = DeltaSeeds::new();
        // Speculation depth, adapted to the observed reject run length:
        // fully consumed windows double it (cold phase, long reject runs),
        // a break resizes it to twice the run that did hit (hot phase,
        // frequent accepts). Keeps the wasted lanes per consumed candidate
        // bounded while still filling `width` lanes when the trajectory
        // rewards it. Depth never changes *which* candidates the trajectory
        // visits — only how many are speculated per batch.
        let mut depth = 2usize.min(self.width);
        for iteration in 0..self.params.iterations {
            if ctx.exhausted() {
                break;
            }
            if self.width > 1 && window_pos >= window.len() {
                if !window.is_empty() {
                    depth = (window.len() * 2).clamp(2, self.width);
                }
                window.clear();
                window_pos = 0;
                let remaining = (self.params.iterations - iteration) as usize;
                let mut spec_rng = rng.clone();
                ctx.begin_candidates();
                for position in 0..depth.min(remaining) {
                    let Some(mv) =
                        sampler.sample(system, &config, ctx.evaluator(), &current, &mut spec_rng)
                    else {
                        break;
                    };
                    // Pin moves anchor on the evaluator's analyzed timings,
                    // which every consumed candidate may shift — only the
                    // window head samples against the authoritative state,
                    // so a pin at a later position would speculate against
                    // stale anchors. Truncate instead of wasting a lane.
                    if position > 0 && matches!(mv, Move::PinProcess(..) | Move::PinMessage(..)) {
                        break;
                    }
                    spec_seeds.clear();
                    spec_seeds.merge(&seeds);
                    let undo = mv.apply_undoable_seeded(&mut config, &mut spec_seeds);
                    ctx.push_candidate(&config, &spec_seeds);
                    undo.revert(&mut config);
                    window.push(mv);
                    // The accept test of the speculated reject.
                    let _accept_draw: f64 = spec_rng.gen();
                }
                ctx.evaluate_candidates_queued();
            }
            let Some(mv) = sampler.sample(system, &config, ctx.evaluator(), &current, &mut rng)
            else {
                break;
            };
            let undo = mv.apply_undoable_seeded(&mut config, &mut seeds);
            temperature *= self.params.cooling;
            ctx.emit(SearchEvent::TemperatureEpoch {
                evaluations: ctx.evaluations(),
                temperature,
            });
            // A window position hits when the authoritative draw reproduces
            // the speculated move: the candidate configurations are then
            // identical, so the pre-computed fixed point stands in for the
            // sequential `evaluate_delta` bit-for-bit. On a miss the rng
            // replica has diverged — drop the window and fall back.
            let hit = window_pos < window.len() && window[window_pos] == mv;
            let outcome = if hit {
                let index = window_pos;
                let result = ctx.consume_candidate(index);
                if result.is_ok() {
                    // Leave the evaluator exactly where the sequential call
                    // would have: holding the candidate's converged state.
                    ctx.adopt_candidate(index);
                }
                result
            } else {
                window.clear();
                window_pos = 0;
                ctx.evaluate_delta(&config, &seeds)
            };
            let Ok(candidate) = outcome else {
                // Infeasible neighbor: the evaluator's state is unchanged,
                // so the seeds keep accumulating across the revert. No
                // accept draw was consumed, so the speculation's rng
                // replica is ahead — the window cannot hit again.
                ctx.emit(SearchEvent::Infeasible {
                    evaluations: ctx.evaluations(),
                });
                undo.record_seeds(&mut seeds);
                undo.revert(&mut config);
                window.clear();
                window_pos = 0;
                continue;
            };
            seeds.clear();
            let delta = self.cost.of(&candidate) - self.cost.of(&current);
            let accept = delta <= 0.0 || {
                let t = temperature.max(f64::MIN_POSITIVE);
                rng.gen::<f64>() < (-delta / t).exp()
            };
            ctx.emit(SearchEvent::Evaluated {
                evaluations: ctx.evaluations(),
                summary: candidate,
                accepted: accept,
            });
            if accept {
                if self.cost.of(&candidate) < self.cost.of(&best) {
                    best = candidate;
                    ctx.record_incumbent(candidate, &config);
                }
                current = candidate;
                // The acceptance re-bases the search; the remaining window
                // was speculated from the old base.
                window.clear();
                window_pos = 0;
            } else {
                undo.record_seeds(&mut seeds);
                undo.revert(&mut config);
                if hit {
                    window_pos += 1;
                }
            }
        }
        Ok(())
    }
}

/// The starting point both SA baselines use: straightforward slot order
/// with HOPA priorities.
pub fn sa_start(system: &System) -> SystemConfig {
    let mut config = straightforward_config(system);
    config.priorities = hopa_priorities(system, &config.tdma);
    config
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::evaluate;
    use crate::cost::Evaluation;
    use crate::synthesis::Synthesis;
    use mcs_core::AnalysisParams;
    use mcs_gen::figure4;
    use mcs_model::Time;

    fn quick() -> SaParams {
        SaParams {
            iterations: 60,
            seed: 5,
            ..SaParams::default()
        }
    }

    fn run_sas(system: &System, params: SaParams) -> Evaluation {
        Synthesis::builder(system)
            .strategy(Sa::schedule(params))
            .run()
            .expect("analyzable")
            .best
    }

    #[test]
    fn sas_improves_on_its_start() {
        let fig = figure4(Time::from_millis(240));
        let analysis = AnalysisParams::default();
        let start = evaluate(&fig.system, sa_start(&fig.system), &analysis).expect("valid");
        let sas = run_sas(&fig.system, quick());
        assert!(sas.schedule_cost() <= start.schedule_cost());
    }

    #[test]
    fn sar_returns_a_schedulable_solution_when_one_is_reachable() {
        let fig = figure4(Time::from_millis(240));
        let sar = Synthesis::builder(&fig.system)
            .strategy(Sa::resources(quick()))
            .run()
            .expect("analyzable")
            .best;
        assert!(sar.is_schedulable());
        assert!(sar.total_buffers > 0);
    }

    #[test]
    fn annealing_is_deterministic_in_the_seed() {
        let fig = figure4(Time::from_millis(240));
        let a = run_sas(&fig.system, quick());
        let b = run_sas(&fig.system, quick());
        assert_eq!(a.schedule_cost(), b.schedule_cost());
        assert_eq!(a.total_buffers, b.total_buffers);
    }

    #[test]
    fn annealing_never_worsens_with_more_budget_of_the_best() {
        // The returned evaluation is the best ever visited: running more
        // iterations with the same seed can only improve (or match) it.
        let fig = figure4(Time::from_millis(240));
        let short = run_sas(&fig.system, quick());
        let long = run_sas(
            &fig.system,
            SaParams {
                iterations: 120,
                ..quick()
            },
        );
        assert!(long.schedule_cost() <= short.schedule_cost());
    }
}
