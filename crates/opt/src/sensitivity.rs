//! WCET sensitivity analysis: how much can each process grow before the
//! system becomes unschedulable?
//!
//! This is a natural design-space-exploration companion to the paper's
//! synthesis flow: once `OptimizeSchedule` produces a schedulable
//! configuration, the per-process WCET slack tells the designer which
//! functions sit on the critical path (slack ≈ 0) and which have headroom
//! for future features. Computed by binary search over re-analysis with
//! [`Application::with_wcet`](mcs_model::Application::with_wcet); the
//! per-process searches are independent and [`criticality_ranking`] fans
//! them out across rayon workers (`RAYON_NUM_THREADS` caps them), with
//! results collected in process order so the ranking is deterministic.

use rayon::prelude::*;

use mcs_core::AnalysisParams;
use mcs_model::{ProcessId, System, SystemConfig, Time};

use crate::cost::evaluate;

/// The WCET slack of one process under a fixed configuration ψ.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WcetSlack {
    /// The analyzed process.
    pub process: ProcessId,
    /// Its current WCET.
    pub wcet: Time,
    /// The largest WCET (within the searched range) for which the system
    /// stays schedulable.
    pub max_wcet: Time,
}

impl WcetSlack {
    /// The slack `max_wcet − wcet`.
    pub fn slack(&self) -> Time {
        self.max_wcet.saturating_sub(self.wcet)
    }

    /// The growth headroom in per-mille of the current WCET.
    pub fn headroom_permille(&self) -> u64 {
        self.slack().ticks() * 1_000 / self.wcet.ticks().max(1)
    }
}

/// Computes the WCET slack of `process` by binary search.
///
/// The search covers `[C, scale_limit × C]`; `resolution` bounds the binary
/// search granularity (the result is within `resolution` of the true
/// boundary). Returns `None` if the system is not schedulable even at the
/// current WCET.
pub fn wcet_slack(
    system: &System,
    config: &SystemConfig,
    analysis: &AnalysisParams,
    process: ProcessId,
    scale_limit: u64,
    resolution: Time,
) -> Option<WcetSlack> {
    let wcet = system.application.process(process).wcet();
    let schedulable_with = |candidate: Time| -> bool {
        let app = system
            .application
            .with_wcet(process, candidate)
            .expect("non-zero candidate");
        let scaled = System {
            application: app,
            architecture: system.architecture.clone(),
            gateway: system.gateway,
        };
        evaluate(&scaled, config.clone(), analysis)
            .map(|e| e.is_schedulable())
            .unwrap_or(false)
    };
    if !schedulable_with(wcet) {
        return None;
    }
    let mut lo = wcet; // schedulable
    let mut hi = wcet.saturating_mul(scale_limit.max(2)); // probably not
    if schedulable_with(hi) {
        return Some(WcetSlack {
            process,
            wcet,
            max_wcet: hi,
        });
    }
    while hi.saturating_sub(lo) > resolution {
        let mid = Time::from_ticks(lo.ticks() / 2 + hi.ticks() / 2);
        if schedulable_with(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(WcetSlack {
        process,
        wcet,
        max_wcet: lo,
    })
}

/// Ranks all processes by WCET headroom, most critical (least headroom)
/// first. Processes on the end-to-end critical path surface at the top.
pub fn criticality_ranking(
    system: &System,
    config: &SystemConfig,
    analysis: &AnalysisParams,
    scale_limit: u64,
    resolution: Time,
) -> Vec<WcetSlack> {
    let ids: Vec<ProcessId> = system
        .application
        .processes()
        .iter()
        .map(|p| p.id())
        .collect();
    let mut slacks: Vec<WcetSlack> = ids
        .into_par_iter()
        .map(|p| wcet_slack(system, config, analysis, p, scale_limit, resolution))
        .collect::<Vec<Option<WcetSlack>>>()
        .into_iter()
        .flatten()
        .collect();
    slacks.sort_by_key(|s| (s.headroom_permille(), s.process));
    slacks
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_gen::{figure4, figure4_ids};

    #[test]
    fn critical_path_processes_have_less_headroom() {
        // Figure 4 (b) at deadline 240 is schedulable with 10 ms of
        // end-to-end slack; every process on the P1→P2→P4 chain can grow by
        // at most that (modulo round quantization), while P3 (off the
        // response-defining chain) has more room.
        let fig = figure4(Time::from_millis(240));
        let analysis = AnalysisParams::default();
        let res = Time::from_millis(1);
        let p1 = wcet_slack(
            &fig.system,
            &fig.config_b,
            &analysis,
            figure4_ids::P1,
            8,
            res,
        )
        .expect("schedulable");
        let p3 = wcet_slack(
            &fig.system,
            &fig.config_b,
            &analysis,
            figure4_ids::P3,
            8,
            res,
        )
        .expect("schedulable");
        assert!(p1.slack() < p3.slack(), "P1 {:?} vs P3 {:?}", p1, p3);
        assert!(p1.max_wcet >= p1.wcet);
    }

    #[test]
    fn unschedulable_systems_yield_none() {
        let fig = figure4(Time::from_millis(200)); // all configs miss
        let analysis = AnalysisParams::default();
        assert_eq!(
            wcet_slack(
                &fig.system,
                &fig.config_a,
                &analysis,
                figure4_ids::P1,
                4,
                Time::from_millis(1)
            ),
            None
        );
    }

    #[test]
    fn ranking_orders_by_headroom() {
        let fig = figure4(Time::from_millis(240));
        let analysis = AnalysisParams::default();
        let ranking = criticality_ranking(
            &fig.system,
            &fig.config_c,
            &analysis,
            8,
            Time::from_millis(2),
        );
        assert_eq!(ranking.len(), 4);
        for pair in ranking.windows(2) {
            assert!(pair[0].headroom_permille() <= pair[1].headroom_permille());
        }
    }
}
