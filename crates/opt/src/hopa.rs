//! HOPA-style priority assignment (Gutiérrez García & González Harbour,
//! "Optimized Priority Assignment for Tasks and Messages in Distributed Hard
//! Real-Time Systems").
//!
//! The core of HOPA is to distribute each graph's end-to-end deadline over
//! the processes and messages along its paths — proportionally to their
//! share of the longest path through them — and then assign priorities
//! deadline-monotonically per scheduling resource (per ET CPU, and globally
//! on the CAN bus). This captures the "knowledge of the factors that
//! influence the timing behaviour" the paper cites HOPA for.
//!
//! The OS heuristic calls this once per candidate TDMA configuration, so
//! the longest-path passes run over dense index vectors rather than hash
//! maps.

use std::collections::HashMap;

use mcs_can::message_time;
use mcs_model::{
    MessageId, NodeId, Priority, PriorityAssignment, ProcessId, System, TdmaConfig, Time,
};

use crate::synthesis::{SearchCtx, SearchEvent, Strategy, SynthesisError};

/// Computes a HOPA priority assignment for all ET processes and all
/// CAN-travelling messages under the given TDMA configuration (whose round
/// length serves as the TTP communication estimate).
pub fn hopa_priorities(system: &System, tdma: &TdmaConfig) -> PriorityAssignment {
    let app = &system.application;
    let arch = &system.architecture;
    let round = tdma.round_duration(&arch.ttp_params());
    let can_params = arch.can_params();
    let edge_cost = |m: MessageId| -> Time {
        let route = system.route(m);
        let mut cost = Time::ZERO;
        if route.uses_can() {
            cost += message_time(app.message(m).size_bytes(), &can_params);
        }
        if route.uses_ttp() {
            cost += round;
        }
        cost
    };

    // Longest path from any source *to the completion of* each process
    // (forward), and from each process *to* any sink (backward), on dense
    // process indices.
    let n = app.processes().len();
    let mut forward = vec![Time::ZERO; n];
    let mut backward = vec![Time::ZERO; n];
    for graph in app.graphs() {
        let topo = app.topological_order(graph.id());
        for &p in topo {
            let best = app
                .predecessors(p)
                .iter()
                .map(|e| {
                    forward[e.source.index()] + e.message.map(&edge_cost).unwrap_or(Time::ZERO)
                })
                .fold(Time::ZERO, Time::max);
            forward[p.index()] = best + app.process(p).wcet();
        }
        for &p in topo.iter().rev() {
            let best = app
                .successors(p)
                .iter()
                .map(|e| backward[e.dest.index()] + e.message.map(&edge_cost).unwrap_or(Time::ZERO))
                .fold(Time::ZERO, Time::max);
            backward[p.index()] = best + app.process(p).wcet();
        }
    }

    // Local deadline of an entity at "progress point" f along a longest
    // path of total length f + b: d = D_G · f / (f + b).
    let local_deadline = |f: Time, b: Time, deadline: Time| -> u64 {
        let total = f.ticks() + b.ticks();
        if total == 0 {
            return deadline.ticks();
        }
        (u128::from(deadline.ticks()) * u128::from(f.ticks()) / u128::from(total)) as u64
    };

    // Deadline-monotonic assignment per ET CPU.
    let mut per_node: HashMap<NodeId, Vec<(u64, ProcessId)>> = HashMap::new();
    for p in app.processes() {
        if !arch.is_et_cpu(p.node()) {
            continue;
        }
        let deadline = app.graph(p.graph()).deadline();
        let f = forward[p.id().index()];
        let b = backward[p.id().index()].saturating_sub(p.wcet());
        per_node
            .entry(p.node())
            .or_default()
            .push((local_deadline(f, b, deadline), p.id()));
    }
    let mut assignment = PriorityAssignment::new();
    for (_, mut entries) in per_node {
        entries.sort_by_key(|&(d, p)| (d, p));
        for (level, (_, p)) in entries.into_iter().enumerate() {
            assignment.set_process(p, Priority::new(level as u32));
        }
    }

    // Deadline-monotonic assignment on the CAN bus.
    let mut bus: Vec<(u64, MessageId)> = Vec::new();
    for m in app.messages() {
        if !system.route(m.id()).uses_can() {
            continue;
        }
        let deadline = app.graph(m.graph()).deadline();
        let f = forward[m.source().index()] + edge_cost(m.id());
        let b = backward[m.dest().index()];
        bus.push((local_deadline(f, b, deadline), m.id()));
    }
    bus.sort_by_key(|&(d, m)| (d, m));
    for (level, (_, m)) in bus.into_iter().enumerate() {
        assignment.set_message(m, Priority::new(level as u32));
    }
    assignment
}

/// HOPA seeding as a [`Strategy`]: the straightforward slot order with
/// deadline-distributed [`hopa_priorities`], evaluated once. This is the
/// start configuration the SA baselines anneal from, exposed as a
/// standalone baseline (e.g. for the priority-assignment ablation).
#[derive(Clone, Copy, Debug, Default)]
pub struct Hopa;

impl Strategy for Hopa {
    fn name(&self) -> &'static str {
        "HOPA"
    }

    fn run(&mut self, ctx: &mut SearchCtx<'_, '_, '_>) -> Result<(), SynthesisError> {
        let system = ctx.system();
        let mut config = crate::sf::straightforward_config(system);
        config.priorities = hopa_priorities(system, &config.tdma);
        let summary = ctx.evaluate(&config)?;
        ctx.emit(SearchEvent::Evaluated {
            evaluations: ctx.evaluations(),
            summary,
            accepted: true,
        });
        ctx.record_incumbent(summary, &config);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_gen::{cruise_controller, figure4};
    use mcs_model::Time;

    #[test]
    fn hopa_assigns_every_et_entity_uniquely() {
        let cc = cruise_controller();
        let tdma = crate::sf::straightforward_config(&cc.system).tdma;
        let pri = hopa_priorities(&cc.system, &tdma);
        let app = &cc.system.application;
        for p in app.processes() {
            if cc.system.architecture.is_et_cpu(p.node()) {
                assert!(pri.process(p.id()).is_some(), "{} unassigned", p.name());
            }
        }
        for m in app.messages() {
            if cc.system.route(m.id()).uses_can() {
                assert!(pri.message(m.id()).is_some());
            }
        }
        // Uniqueness is enforced by validate_config; spot check here.
        assert!(
            mcs_core::validate_config(&cc.system, &mcs_model::SystemConfig::new(tdma, pri)).is_ok()
        );
    }

    #[test]
    fn upstream_entities_get_tighter_deadlines_hence_higher_priority() {
        // In figure 4, m1/m2 (early in the chain) must outrank m3 (late).
        let fig = figure4(Time::from_millis(200));
        let pri = hopa_priorities(&fig.system, &fig.config_a.tdma);
        let m1 = pri.message(mcs_gen::figure4_ids::M1).expect("assigned");
        let m3 = pri.message(mcs_gen::figure4_ids::M3).expect("assigned");
        assert!(m1.is_higher_than(m3));
    }
}
