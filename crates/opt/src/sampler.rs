//! Lazy neighborhood sampling: draw one random design transformation
//! without materializing the full O(n²) move set.
//!
//! [`crate::neighborhood`] instantiates every move of the paper's four
//! families — O(slots²) slot swaps alone — which the simulated-annealing
//! baselines then discard after picking a *single* random element. The
//! [`MoveSampler`] inverts that: it weights the four families by their exact
//! neighborhood sizes (so the sampled distribution matches drawing uniformly
//! from the materialized set) and instantiates only the one chosen move.
//! Cost per draw is O(1) in the number of candidate moves, plus an
//! O(k log k) sort over the ~k processes of the one chosen CPU (or the CAN
//! message set) to locate a priority-adjacent pair.

use rand::rngs::StdRng;
use rand::Rng;

use mcs_core::{EvalSummary, Evaluator};
use mcs_model::{MessageId, MessageRoute, Priority, ProcessId, SlotId, System, SystemConfig, Time};

use crate::moves::Move;

/// A reusable sampler of random configuration moves for one [`System`].
///
/// Build it once per search; [`MoveSampler::sample`] draws moves against the
/// current configuration and the evaluator's **most recent** analysis: pin
/// moves anchor on the analyzed offsets and arrivals like the materialized
/// neighborhood does, except that after a rejected or infeasible neighbor
/// the anchors reflect that last-analyzed candidate rather than the
/// current configuration — the pin targets are heuristic anchors, and
/// re-analyzing the current configuration per draw would cost a full
/// evaluation. When the evaluator holds no successful analysis at all, the
/// pin families are simply excluded from the draw.
#[derive(Debug)]
pub struct MoveSampler {
    /// ET CPUs and their processes, in node order.
    nodes: Vec<Vec<ProcessId>>,
    /// All messages, in id order (the priority-swap family covers every
    /// prioritized message, exactly like the materialized neighborhood).
    msgs: Vec<MessageId>,
    /// Senders of TTC→ETC traffic (φ process-pin candidates).
    ttc_to_etc_senders: Vec<ProcessId>,
    /// TTC→TTC messages (φ message-pin candidates).
    ttc_to_ttc_msgs: Vec<MessageId>,
    /// Scratch: (priority, entity) pairs sorted to find adjacent swaps.
    order: Vec<(Priority, u32)>,
}

/// Slot-resize quanta: half/whole of the typical message.
const RESIZE_DELTAS: [i32; 4] = [-8, -4, 4, 8];

impl MoveSampler {
    /// Precomputes the system-invariant candidate sets.
    pub fn new(system: &System) -> Self {
        let app = &system.application;
        let arch = &system.architecture;
        let mut node_ids: Vec<_> = arch
            .nodes()
            .iter()
            .filter(|n| arch.is_et_cpu(n.id()))
            .map(|n| n.id())
            .collect();
        node_ids.sort();
        let nodes = node_ids
            .iter()
            .map(|&node| app.processes_on(node).map(|p| p.id()).collect())
            .collect();
        let msgs = app.messages().iter().map(|m| m.id()).collect();
        let ttc_to_etc_senders = app
            .messages()
            .iter()
            .filter(|m| system.route(m.id()) == MessageRoute::TtcToEtc)
            .map(|m| m.source())
            .collect();
        let ttc_to_ttc_msgs = app
            .messages()
            .iter()
            .map(|m| m.id())
            .filter(|&m| system.route(m) == MessageRoute::TtcToTtc)
            .collect();
        MoveSampler {
            nodes,
            msgs,
            ttc_to_etc_senders,
            ttc_to_ttc_msgs,
            order: Vec::new(),
        }
    }

    /// Draws one random move against the current configuration, or `None`
    /// when the neighborhood is empty.
    ///
    /// `evaluator` must have completed an evaluation of a configuration of
    /// this system (its offsets/arrivals anchor the φ pin moves); `summary`
    /// is the evaluation of `config` steering schedulability-gated moves.
    pub fn sample(
        &mut self,
        system: &System,
        config: &SystemConfig,
        evaluator: &Evaluator<'_>,
        summary: &EvalSummary,
        rng: &mut StdRng,
    ) -> Option<Move> {
        let n_slots = config.tdma.slot_count() as u64;
        let w_slot_swap = n_slots * n_slots.saturating_sub(1) / 2;
        let w_resize = n_slots * RESIZE_DELTAS.len() as u64;
        let w_proc_swap: u64 = self
            .nodes
            .iter()
            .map(|procs| Self::prioritized(config, procs).saturating_sub(1) as u64)
            .sum();
        let w_msg_swap = (self
            .msgs
            .iter()
            .filter(|&&m| config.priorities.message(m).is_some())
            .count() as u64)
            .saturating_sub(1);

        // φ moves, counted exactly like the materialized neighborhood.
        let round = config
            .tdma
            .round_duration(&system.architecture.ttp_params());
        let slack = Time::from_ticks(
            (-summary.degree.slack.min(0))
                .unsigned_abs()
                .try_into()
                .unwrap_or(u64::MAX),
        );
        let schedulable = summary.is_schedulable();
        // Pin moves need the evaluator's analyzed offsets/arrivals; without
        // a successful analysis those families are excluded.
        let anchored = evaluator.has_run();
        let w_unpin_proc = self
            .ttc_to_etc_senders
            .iter()
            .filter(|&&p| config.offsets.process(p).is_some())
            .count() as u64;
        let w_pin_proc = if anchored && schedulable && round <= slack {
            self.ttc_to_etc_senders.len() as u64
        } else {
            0
        };
        let w_unpin_msg = self
            .ttc_to_ttc_msgs
            .iter()
            .filter(|&&m| config.offsets.message(m).is_some())
            .count() as u64;
        let w_pin_msg = if anchored && schedulable {
            (self.ttc_to_ttc_msgs.len() as u64).saturating_sub(w_unpin_msg)
        } else {
            0
        };

        let weights = [
            w_slot_swap,
            w_resize,
            w_proc_swap,
            w_msg_swap,
            w_unpin_proc,
            w_pin_proc,
            w_unpin_msg,
            w_pin_msg,
        ];
        let total: u64 = weights.iter().sum();
        if total == 0 {
            return None;
        }
        let mut pick = rng.gen_range(0..total);
        let family = weights
            .iter()
            .position(|&w| {
                if pick < w {
                    true
                } else {
                    pick -= w;
                    false
                }
            })
            .expect("pick < total");

        Some(match family {
            0 => {
                // The pick-th ordered slot pair (i < j).
                let (mut i, mut j) = (0u64, 1u64);
                let mut remaining = pick;
                while remaining >= n_slots - i - 1 {
                    remaining -= n_slots - i - 1;
                    i += 1;
                    j = i + 1;
                }
                j += remaining;
                Move::SwapSlots(SlotId::new(i as u32), SlotId::new(j as u32))
            }
            1 => {
                let slot = pick / RESIZE_DELTAS.len() as u64;
                let delta = RESIZE_DELTAS[(pick % RESIZE_DELTAS.len() as u64) as usize];
                Move::ResizeSlot(SlotId::new(slot as u32), delta)
            }
            2 => {
                // Locate the pick-th adjacent pair across the ET CPUs.
                let mut remaining = pick;
                for procs in &self.nodes {
                    let pairs = Self::prioritized(config, procs).saturating_sub(1) as u64;
                    if remaining < pairs {
                        self.order.clear();
                        self.order.extend(
                            procs.iter().filter_map(|&p| {
                                config.priorities.process(p).map(|pr| (pr, p.raw()))
                            }),
                        );
                        self.order.sort();
                        let k = remaining as usize;
                        return Some(Move::SwapProcessPriorities(
                            ProcessId::new(self.order[k].1),
                            ProcessId::new(self.order[k + 1].1),
                        ));
                    }
                    remaining -= pairs;
                }
                unreachable!("pick bounded by the family weight")
            }
            3 => {
                self.order.clear();
                self.order.extend(
                    self.msgs
                        .iter()
                        .filter_map(|&m| config.priorities.message(m).map(|pr| (pr, m.raw()))),
                );
                self.order.sort();
                let k = pick as usize;
                Move::SwapMessagePriorities(
                    MessageId::new(self.order[k].1),
                    MessageId::new(self.order[k + 1].1),
                )
            }
            4 => {
                let p = *self
                    .ttc_to_etc_senders
                    .iter()
                    .filter(|&&p| config.offsets.process(p).is_some())
                    .nth(pick as usize)
                    .expect("pick bounded by the family weight");
                Move::UnpinProcess(p)
            }
            5 => {
                let p = self.ttc_to_etc_senders[pick as usize];
                let current = evaluator.process_timing(p).offset;
                Move::PinProcess(p, current + round)
            }
            6 => {
                let m = *self
                    .ttc_to_ttc_msgs
                    .iter()
                    .filter(|&&m| config.offsets.message(m).is_some())
                    .nth(pick as usize)
                    .expect("pick bounded by the family weight");
                Move::UnpinMessage(m)
            }
            _ => {
                let m = *self
                    .ttc_to_ttc_msgs
                    .iter()
                    .filter(|&&m| config.offsets.message(m).is_none())
                    .nth(pick as usize)
                    .expect("pick bounded by the family weight");
                let arrival = evaluator.message_timing(m).arrival;
                Move::PinMessage(m, arrival + round)
            }
        })
    }

    /// Number of prioritized processes among `procs`.
    fn prioritized(config: &SystemConfig, procs: &[ProcessId]) -> usize {
        procs
            .iter()
            .filter(|&&p| config.priorities.process(p).is_some())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_core::AnalysisParams;
    use mcs_gen::figure4;
    use rand::SeedableRng;

    #[test]
    fn sampled_moves_apply_and_revert_cleanly() {
        let fig = figure4(Time::from_millis(240));
        let mut evaluator = Evaluator::new(&fig.system, AnalysisParams::default());
        let mut config = fig.config_b.clone();
        let summary = evaluator.evaluate(&config).expect("analyzable");
        let mut sampler = MoveSampler::new(&fig.system);
        let mut rng = StdRng::seed_from_u64(3);
        let mut families = std::collections::HashSet::new();
        for _ in 0..200 {
            let mv = sampler
                .sample(&fig.system, &config, &evaluator, &summary, &mut rng)
                .expect("figure 4 neighborhood is nonempty");
            families.insert(std::mem::discriminant(&mv));
            let before = config.clone();
            let undo = mv.apply_undoable(&mut config);
            undo.revert(&mut config);
            assert_eq!(config, before, "undo must restore {mv:?} exactly");
        }
        // All four always-available families show up.
        assert!(families.len() >= 4, "saw only {} families", families.len());
    }
}
