//! The straightforward (SF) baseline of paper §6: nodes allocated to TDMA
//! slots in ascending order, slot lengths just accommodating each node's
//! largest message, and unoptimized (index-order) ET priorities.
//!
//! [`Sf`] is the [`Strategy`] packaging of the baseline for
//! [`Synthesis`](crate::Synthesis); [`straightforward_config`] remains the
//! underlying configuration constructor the other heuristics start from.

use std::collections::HashMap;

use mcs_model::{
    MessageRoute, NodeId, Priority, PriorityAssignment, System, SystemConfig, TdmaConfig, TdmaSlot,
};

use crate::synthesis::{SearchCtx, SearchEvent, Strategy, SynthesisError};

/// The minimal capacity of each TTP node's slot: the largest single frame
/// the node must emit (at least one byte so the slot exists on the wire).
pub fn minimal_slot_capacities(system: &System) -> HashMap<NodeId, u32> {
    let app = &system.application;
    let mut caps: HashMap<NodeId, u32> = system
        .architecture
        .ttp_nodes()
        .map(|n| (n.id(), 1))
        .collect();
    for m in app.messages() {
        let route = system.route(m.id());
        if !route.uses_ttp() {
            continue;
        }
        let node = if route == MessageRoute::EtcToTtc {
            system.architecture.gateway()
        } else {
            app.process(m.source()).node()
        };
        let cap = caps.entry(node).or_insert(1);
        *cap = (*cap).max(m.size_bytes());
    }
    caps
}

/// Builds the SF configuration: ascending slot order, minimal slot lengths,
/// index-order priorities.
pub fn straightforward_config(system: &System) -> SystemConfig {
    let caps = minimal_slot_capacities(system);
    let slots: Vec<TdmaSlot> = system
        .architecture
        .ttp_nodes()
        .map(|n| TdmaSlot {
            node: n.id(),
            capacity_bytes: caps[&n.id()],
        })
        .collect();

    let mut priorities = PriorityAssignment::new();
    // Index order per ET CPU.
    let mut level_per_node: HashMap<NodeId, u32> = HashMap::new();
    for p in system.application.processes() {
        if system.architecture.is_et_cpu(p.node()) {
            let level = level_per_node.entry(p.node()).or_insert(0);
            priorities.set_process(p.id(), Priority::new(*level));
            *level += 1;
        }
    }
    // Index order on the bus.
    let mut level = 0;
    for m in system.application.messages() {
        if system.route(m.id()).uses_can() {
            priorities.set_message(m.id(), Priority::new(level));
            level += 1;
        }
    }
    SystemConfig::new(TdmaConfig::new(slots), priorities)
}

/// The straightforward baseline as a [`Strategy`]: one evaluation of
/// [`straightforward_config`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Sf;

impl Strategy for Sf {
    fn name(&self) -> &'static str {
        "SF"
    }

    fn run(&mut self, ctx: &mut SearchCtx<'_, '_, '_>) -> Result<(), SynthesisError> {
        let config = straightforward_config(ctx.system());
        let summary = ctx.evaluate(&config)?;
        ctx.emit(SearchEvent::Evaluated {
            evaluations: ctx.evaluations(),
            summary,
            accepted: true,
        });
        ctx.record_incumbent(summary, &config);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_core::validate_config;
    use mcs_gen::{cruise_controller, generate, GeneratorParams};

    #[test]
    fn sf_configuration_is_always_valid() {
        for seed in 0..5 {
            let system = generate(&GeneratorParams::paper_sized(4, seed));
            let config = straightforward_config(&system);
            assert_eq!(validate_config(&system, &config), Ok(()));
        }
        let cc = cruise_controller();
        assert_eq!(
            validate_config(&cc.system, &straightforward_config(&cc.system)),
            Ok(())
        );
    }

    #[test]
    fn slots_follow_ascending_node_order_with_minimal_capacity() {
        let system = generate(&GeneratorParams::paper_sized(2, 1));
        let config = straightforward_config(&system);
        let nodes: Vec<NodeId> = config.tdma.slots().iter().map(|s| s.node).collect();
        let expected: Vec<NodeId> = system.architecture.ttp_nodes().map(|n| n.id()).collect();
        assert_eq!(nodes, expected);
        let caps = minimal_slot_capacities(&system);
        for slot in config.tdma.slots() {
            assert_eq!(slot.capacity_bytes, caps[&slot.node]);
            assert!(slot.capacity_bytes >= 1);
        }
    }
}
